//! Multi-threaded stress tests for both free-space managers.
//!
//! Generalizes the `AtomicBitmap` unit-level concurrency tests to run the
//! same two invariants against every allocator front-end:
//!
//! * **unique claim** — when many threads race to drain the map, every
//!   line is handed out exactly once and the map ends empty;
//! * **churn conservation** — under a sustained allocate/release mix the
//!   final free count equals `lines - live` and the occupied snapshot is
//!   exactly the set of lines still held.
//!
//! Run in release mode (CI does): the point is to give the word-claim
//! CAS-free protocol and the reservation refill/steal path real
//! interleavings, which debug-build timing mostly hides.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use dewrite_nvm::{AtomicBitmap, FsmTree, Reservation, CHUNK_LINES};

const THREADS: usize = 8;

/// Drive `claim` from `THREADS` threads until the allocator is dry and
/// assert every line came out exactly once.
fn assert_unique_drain<A: Sync>(
    alloc: &A,
    lines: u64,
    free_lines: impl Fn(&A) -> u64,
    claim: impl Fn(&A, usize, &mut Reservation) -> Option<u64> + Sync,
) {
    let mut per_thread: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|s| {
        let claim = &claim;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut reservation = Reservation::new();
                    while let Some(line) = claim(alloc, t, &mut reservation) {
                        got.push(line);
                    }
                    got
                })
            })
            .collect();
        per_thread = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    let mut seen = HashSet::new();
    for got in &per_thread {
        for &line in got {
            assert!(line < lines, "claimed out-of-range line {line}");
            assert!(seen.insert(line), "line {line} claimed twice");
        }
    }
    assert_eq!(seen.len() as u64, lines, "drain missed lines");
    assert_eq!(free_lines(alloc), 0, "drained map still reports free lines");
}

/// Alternate claim/release from `THREADS` threads, keeping a bounded set
/// of live lines per thread, then assert conservation: the map's free
/// count and occupied snapshot match the survivors exactly.
fn assert_churn_conserves<A: Sync>(
    alloc: &A,
    lines: u64,
    rounds: usize,
    free_lines: impl Fn(&A) -> u64,
    occupied: impl Fn(&A) -> Vec<u64>,
    claim: impl Fn(&A, usize, &mut Reservation) -> Option<u64> + Sync,
    release: impl Fn(&A, u64) + Sync,
) {
    let live_total = AtomicU64::new(0);
    let mut survivors: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|s| {
        let (claim, release, live_total) = (&claim, &release, &live_total);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let mut held: Vec<u64> = Vec::new();
                    let mut reservation = Reservation::new();
                    // Deterministic per-thread xorshift stream.
                    let mut state = 0x9E37_79B9_u64.wrapping_mul(t as u64 + 1) | 1;
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for _ in 0..rounds {
                        // Release roughly half the time once we hold a
                        // few lines, so chunks drain and refill.
                        if !held.is_empty() && (held.len() > 48 || next() % 2 == 0) {
                            let idx = (next() % held.len() as u64) as usize;
                            release(alloc, held.swap_remove(idx));
                        } else if let Some(line) = claim(alloc, t, &mut reservation) {
                            held.push(line);
                        }
                    }
                    live_total.fetch_add(held.len() as u64, Ordering::Relaxed);
                    held
                })
            })
            .collect();
        survivors = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    let live = live_total.load(Ordering::Relaxed);
    assert_eq!(
        free_lines(alloc),
        lines - live,
        "free count drifted under churn"
    );
    let mut held: Vec<u64> = survivors.into_iter().flatten().collect();
    held.sort_unstable();
    assert_eq!(
        occupied(alloc),
        held,
        "occupied snapshot diverged from survivors"
    );
}

/// Map size used by the stress runs: enough chunks that 8 threads get
/// disjoint reserved chunks with room to rotate, and not chunk-aligned so
/// the tail-masking path stays under concurrent load.
fn stress_lines() -> u64 {
    (4 * THREADS as u64) * CHUNK_LINES + 37
}

#[test]
fn bitmap_concurrent_drain_is_unique() {
    let lines = stress_lines();
    let bitmap = AtomicBitmap::new(lines);
    assert_unique_drain(&bitmap, lines, AtomicBitmap::free_lines, |b, t, _| {
        b.allocate((t as u64 * lines) / THREADS as u64)
    });
}

#[test]
fn tree_home_concurrent_drain_is_unique() {
    let lines = stress_lines();
    let tree = FsmTree::new(lines);
    assert_unique_drain(&tree, lines, FsmTree::free_lines, |a, t, _| {
        a.allocate((t as u64 * lines) / THREADS as u64)
    });
}

#[test]
fn tree_reserved_concurrent_drain_is_unique() {
    let lines = stress_lines();
    let tree = FsmTree::new(lines);
    assert_unique_drain(&tree, lines, FsmTree::free_lines, |a, _, r| {
        a.allocate_reserved(r)
    });
    // Every drained line is one recorded claim once stats are flushed
    // (drain retires reservations internally when the map runs dry).
    assert_eq!(tree.stats().claims, lines);
}

#[test]
fn bitmap_churn_conserves_free_count() {
    let lines = stress_lines();
    let bitmap = AtomicBitmap::new(lines);
    assert_churn_conserves(
        &bitmap,
        lines,
        20_000,
        AtomicBitmap::free_lines,
        AtomicBitmap::occupied,
        |b, t, _| b.allocate((t as u64 * lines) / THREADS as u64),
        |b, line| {
            assert!(b.release(line), "released a line that was already free");
        },
    );
}

#[test]
fn tree_home_churn_conserves_free_count() {
    let lines = stress_lines();
    let tree = FsmTree::new(lines);
    assert_churn_conserves(
        &tree,
        lines,
        20_000,
        FsmTree::free_lines,
        FsmTree::occupied,
        |a, t, _| a.allocate((t as u64 * lines) / THREADS as u64),
        |a, line| {
            assert!(a.release(line), "released a line that was already free");
        },
    );
}

#[test]
fn tree_reserved_churn_conserves_free_count_and_rotates() {
    let lines = stress_lines();
    let tree = FsmTree::new(lines);
    assert_churn_conserves(
        &tree,
        lines,
        20_000,
        FsmTree::free_lines,
        FsmTree::occupied,
        |a, _, r| a.allocate_reserved(r),
        |a, line| {
            assert!(a.release(line), "released a line that was already free");
        },
    );
    // The claim budget forces periodic refills even under friendly
    // churn, so sustained load must have rotated through chunks.
    let stats = tree.stats();
    assert!(
        stats.refills >= THREADS as u64,
        "expected at least one refill per thread, got {}",
        stats.refills
    );
}
