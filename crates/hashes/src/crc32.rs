//! Table-driven CRC-32 (IEEE 802.3) and CRC-32C (Castagnoli).
//!
//! Both are reflected CRCs with initial value `0xFFFF_FFFF` and final XOR
//! `0xFFFF_FFFF`. The lookup tables are built at construction time from the
//! reflected polynomial; a bitwise reference implementation is kept in the
//! test module to cross-check the tables.

use crate::traits::{HashAlgorithm, LineHasher};

/// Reflected polynomial for CRC-32 (IEEE 802.3 / zlib / PNG).
const POLY_IEEE: u32 = 0xEDB8_8320;
/// Reflected polynomial for CRC-32C (Castagnoli / iSCSI / SSE4.2).
const POLY_CASTAGNOLI: u32 = 0x82F6_3B78;

/// Shared table-driven engine for reflected 32-bit CRCs.
#[derive(Clone)]
struct CrcEngine {
    table: [u32; 256],
}

impl CrcEngine {
    fn new(reflected_poly: u32) -> Self {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ reflected_poly
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        CrcEngine { table }
    }

    fn checksum(&self, data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ self.table[idx];
        }
        crc ^ 0xFFFF_FFFF
    }
}

impl std::fmt::Debug for CrcEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrcEngine")
            .field("table[1]", &format_args!("{:#010x}", self.table[1]))
            .finish()
    }
}

/// CRC-32 (IEEE 802.3) — the light-weight fingerprint used by DeWrite.
///
/// ```
/// use dewrite_hashes::Crc32;
/// let crc = Crc32::new();
/// // The canonical "123456789" check value.
/// assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    engine: CrcEngine,
}

impl Crc32 {
    /// Create a CRC-32 hasher (builds the 256-entry lookup table).
    pub fn new() -> Self {
        Crc32 {
            engine: CrcEngine::new(POLY_IEEE),
        }
    }

    /// Compute the CRC-32 checksum of `data`.
    pub fn checksum(&self, data: &[u8]) -> u32 {
        self.engine.checksum(data)
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl LineHasher for Crc32 {
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Crc32
    }

    fn digest(&self, data: &[u8]) -> u64 {
        u64::from(self.checksum(data))
    }
}

/// CRC-32C (Castagnoli) — same circuit cost, different polynomial; used in
/// the hash-function ablation experiment.
///
/// ```
/// use dewrite_hashes::Crc32c;
/// let crc = Crc32c::new();
/// assert_eq!(crc.checksum(b"123456789"), 0xE306_9283);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32c {
    engine: CrcEngine,
}

impl Crc32c {
    /// Create a CRC-32C hasher (builds the 256-entry lookup table).
    pub fn new() -> Self {
        Crc32c {
            engine: CrcEngine::new(POLY_CASTAGNOLI),
        }
    }

    /// Compute the CRC-32C checksum of `data`.
    pub fn checksum(&self, data: &[u8]) -> u32 {
        self.engine.checksum(data)
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl LineHasher for Crc32c {
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Crc32c
    }

    fn digest(&self, data: &[u8]) -> u64 {
        u64::from(self.checksum(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Bitwise (table-free) reference implementation.
    fn crc32_bitwise(poly: u32, data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ poly
                } else {
                    crc >> 1
                };
            }
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn ieee_check_vectors() {
        let crc = Crc32::new();
        assert_eq!(crc.checksum(b""), 0x0000_0000);
        assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc.checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(crc.checksum(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc.checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn castagnoli_check_vectors() {
        let crc = Crc32c::new();
        assert_eq!(crc.checksum(b""), 0x0000_0000);
        assert_eq!(crc.checksum(b"123456789"), 0xE306_9283);
        // RFC 3720 B.4: 32 bytes of zeros.
        assert_eq!(crc.checksum(&[0u8; 32]), 0x8A91_36AA);
        // RFC 3720 B.4: 32 bytes of 0xFF.
        assert_eq!(crc.checksum(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn digest_matches_checksum() {
        let crc = Crc32::new();
        assert_eq!(crc.digest(b"xyz"), u64::from(crc.checksum(b"xyz")));
    }

    #[test]
    fn zero_line_has_stable_digest() {
        // The hash table keys zero lines like any other content; make sure
        // the digest of a 256 B zero line is fixed across instances.
        let a = Crc32::new().digest(&[0u8; 256]);
        let b = Crc32::new().digest(&[0u8; 256]);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn table_matches_bitwise_ieee(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let crc = Crc32::new();
            prop_assert_eq!(crc.checksum(&data), crc32_bitwise(POLY_IEEE, &data));
        }

        #[test]
        fn table_matches_bitwise_castagnoli(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let crc = Crc32c::new();
            prop_assert_eq!(crc.checksum(&data), crc32_bitwise(POLY_CASTAGNOLI, &data));
        }

        #[test]
        fn single_bit_flip_changes_checksum(
            mut data in proptest::collection::vec(any::<u8>(), 1..256),
            idx in any::<usize>(),
            bit in 0u8..8,
        ) {
            let crc = Crc32::new();
            let before = crc.checksum(&data);
            let i = idx % data.len();
            data[i] ^= 1 << bit;
            // CRC-32 detects all single-bit errors.
            prop_assert_ne!(crc.checksum(&data), before);
        }
    }
}
