//! The wire protocol: dependency-free, length-prefixed, CRC-guarded
//! binary frames, versioned and hardened like the persist codecs.
//!
//! ```text
//! frame   := len u32 · crc u32 (over payload) · payload
//! payload := tag u8 · body (fixed little-endian layout per tag)
//! ```
//!
//! The first frame on every connection must be [`Request::Hello`], whose
//! body leads with the protocol magic and version — the connection-level
//! analogue of the WAL file header. Every integer is little-endian; every
//! length field is bounded *before* any allocation; the CRC is verified
//! *before* any byte of the payload is interpreted.
//!
//! Error containment mirrors the persist layer's two-tier discipline:
//!
//! * A **framing** violation ([`FrameError`]: oversized length or CRC
//!   mismatch) means the stream can no longer be trusted to be aligned —
//!   the peer sends one [`Response::Error`] and closes.
//! * A **payload** violation (unknown tag, malformed body, trailing
//!   bytes) is contained to its frame: the frame boundary was sound, so
//!   the peer answers with a typed [`Response::Error`] and the stream
//!   continues — malformed frames never panic or desync.

use dewrite_hashes::Crc32;

/// Protocol magic, leading the [`Request::Hello`] body.
pub const NET_MAGIC: [u8; 4] = *b"DWNP";
/// Protocol version (bumped on any frame- or body-layout change).
/// v3 added the `digest_mode` byte to [`Hello`], after `cache_policy`.
/// v2 added the metadata-cache eviction policy to [`Hello`].
pub const NET_VERSION: u16 = 3;
/// Hard cap on a frame payload; larger length prefixes are a framing
/// violation and are never allocated.
pub const MAX_FRAME_BYTES: usize = 1 << 20;
/// Cap on a `Write` body's line payload.
pub const MAX_LINE_BYTES: usize = 1 << 14;
/// Cap on the application name in `Hello`.
pub const MAX_APP_BYTES: usize = 256;
/// Cap on an error detail string.
pub const MAX_DETAIL_BYTES: usize = 4096;

/// Frame header bytes: `len u32 · crc u32`.
pub const FRAME_HEADER_BYTES: usize = 8;

/// A framing violation: the stream is no longer trustworthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] (or is zero).
    BadLength(u32),
    /// The payload failed its CRC.
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "frame length {n} outside 1..={MAX_FRAME_BYTES}"),
            FrameError::BadCrc => write!(f, "frame payload failed its CRC"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One step of frame extraction from a connection's read buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent<'a> {
    /// Not enough bytes buffered yet for a complete frame.
    Incomplete,
    /// One checksum-valid payload; `consumed` bytes of the buffer belong
    /// to this frame (header included).
    Frame {
        /// The CRC-verified payload.
        payload: &'a [u8],
        /// Total bytes this frame occupies in the buffer.
        consumed: usize,
    },
}

/// Extract the next frame from `buf`, which starts at a frame boundary.
///
/// # Errors
///
/// [`FrameError`] on an oversized length prefix or CRC mismatch — fatal
/// for the stream (alignment can no longer be trusted).
pub fn next_frame(buf: &[u8]) -> Result<FrameEvent<'_>, FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Ok(FrameEvent::Incomplete);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if len == 0 || len as usize > MAX_FRAME_BYTES {
        return Err(FrameError::BadLength(len));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let total = FRAME_HEADER_BYTES + len as usize;
    if buf.len() < total {
        return Ok(FrameEvent::Incomplete);
    }
    let payload = &buf[FRAME_HEADER_BYTES..total];
    if Crc32::new().checksum(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok(FrameEvent::Frame {
        payload,
        consumed: total,
    })
}

/// Wrap `payload` in a `len · crc · payload` frame.
///
/// # Panics
///
/// Panics if `payload` is empty or exceeds [`MAX_FRAME_BYTES`] (encoder
/// bug, not peer input).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        !payload.is_empty() && payload.len() <= MAX_FRAME_BYTES,
        "frame payload of {} bytes outside 1..={MAX_FRAME_BYTES}",
        payload.len()
    );
    let crc = Crc32::new().checksum(payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The connection handshake: what the client wants served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the client speaks.
    pub version: u16,
    /// Line size in bytes.
    pub line_size: u32,
    /// Workload-visible line space.
    pub lines: u64,
    /// Expected data writes (sizes the per-shard arenas exactly like the
    /// in-process `EngineConfig::for_workload`).
    pub expected_writes: u64,
    /// Metadata-cache eviction policy, as `Replacement::to_wire` (0 LRU,
    /// 1 FIFO, 2 S3-FIFO). Carried in the handshake — not a server flag —
    /// so the server's shards and the client's local shadow run always
    /// agree and the bit-identity check stays meaningful per policy.
    pub cache_policy: u8,
    /// Dedup digest mode, as `DigestMode::to_wire` (0 crc32-verify,
    /// 1 strong-keyed). In the handshake for the same reason as
    /// `cache_policy`: the mode changes the simulated report, so server
    /// and shadow run must agree per connection.
    pub digest_mode: u8,
    /// Application name stamped on reports.
    pub app: String,
}

/// A client → server operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake; must be the first frame on every connection.
    Hello(Hello),
    /// Store a line.
    Write {
        /// Target line index.
        addr: u64,
        /// Index within the owning shard's subsequence of the trace (the
        /// determinism invariant travels in-band).
        shard_seq: u64,
        /// Instruction gap since the previous record.
        gap: u32,
        /// Line content (must match the session's line size).
        data: Vec<u8>,
    },
    /// Read a line.
    Read {
        /// Target line index.
        addr: u64,
        /// Index within the owning shard's subsequence of the trace.
        shard_seq: u64,
        /// Instruction gap since the previous record.
        gap: u32,
    },
    /// Cross-table consistency scrub on every shard.
    Scrub,
    /// Host-side server counters.
    Stats,
    /// Flush WAL epochs and checkpoint on every shard.
    Flush,
    /// Every shard's simulated report, merged in shard order.
    Report,
    /// Tear the engine down (drain + flush + checkpoint) and build a
    /// fresh one on the next `Hello` — sweeps reuse one server.
    Reset,
    /// Graceful server shutdown: drain, flush, checkpoint, exit.
    Shutdown,
}

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Framing violation (length/CRC); the server closes after this.
    BadFrame = 1,
    /// Unknown request tag.
    UnknownOp = 2,
    /// Decodable frame with an invalid body or field.
    BadPayload = 3,
    /// Operation needs a handshake (or an engine) that isn't there yet.
    NotReady = 4,
    /// Handshake geometry conflicts with the running engine.
    ConfigMismatch = 5,
    /// Load shed: the request was not applied.
    Overloaded = 6,
    /// A scrub reported an inconsistency.
    ScrubFailed = 7,
    /// Server-side failure (I/O, internal invariant).
    Internal = 8,
}

impl ErrorCode {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnknownOp,
            3 => ErrorCode::BadPayload,
            4 => ErrorCode::NotReady,
            5 => ErrorCode::ConfigMismatch,
            6 => ErrorCode::Overloaded,
            7 => ErrorCode::ScrubFailed,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A server → client reply. Responses stream back in each connection's
/// request order (`conn_seq` order), exactly one per request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted; the session geometry.
    HelloOk {
        /// Protocol version the server speaks.
        version: u16,
        /// Shard count (the client stamps `shard_seq` against this).
        shards: u32,
        /// Per-connection in-flight window the server enforces.
        window: u32,
        /// Line size in bytes.
        line_size: u32,
        /// Workload-visible line space.
        lines: u64,
        /// Arena slots per shard the engine was sized with.
        slots_per_shard: u64,
    },
    /// Write applied.
    WriteOk {
        /// Whether the NVM array write was eliminated (confirmed dup).
        eliminated: bool,
        /// Simulated write latency, ns.
        sim_ns: u64,
    },
    /// Read served.
    ReadOk {
        /// Simulated read latency, ns.
        sim_ns: u64,
    },
    /// Scrub passed on every shard.
    ScrubOk {
        /// Total resident lines checked.
        lines: u64,
    },
    /// Host-side server counters.
    StatsOk {
        /// Shard count (0 before the first handshake).
        shards: u32,
        /// Connections accepted since start.
        accepted: u64,
        /// Connections currently open.
        active: u64,
        /// Data operations completed.
        ops: u64,
        /// Typed error responses sent.
        errors: u64,
        /// Nanoseconds since the server started.
        uptime_ns: u64,
    },
    /// Flush + checkpoint completed on every shard.
    FlushOk,
    /// Every shard's simulated report as one JSON array, in shard order
    /// (`[shard0, shard1, …]`) — the exact per-shard texts, so the client
    /// can assert bit-identity without a float round-trip.
    ReportOk {
        /// The JSON document text.
        json: String,
    },
    /// Engine torn down; handshake again to build a fresh one.
    ResetOk,
    /// Server is draining and will exit.
    ShutdownOk,
    /// The request failed; the stream continues unless the code is
    /// [`ErrorCode::BadFrame`].
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

// Request tags.
const T_HELLO: u8 = 1;
const T_WRITE: u8 = 2;
const T_READ: u8 = 3;
const T_SCRUB: u8 = 4;
const T_STATS: u8 = 5;
const T_FLUSH: u8 = 6;
const T_REPORT: u8 = 7;
const T_RESET: u8 = 8;
const T_SHUTDOWN: u8 = 9;
// Response tags.
const T_HELLO_OK: u8 = 0x81;
const T_WRITE_OK: u8 = 0x82;
const T_READ_OK: u8 = 0x83;
const T_SCRUB_OK: u8 = 0x84;
const T_STATS_OK: u8 = 0x85;
const T_FLUSH_OK: u8 = 0x86;
const T_REPORT_OK: u8 = 0x87;
const T_RESET_OK: u8 = 0x88;
const T_SHUTDOWN_OK: u8 = 0x89;
const T_ERROR: u8 = 0xFF;

/// Bounds-checked little-endian cursor (mirrors the WAL decoder).
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() < n {
            return Err(format!(
                "body truncated: wanted {n} bytes, {} left",
                self.bytes.len()
            ));
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A `len`-prefixed byte string, with `len` bounded by `cap` before
    /// any allocation.
    fn bytes_u32(&mut self, cap: usize, what: &str) -> Result<&'a [u8], String> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(format!("{what} of {len} bytes exceeds the {cap}-byte cap"));
        }
        self.take(len)
    }

    fn bytes_u16(&mut self, cap: usize, what: &str) -> Result<&'a [u8], String> {
        let len = self.u16()? as usize;
        if len > cap {
            return Err(format!("{what} of {len} bytes exceeds the {cap}-byte cap"));
        }
        self.take(len)
    }

    fn finish(&self) -> Result<(), String> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after the body",
                self.bytes.len()
            ))
        }
    }
}

fn utf8(bytes: &[u8], what: &str) -> Result<String, String> {
    String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
}

/// Encode a request as a complete frame (header + payload).
pub fn encode_request(r: &Request) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    match r {
        Request::Hello(h) => {
            p.push(T_HELLO);
            p.extend_from_slice(&NET_MAGIC);
            p.extend_from_slice(&h.version.to_le_bytes());
            p.extend_from_slice(&h.line_size.to_le_bytes());
            p.extend_from_slice(&h.lines.to_le_bytes());
            p.extend_from_slice(&h.expected_writes.to_le_bytes());
            p.push(h.cache_policy);
            p.push(h.digest_mode);
            let app = h.app.as_bytes();
            assert!(app.len() <= MAX_APP_BYTES, "app name too long");
            p.extend_from_slice(&(app.len() as u16).to_le_bytes());
            p.extend_from_slice(app);
        }
        Request::Write {
            addr,
            shard_seq,
            gap,
            data,
        } => {
            p.push(T_WRITE);
            p.extend_from_slice(&addr.to_le_bytes());
            p.extend_from_slice(&shard_seq.to_le_bytes());
            p.extend_from_slice(&gap.to_le_bytes());
            assert!(data.len() <= MAX_LINE_BYTES, "line too long");
            p.extend_from_slice(&(data.len() as u32).to_le_bytes());
            p.extend_from_slice(data);
        }
        Request::Read {
            addr,
            shard_seq,
            gap,
        } => {
            p.push(T_READ);
            p.extend_from_slice(&addr.to_le_bytes());
            p.extend_from_slice(&shard_seq.to_le_bytes());
            p.extend_from_slice(&gap.to_le_bytes());
        }
        Request::Scrub => p.push(T_SCRUB),
        Request::Stats => p.push(T_STATS),
        Request::Flush => p.push(T_FLUSH),
        Request::Report => p.push(T_REPORT),
        Request::Reset => p.push(T_RESET),
        Request::Shutdown => p.push(T_SHUTDOWN),
    }
    encode_frame(&p)
}

/// Decode a request payload (already CRC-verified by [`next_frame`]).
///
/// # Errors
///
/// A description of the violation — contained to this frame; the stream
/// stays aligned.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let req = match tag {
        T_HELLO => {
            let magic = c.take(4)?;
            if magic != NET_MAGIC {
                return Err(format!("bad magic {magic:02x?}, want {NET_MAGIC:02x?}"));
            }
            let version = c.u16()?;
            if version != NET_VERSION {
                return Err(format!(
                    "protocol version {version}, server speaks {NET_VERSION}"
                ));
            }
            let line_size = c.u32()?;
            let lines = c.u64()?;
            let expected_writes = c.u64()?;
            let cache_policy = c.u8()?;
            let digest_mode = c.u8()?;
            let app = utf8(c.bytes_u16(MAX_APP_BYTES, "app name")?, "app name")?;
            Request::Hello(Hello {
                version,
                line_size,
                lines,
                expected_writes,
                cache_policy,
                digest_mode,
                app,
            })
        }
        T_WRITE => Request::Write {
            addr: c.u64()?,
            shard_seq: c.u64()?,
            gap: c.u32()?,
            data: c.bytes_u32(MAX_LINE_BYTES, "line payload")?.to_vec(),
        },
        T_READ => Request::Read {
            addr: c.u64()?,
            shard_seq: c.u64()?,
            gap: c.u32()?,
        },
        T_SCRUB => Request::Scrub,
        T_STATS => Request::Stats,
        T_FLUSH => Request::Flush,
        T_REPORT => Request::Report,
        T_RESET => Request::Reset,
        T_SHUTDOWN => Request::Shutdown,
        other => return Err(format!("unknown request tag {other:#04x}")),
    };
    c.finish()?;
    Ok(req)
}

/// Encode a response as a complete frame (header + payload).
pub fn encode_response(r: &Response) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    match r {
        Response::HelloOk {
            version,
            shards,
            window,
            line_size,
            lines,
            slots_per_shard,
        } => {
            p.push(T_HELLO_OK);
            p.extend_from_slice(&version.to_le_bytes());
            p.extend_from_slice(&shards.to_le_bytes());
            p.extend_from_slice(&window.to_le_bytes());
            p.extend_from_slice(&line_size.to_le_bytes());
            p.extend_from_slice(&lines.to_le_bytes());
            p.extend_from_slice(&slots_per_shard.to_le_bytes());
        }
        Response::WriteOk { eliminated, sim_ns } => {
            p.push(T_WRITE_OK);
            p.push(u8::from(*eliminated));
            p.extend_from_slice(&sim_ns.to_le_bytes());
        }
        Response::ReadOk { sim_ns } => {
            p.push(T_READ_OK);
            p.extend_from_slice(&sim_ns.to_le_bytes());
        }
        Response::ScrubOk { lines } => {
            p.push(T_SCRUB_OK);
            p.extend_from_slice(&lines.to_le_bytes());
        }
        Response::StatsOk {
            shards,
            accepted,
            active,
            ops,
            errors,
            uptime_ns,
        } => {
            p.push(T_STATS_OK);
            p.extend_from_slice(&shards.to_le_bytes());
            p.extend_from_slice(&accepted.to_le_bytes());
            p.extend_from_slice(&active.to_le_bytes());
            p.extend_from_slice(&ops.to_le_bytes());
            p.extend_from_slice(&errors.to_le_bytes());
            p.extend_from_slice(&uptime_ns.to_le_bytes());
        }
        Response::FlushOk => p.push(T_FLUSH_OK),
        Response::ReportOk { json } => {
            p.push(T_REPORT_OK);
            let bytes = json.as_bytes();
            assert!(
                bytes.len() + 8 <= MAX_FRAME_BYTES,
                "report JSON too large for one frame"
            );
            p.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            p.extend_from_slice(bytes);
        }
        Response::ResetOk => p.push(T_RESET_OK),
        Response::ShutdownOk => p.push(T_SHUTDOWN_OK),
        Response::Error { code, detail } => {
            p.push(T_ERROR);
            p.push(*code as u8);
            let bytes = &detail.as_bytes()[..detail.len().min(MAX_DETAIL_BYTES)];
            p.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            p.extend_from_slice(bytes);
        }
    }
    encode_frame(&p)
}

/// Decode a response payload (already CRC-verified by [`next_frame`]).
///
/// # Errors
///
/// A description of the violation.
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let resp = match tag {
        T_HELLO_OK => Response::HelloOk {
            version: c.u16()?,
            shards: c.u32()?,
            window: c.u32()?,
            line_size: c.u32()?,
            lines: c.u64()?,
            slots_per_shard: c.u64()?,
        },
        T_WRITE_OK => Response::WriteOk {
            eliminated: match c.u8()? {
                0 => false,
                1 => true,
                other => return Err(format!("eliminated flag {other} is not 0/1")),
            },
            sim_ns: c.u64()?,
        },
        T_READ_OK => Response::ReadOk { sim_ns: c.u64()? },
        T_SCRUB_OK => Response::ScrubOk { lines: c.u64()? },
        T_STATS_OK => Response::StatsOk {
            shards: c.u32()?,
            accepted: c.u64()?,
            active: c.u64()?,
            ops: c.u64()?,
            errors: c.u64()?,
            uptime_ns: c.u64()?,
        },
        T_FLUSH_OK => Response::FlushOk,
        T_REPORT_OK => Response::ReportOk {
            json: utf8(c.bytes_u32(MAX_FRAME_BYTES, "report JSON")?, "report JSON")?,
        },
        T_RESET_OK => Response::ResetOk,
        T_SHUTDOWN_OK => Response::ShutdownOk,
        T_ERROR => {
            let code = c.u8()?;
            let code =
                ErrorCode::from_u8(code).ok_or_else(|| format!("unknown error code {code}"))?;
            let detail = utf8(
                c.bytes_u16(MAX_DETAIL_BYTES, "error detail")?,
                "error detail",
            )?;
            Response::Error { code, detail }
        }
        other => return Err(format!("unknown response tag {other:#04x}")),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> Request {
        Request::Hello(Hello {
            version: NET_VERSION,
            line_size: 256,
            lines: 4096,
            expected_writes: 10_000,
            cache_policy: 2,
            digest_mode: 1,
            app: "mcf".into(),
        })
    }

    #[test]
    fn request_roundtrip() {
        let reqs = [
            hello(),
            Request::Write {
                addr: 77,
                shard_seq: 123,
                gap: 9,
                data: vec![0xAB; 256],
            },
            Request::Read {
                addr: 3,
                shard_seq: 0,
                gap: 0,
            },
            Request::Scrub,
            Request::Stats,
            Request::Flush,
            Request::Report,
            Request::Reset,
            Request::Shutdown,
        ];
        for req in &reqs {
            let frame = encode_request(req);
            let ev = next_frame(&frame).expect("valid frame");
            let FrameEvent::Frame { payload, consumed } = ev else {
                panic!("complete frame expected");
            };
            assert_eq!(consumed, frame.len());
            assert_eq!(&decode_request(payload).expect("decodes"), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::HelloOk {
                version: NET_VERSION,
                shards: 4,
                window: 64,
                line_size: 256,
                lines: 4096,
                slots_per_shard: 1100,
            },
            Response::WriteOk {
                eliminated: true,
                sim_ns: 321,
            },
            Response::ReadOk { sim_ns: 7 },
            Response::ScrubOk { lines: 888 },
            Response::StatsOk {
                shards: 2,
                accepted: 10,
                active: 3,
                ops: 12345,
                errors: 1,
                uptime_ns: 99,
            },
            Response::FlushOk,
            Response::ReportOk {
                json: "{\"merged\":{},\"per_shard\":[]}".into(),
            },
            Response::ResetOk,
            Response::ShutdownOk,
            Response::Error {
                code: ErrorCode::BadPayload,
                detail: "line payload of 3 bytes".into(),
            },
        ];
        for resp in &resps {
            let frame = encode_response(resp);
            let FrameEvent::Frame { payload, .. } = next_frame(&frame).expect("valid") else {
                panic!("complete frame expected");
            };
            assert_eq!(&decode_response(payload).expect("decodes"), resp);
        }
    }

    #[test]
    fn split_buffer_is_incomplete_then_complete() {
        let frame = encode_request(&Request::Scrub);
        for cut in 0..frame.len() {
            match next_frame(&frame[..cut]).expect("prefix is never an error") {
                FrameEvent::Incomplete => {}
                FrameEvent::Frame { .. } => panic!("cut {cut} decoded a partial frame"),
            }
        }
        assert!(matches!(
            next_frame(&frame).expect("whole frame"),
            FrameEvent::Frame { .. }
        ));
    }

    #[test]
    fn oversized_length_prefix_is_fatal_and_unallocated() {
        let mut frame = encode_request(&Request::Scrub);
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(next_frame(&frame), Err(FrameError::BadLength(u32::MAX)));
        let mut zero = encode_request(&Request::Scrub);
        zero[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(next_frame(&zero), Err(FrameError::BadLength(0)));
    }

    #[test]
    fn payload_bit_flip_fails_the_crc() {
        let frame = encode_request(&hello());
        for byte in FRAME_HEADER_BYTES..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x10;
            assert_eq!(next_frame(&bad), Err(FrameError::BadCrc), "byte {byte}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = vec![T_SCRUB];
        payload.push(0);
        let frame = encode_frame(&payload);
        let FrameEvent::Frame { payload, .. } = next_frame(&frame).expect("framed") else {
            panic!("complete");
        };
        assert!(decode_request(payload)
            .expect_err("trailing byte")
            .contains("trailing"));
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let mut h = hello();
        if let Request::Hello(ref mut inner) = h {
            inner.version = NET_VERSION + 1;
        }
        // encode_request writes the version verbatim; decode rejects it.
        let frame = encode_request(&h);
        let FrameEvent::Frame { payload, .. } = next_frame(&frame).expect("framed") else {
            panic!("complete");
        };
        assert!(decode_request(payload)
            .expect_err("future version")
            .contains("version"));

        let frame = encode_request(&hello());
        let mut bad = frame.clone();
        bad[FRAME_HEADER_BYTES + 1] = b'X'; // corrupt magic, fix CRC
        let payload: Vec<u8> = bad[FRAME_HEADER_BYTES..].to_vec();
        let reframed = encode_frame(&payload);
        let FrameEvent::Frame { payload, .. } = next_frame(&reframed).expect("framed") else {
            panic!("complete");
        };
        assert!(decode_request(payload)
            .expect_err("bad magic")
            .contains("magic"));
    }
}
