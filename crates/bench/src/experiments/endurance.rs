//! Endurance experiments: Fig. 12 (write reduction) and Fig. 13 (bit flips
//! per write under bit-level schemes and their combinations).

use std::collections::HashMap;

use dewrite_core::{CmeLine, DeuceLine};
use dewrite_crypto::CounterModeEngine;
use dewrite_nvm::is_zero_line;
use dewrite_trace::{all_apps, AppProfile, DupOracle, TraceOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::{mean, Ctx};
use crate::runner::{par_map_apps, Workload, KEY};
use crate::table::{pct, Table};

/// Fig. 12: whole-line write reduction by DeWrite vs the duplication that
/// exists in the workload (paper: 54% reduced of 58% existing; ~1.5% lost
/// to PNA/saturation, ~2.6% extra metadata writes).
pub fn fig12(ctx: &mut Ctx) {
    // Ground-truth duplication per app (cheap: oracle only).
    let apps = all_apps();
    let scale = ctx.scale;
    let oracle_dups = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let mut oracle = DupOracle::new();
        for rec in &w.warmup {
            oracle.observe_warmup(rec);
        }
        for rec in &w.trace {
            oracle.observe(rec);
        }
        oracle.stats().dup_ratio()
    });

    let mut t = Table::new(
        "Fig. 12 — write reduction (paper: avg 54% reduced of 58% existing duplication)",
        &[
            "app",
            "existing dup",
            "writes reduced",
            "PNA/saturation missed",
            "metadata writes",
        ],
    );
    let comparisons = ctx.comparisons().to_vec();
    let mut reduced_all = Vec::new();
    let mut existing_all = Vec::new();
    for (c, existing) in comparisons.iter().zip(oracle_dups.iter()) {
        let dm = c.dewrite.dewrite.expect("dewrite metrics");
        let writes = c.dewrite.base.writes.max(1) as f64;
        let reduced = c.dewrite.write_reduction();
        reduced_all.push(reduced);
        existing_all.push(*existing);
        t.row(vec![
            c.app.clone(),
            pct(*existing),
            pct(reduced),
            pct((dm.pna_missed_dups + dm.saturated_skips) as f64 / writes),
            pct(c.dewrite.base.meta_nvm_writes as f64 / writes),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        pct(mean(existing_all)),
        pct(mean(reduced_all)),
        String::new(),
        String::new(),
    ]);
    ctx.emit(&t, "fig12");
}

/// The nine scheme combinations of Fig. 13.
const FIG13_SCHEMES: [&str; 9] = [
    "DCW", "FNW", "DEUCE", "SS+DCW", "SS+FNW", "SS+DEUCE", "DW+DCW", "DW+FNW", "DW+DEUCE",
];

/// Per-application bit-flip measurement for all Fig. 13 combinations.
fn fig13_app(profile: &AppProfile, writes: usize, seed: u64) -> Vec<f64> {
    let engine = CounterModeEngine::new(KEY);
    let mut rng = StdRng::seed_from_u64(seed);
    let lines = 2048u64;
    let line_size = 256usize;
    let line_bits = (line_size * 8) as u64;

    // Duplicate-content pool (slot 0 = zero line), as in the generator.
    let pool: Vec<Vec<u8>> = std::iter::once(vec![0u8; line_size])
        .chain((0..256).map(|_| {
            let mut v = vec![0u8; line_size];
            rng.fill(&mut v[..]);
            v
        }))
        .collect();
    let (stay_dup, stay_nondup) = profile.markov_params();

    // Plaintext shadow per address; non-duplicate writes modify a few words
    // of the address's current content (this is what makes DEUCE shine).
    let mut plain: HashMap<u64, Vec<u8>> = HashMap::new();
    // Last address each pool content was written to: half the duplicate
    // writes rewrite the same buffer (silent stores), the case where DEUCE
    // re-encrypts nothing while DCW/FNW still suffer full diffusion.
    let mut last_addr_of: HashMap<usize, u64> = HashMap::new();
    // Residency oracle for the DW (dedup) variants.
    let mut residency: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut resident_at: HashMap<u64, Vec<u8>> = HashMap::new();

    // Line cipher states per scheme family.
    let mut cme: HashMap<u64, CmeLine> = HashMap::new();
    let mut deuce: HashMap<u64, DeuceLine> = HashMap::new();
    let mut ss_cme: HashMap<u64, CmeLine> = HashMap::new();
    let mut ss_deuce: HashMap<u64, DeuceLine> = HashMap::new();
    let mut dw_cme: HashMap<u64, CmeLine> = HashMap::new();
    let mut dw_deuce: HashMap<u64, DeuceLine> = HashMap::new();

    let mut flips = [0u64; 9]; // indexed like FIG13_SCHEMES
    let mut last_dup = false;
    let zero_prob = if profile.dup_ratio > 0.0 {
        (profile.zero_share / profile.dup_ratio).clamp(0.0, 1.0)
    } else {
        0.0
    };

    for _ in 0..writes {
        let mut addr = rng.gen_range(0..lines);
        let dup = if profile.dup_ratio <= 0.0 {
            false
        } else if last_dup {
            rng.gen_bool(stay_dup)
        } else {
            !rng.gen_bool(stay_nondup)
        };
        last_dup = dup;

        let content: Vec<u8> = if dup {
            let k = if rng.gen_bool(zero_prob) {
                0
            } else {
                1 + rng.gen_range(0..pool.len() - 1)
            };
            // Most duplicate writes rewrite the content's previous
            // location (a silent store).
            if rng.gen_bool(0.6) {
                if let Some(&a) = last_addr_of.get(&k) {
                    addr = a;
                }
            }
            last_addr_of.insert(k, addr);
            pool[k].clone()
        } else {
            // Partial modification: 1–4 words of the current content.
            let mut c = plain
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| vec![0u8; line_size]);
            let words = 1 + rng.gen_range(0..4);
            for _ in 0..words {
                let w = rng.gen_range(0..line_size / 2);
                let v: u16 = rng.gen();
                c[w * 2..w * 2 + 2].copy_from_slice(&v.to_le_bytes());
            }
            c
        };

        // Bit-level families (every write reaches the array).
        let (d, f) = cme
            .entry(addr)
            .or_insert_with(|| CmeLine::new(addr, line_size))
            .write(&engine, &content);
        flips[0] += d;
        flips[1] += f;
        flips[2] += deuce
            .entry(addr)
            .or_insert_with(|| DeuceLine::new(addr, line_size))
            .write(&engine, &content);

        // Silent Shredder: zero lines never reach the array.
        if !is_zero_line(&content) {
            let (d, f) = ss_cme
                .entry(addr)
                .or_insert_with(|| CmeLine::new(addr, line_size))
                .write(&engine, &content);
            flips[3] += d;
            flips[4] += f;
            flips[5] += ss_deuce
                .entry(addr)
                .or_insert_with(|| DeuceLine::new(addr, line_size))
                .write(&engine, &content);
        }

        // DeWrite: duplicate lines never reach the array.
        let is_resident_dup = residency.contains_key(&content);
        if !is_resident_dup {
            let (d, f) = dw_cme
                .entry(addr)
                .or_insert_with(|| CmeLine::new(addr, line_size))
                .write(&engine, &content);
            flips[6] += d;
            flips[7] += f;
            flips[8] += dw_deuce
                .entry(addr)
                .or_insert_with(|| DeuceLine::new(addr, line_size))
                .write(&engine, &content);
        }

        // Update oracles.
        if let Some(old) = resident_at.insert(addr, content.clone()) {
            if let Some(n) = residency.get_mut(&old) {
                *n -= 1;
                if *n == 0 {
                    residency.remove(&old);
                }
            }
        }
        *residency.entry(content.clone()).or_insert(0) += 1;
        plain.insert(addr, content);
    }

    let denom = (writes as u64 * line_bits) as f64;
    flips.iter().map(|&f| f as f64 / denom).collect()
}

/// Fig. 13: average bit flips per write (paper: DCW 50%, FNW 43%, DEUCE
/// 24%; with DeWrite → 22%, 19%, 11%).
pub fn fig13(ctx: &mut Ctx) {
    let apps = all_apps();
    let writes = (ctx.scale.writes / 2).max(1_000);
    let rows = par_map_apps(&apps, |profile, seed| {
        (profile.name.to_string(), fig13_app(profile, writes, seed))
    });

    let mut headers = vec!["app"];
    headers.extend(FIG13_SCHEMES);
    let mut t = Table::new(
        "Fig. 13 — average bit flips per write (paper: DCW 50%, FNW 43%, DEUCE 24%; +DeWrite: 22/19/11%)",
        &headers,
    );
    for (name, ratios) in &rows {
        let mut cells = vec![name.clone()];
        cells.extend(ratios.iter().map(|r| pct(*r)));
        t.row(cells);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for i in 0..FIG13_SCHEMES.len() {
        avg.push(pct(mean(rows.iter().map(|r| r.1[i]))));
    }
    t.row(avg);
    ctx.emit(&t, "fig13");
}

/// Sanity helper for tests: classify writes of a workload trace.
#[allow(dead_code)]
pub fn trace_zero_share(w: &Workload) -> f64 {
    let writes: Vec<_> = w
        .trace
        .iter()
        .filter_map(|r| match &r.op {
            TraceOp::Write { data, .. } => Some(data),
            TraceOp::Read { .. } => None,
        })
        .collect();
    if writes.is_empty() {
        return 0.0;
    }
    writes.iter().filter(|d| is_zero_line(d)).count() as f64 / writes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewrite_trace::app_by_name;

    #[test]
    fn fig13_orderings_hold_for_one_app() {
        let profile = app_by_name("mcf").unwrap(); // 55% dup
        let r = fig13_app(&profile, 3_000, 9);
        let (dcw, fnw, deuce) = (r[0], r[1], r[2]);
        let (dw_dcw, dw_fnw, dw_deuce) = (r[6], r[7], r[8]);
        // Paper orderings: DCW ≈ 50% > FNW > DEUCE, and DW+X < X.
        assert!((0.42..0.55).contains(&dcw), "DCW {dcw}");
        assert!(fnw < dcw && fnw > 0.3, "FNW {fnw}");
        assert!(deuce < fnw, "DEUCE {deuce} vs FNW {fnw}");
        assert!(dw_dcw < dcw * 0.7, "DW+DCW {dw_dcw}");
        assert!(dw_fnw < fnw * 0.7, "DW+FNW {dw_fnw}");
        assert!(dw_deuce < deuce, "DW+DEUCE {dw_deuce}");
        // SS saves something but less than DW (zero lines ⊂ duplicates).
        assert!(r[3] <= dcw && r[3] >= dw_dcw, "SS+DCW {}", r[3]);
    }
}
