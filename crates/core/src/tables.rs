//! The four deduplication data structures (§III-B2), laid out flat.
//!
//! This module implements the *functional* layer of the tables — exact
//! contents and invariants. Timing (metadata-cache hits, NVM accesses,
//! prefetch) is layered on top by the scheme implementations, which mirror
//! every table operation with a cache access keyed by the entry index.
//!
//! * [`HashTable`] — digest → {realAddr, reference}; multiple entries per
//!   digest are possible (CRC-32 collisions) and references saturate at 255.
//! * [`AddrMapTable`] — initAddr → realAddr for deduplicated lines.
//! * [`InvertedTable`] — realAddr → digest, for cleaning stale hashes when a
//!   resident line is overwritten or freed.
//! * [`FreeSpaceTable`] — one bit per line; allocation prefers a caller-
//!   provided home line for locality.
//!
//! # Memory layout
//!
//! These structures sit on the critical write path of every simulated and
//! engine write, so they are flat, cache-line-friendly memory rather than
//! pointer-chasing maps (see DESIGN.md, "Flat table memory layout"):
//!
//! * [`HashTable`] is a SwissTable-style open-addressing table: one control
//!   byte per slot (a 7-bit tag, or empty/tombstone), probed a 16-byte
//!   group at a time with a portable u64 SWAR scan (`DEWRITE_PORTABLE=1`
//!   forces a byte loop), with inline `{digest, real, reference}` slots and
//!   amortised rehash. CRC-collision chains are successive probe hits
//!   instead of per-digest heap `Vec`s, and each entry carries its virtual
//!   bucket position so candidate order — observable through match
//!   selection — reproduces the seed `Vec`-bucket order exactly.
//! * [`AddrMapTable`] and [`InvertedTable`] are dense `Box<[...]>` arrays
//!   indexed by `LineAddr` with a presence bitmap: the line space is
//!   bounded and known at construction, so no hashing at all.
//!
//! The seed map-backed implementations are retained in [`crate::seed`] as
//! oracles for differential tests and the `hotpath` speedup baseline.

use dewrite_nvm::LineAddr;

/// Saturation limit of the 8-bit reference field. Lines that reach it are
/// "highly referenced": further duplicates of their content are *not*
/// deduplicated, preventing overflow (§III-B2).
pub const MAX_REFERENCE: u8 = 255;

/// One hash-table entry: a resident line and its reference count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEntry {
    /// The physical line holding the content.
    pub real: LineAddr,
    /// Number of initial addresses mapped to `real`.
    pub reference: u8,
}

/// Slots per probe group: two u64 SWAR words of control bytes.
const GROUP: usize = 16;
/// Control byte: slot has never held an entry (probe chains stop here).
const CTRL_EMPTY: u8 = 0x80;
/// Control byte: tombstone — the slot held an entry that was removed
/// (probe chains continue past it; inserts may reuse it).
const CTRL_DELETED: u8 = 0xFF;
/// Smallest table: 2 groups = 32 slots.
const MIN_GROUPS: usize = 2;
const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;
/// Gathers one bit per byte lane (at bit `8k`) into bits `56..64`: byte
/// `7-k` is `1 << k`, and every product column sums distinct powers of two,
/// so no carry ever crosses a column.
const SWAR_GATHER: u64 = 0x0102_0408_1020_4080;

/// Collapse a word with per-lane high bits (`0x80` or `0x00` per byte)
/// into an 8-bit mask, bit `k` = lane `k`.
#[inline]
fn swar_gather_high_bits(hits: u64) -> u8 {
    (((hits >> 7).wrapping_mul(SWAR_GATHER)) >> 56) as u8
}

/// Exact per-lane "empty" bits (at bit `8k + 7`): the only control bytes
/// with the high bit set are `CTRL_EMPTY` (`0x80`, bit 0 clear) and
/// `CTRL_DELETED` (`0xFF`, bit 0 set), so high-and-not-low is empty.
#[inline]
fn swar_empty_bits(word: u64) -> u64 {
    (word & SWAR_HI) & !((word & SWAR_LO) << 7)
}

/// Whether group scans must use the byte-loop fallback (the process-wide
/// `DEWRITE_PORTABLE=1` switch shared with the crypto/compare kernels).
#[inline]
fn portable_scan() -> bool {
    dewrite_hashes::portable_only()
}

/// Per-lane hit bits (at bit `8k + 7`) for bytes of `word` equal to
/// `tag`, computed with the SWAR zero-byte trick. Lanes *above* a true
/// match may be false positives — callers verify every lane — but the
/// lowest set lane is always a true match and no true match is ever
/// missed. The lookup path iterates this form directly (lane =
/// `trailing_zeros() / 8`) to skip the gather multiply.
#[inline]
fn swar_match_bits(word: u64, tag: u8) -> u64 {
    let x = word ^ (SWAR_LO.wrapping_mul(u64::from(tag)));
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

/// [`swar_match_bits`] gathered to one bit per byte lane (bit `i` =
/// lane `i`) for the insert path, which juggles three masks at once.
#[inline]
fn swar_match_lanes(word: u64, tag: u8) -> u8 {
    swar_gather_high_bits(swar_match_bits(word, tag))
}

/// Candidate entries for one digest, in exact seed-bucket order
/// (insertion order perturbed by swap-remove deletes).
///
/// Dereferences to `[HashEntry]`. Allocation-free for up to
/// [`Candidates::INLINE`] entries — larger chains (many same-digest
/// collisions or saturated residues) spill to a heap buffer.
#[derive(Debug, Clone)]
pub struct Candidates {
    inline: [HashEntry; Self::INLINE],
    len: usize,
    spill: Vec<HashEntry>,
}

impl Candidates {
    /// Entries held without heap allocation.
    pub const INLINE: usize = 2;

    const PLACEHOLDER: HashEntry = HashEntry {
        real: LineAddr::new(0),
        reference: 0,
    };

    fn empty() -> Self {
        Candidates {
            inline: [Self::PLACEHOLDER; Self::INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    fn single(entry: HashEntry) -> Self {
        Candidates {
            inline: [entry, Self::PLACEHOLDER],
            len: 1,
            spill: Vec::new(),
        }
    }

    /// Place `entry` at its virtual bucket position. Positions form a
    /// permutation of `0..bucket_len`, so placement *is* the sort.
    fn place(&mut self, pos: usize, entry: HashEntry) {
        if self.spill.is_empty() && pos < Self::INLINE {
            self.inline[pos] = entry;
        } else {
            if self.spill.is_empty() {
                self.spill = self.inline[..self.len.min(Self::INLINE)].to_vec();
            }
            if self.spill.len() <= pos {
                self.spill.resize(pos + 1, Self::PLACEHOLDER);
            }
            self.spill[pos] = entry;
        }
        self.len = self.len.max(pos + 1);
    }

    /// The candidates as a slice, in bucket order.
    #[inline]
    pub fn as_slice(&self) -> &[HashEntry] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl std::ops::Deref for Candidates {
    type Target = [HashEntry];
    fn deref(&self) -> &[HashEntry] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Candidates {
    type Item = &'a HashEntry;
    type IntoIter = std::slice::Iter<'a, HashEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The digest-indexed duplicate-lookup table.
///
/// SwissTable-style open addressing over struct-of-arrays slots: control
/// bytes (7-bit tag / empty / tombstone) are probed 16 at a time; a slot
/// holds `{digest, real, reference, pos}` inline where `pos` is the entry's
/// virtual position in its digest's bucket (seed-order reproduction — see
/// module docs). All entries of one digest share one probe chain, so CRC
/// collisions are successive probe hits.
#[derive(Debug, Clone)]
pub struct HashTable {
    ctrl: Box<[u8]>,
    slots: Box<[Slot]>,
    groups: usize,
    entries: usize,
    /// Slots that are not `CTRL_EMPTY` (live entries + tombstones) — the
    /// load the probe-termination guarantee depends on.
    used: usize,
    collision_buckets: u64,
    saturated_hits: u64,
}

/// One slot's payload, kept as a single array-of-structs entry so that
/// verifying a probe candidate touches one cache line, not four.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    digest: u64,
    /// Virtual position in the digest's bucket (seed-order reproduction).
    pos: u32,
    real: u64,
    reference: u8,
}

impl Default for HashTable {
    fn default() -> Self {
        Self::new()
    }
}

impl HashTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::with_groups(MIN_GROUPS)
    }

    fn with_groups(groups: usize) -> Self {
        let slots = groups * GROUP;
        HashTable {
            ctrl: vec![CTRL_EMPTY; slots].into_boxed_slice(),
            slots: vec![Slot::default(); slots].into_boxed_slice(),
            groups,
            entries: 0,
            used: 0,
            collision_buckets: 0,
            saturated_hits: 0,
        }
    }

    #[inline]
    fn hash(digest: u64) -> u64 {
        digest.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// 7-bit control tag (high bit clear, so full slots never look
    /// empty/deleted).
    #[inline]
    fn tag(h: u64) -> u8 {
        ((h >> 57) & 0x7F) as u8
    }

    #[inline]
    fn start_group(&self, h: u64) -> usize {
        ((h >> 32) as usize) & (self.groups - 1)
    }

    /// The two SWAR words of group `g`'s control bytes, loaded with a
    /// single bounds check.
    #[inline]
    fn group_words(&self, g: usize) -> (u64, u64) {
        let base = g * GROUP;
        let bytes: &[u8; GROUP] = self.ctrl[base..base + GROUP]
            .try_into()
            .expect("16-byte group");
        (
            u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
        )
    }

    /// One-load lookup scan of group `g`: two per-word candidate-lane
    /// masks (a hit bit at `8k + 7` per lane, exact on the portable path,
    /// superset-with-verification on the SWAR path — iterated directly so
    /// the hot path never pays the gather multiplies) and whether the
    /// group holds an empty (never-used) slot — probe chains terminate in
    /// such a group. The empty test is exact on both paths.
    #[inline]
    fn scan_lookup(&self, g: usize, tag: u8, portable: bool) -> ([u64; 2], bool) {
        if portable {
            let base = g * GROUP;
            let mut words = [0u64; 2];
            let mut has_empty = false;
            for lane in 0..GROUP {
                let b = self.ctrl[base + lane];
                if b == tag {
                    words[lane / 8] |= 0x80 << ((lane % 8) * 8);
                }
                has_empty |= b == CTRL_EMPTY;
            }
            (words, has_empty)
        } else {
            let (lo, hi) = self.group_words(g);
            let words = [swar_match_bits(lo, tag), swar_match_bits(hi, tag)];
            let has_empty = (swar_empty_bits(lo) | swar_empty_bits(hi)) != 0;
            (words, has_empty)
        }
    }

    /// [`scan_lookup`](Self::scan_lookup) plus the exact 16-bit mask of
    /// non-full (empty or tombstone) lanes — insert reuses the first.
    #[inline]
    fn scan_insert(&self, g: usize, tag: u8, portable: bool) -> (u32, u32, bool) {
        if portable {
            let base = g * GROUP;
            let mut matches = 0u32;
            let mut free = 0u32;
            let mut has_empty = false;
            for lane in 0..GROUP {
                let b = self.ctrl[base + lane];
                if b == tag {
                    matches |= 1 << lane;
                }
                if b & 0x80 != 0 {
                    free |= 1 << lane;
                }
                has_empty |= b == CTRL_EMPTY;
            }
            (matches, free, has_empty)
        } else {
            let (lo, hi) = self.group_words(g);
            let matches =
                u32::from(swar_match_lanes(lo, tag)) | (u32::from(swar_match_lanes(hi, tag)) << 8);
            let free = u32::from(swar_gather_high_bits(lo & SWAR_HI))
                | (u32::from(swar_gather_high_bits(hi & SWAR_HI)) << 8);
            let has_empty = (swar_empty_bits(lo) | swar_empty_bits(hi)) != 0;
            (matches, free, has_empty)
        }
    }

    /// Find the slot holding `(digest, real)`, probing until the chain's
    /// terminating empty group.
    #[inline]
    fn find_slot(&self, digest: u64, real: u64) -> Option<usize> {
        let portable = portable_scan();
        let h = Self::hash(digest);
        let tag = Self::tag(h);
        let mut g = self.start_group(h);
        let mut stride = 0usize;
        loop {
            let (words, has_empty) = self.scan_lookup(g, tag, portable);
            for (w, mut hits) in words.into_iter().enumerate() {
                while hits != 0 {
                    let lane = (hits.trailing_zeros() >> 3) as usize;
                    hits &= hits - 1;
                    let slot = g * GROUP + w * 8 + lane;
                    let s = &self.slots[slot];
                    if self.ctrl[slot] == tag && s.digest == digest && s.real == real {
                        return Some(slot);
                    }
                }
            }
            if has_empty {
                return None;
            }
            stride += 1;
            g = (g + stride) & (self.groups - 1);
        }
    }

    /// All entries whose content hashes to `digest` (collision candidates),
    /// in exact seed-bucket order.
    ///
    /// Buckets of zero or one entry — the overwhelmingly common case — are
    /// returned straight off the probe walk; multi-entry chains (CRC
    /// collisions, saturated residues) fall back to a second walk that
    /// sorts by virtual bucket position.
    #[inline]
    pub fn candidates(&self, digest: u64) -> Candidates {
        let portable = portable_scan();
        let h = Self::hash(digest);
        let tag = Self::tag(h);
        let start = self.start_group(h);
        let mut g = start;
        let mut stride = 0usize;
        let mut single: Option<HashEntry> = None;
        loop {
            let (words, has_empty) = self.scan_lookup(g, tag, portable);
            for (w, mut hits) in words.into_iter().enumerate() {
                while hits != 0 {
                    let lane = (hits.trailing_zeros() >> 3) as usize;
                    hits &= hits - 1;
                    let slot = g * GROUP + w * 8 + lane;
                    let s = &self.slots[slot];
                    if self.ctrl[slot] == tag && s.digest == digest {
                        if single.is_some() {
                            return self.candidates_multi(digest, tag, start, portable);
                        }
                        // A one-entry bucket's position is necessarily 0.
                        single = Some(HashEntry {
                            real: LineAddr::new(s.real),
                            reference: s.reference,
                        });
                    }
                }
            }
            if has_empty {
                return match single {
                    None => Candidates::empty(),
                    Some(entry) => Candidates::single(entry),
                };
            }
            stride += 1;
            g = (g + stride) & (self.groups - 1);
        }
    }

    /// [`candidates`](Self::candidates) slow path: re-walk the chain and
    /// place every entry at its virtual bucket position.
    fn candidates_multi(&self, digest: u64, tag: u8, start: usize, portable: bool) -> Candidates {
        let mut out = Candidates::empty();
        let mut g = start;
        let mut stride = 0usize;
        loop {
            let (words, has_empty) = self.scan_lookup(g, tag, portable);
            for (w, mut hits) in words.into_iter().enumerate() {
                while hits != 0 {
                    let lane = (hits.trailing_zeros() >> 3) as usize;
                    hits &= hits - 1;
                    let slot = g * GROUP + w * 8 + lane;
                    let s = &self.slots[slot];
                    if self.ctrl[slot] == tag && s.digest == digest {
                        out.place(
                            s.pos as usize,
                            HashEntry {
                                real: LineAddr::new(s.real),
                                reference: s.reference,
                            },
                        );
                    }
                }
            }
            if has_empty {
                return out;
            }
            stride += 1;
            g = (g + stride) & (self.groups - 1);
        }
    }

    /// Grow (or retension, dropping tombstones) into a fresh table.
    fn rehash(&mut self, new_groups: usize) {
        let old = std::mem::replace(self, Self::with_groups(new_groups));
        self.collision_buckets = old.collision_buckets;
        self.saturated_hits = old.saturated_hits;
        for slot in 0..old.ctrl.len() {
            if old.ctrl[slot] & 0x80 != 0 {
                continue;
            }
            let h = Self::hash(old.slots[slot].digest);
            let target = self.raw_free_slot(h);
            self.ctrl[target] = Self::tag(h);
            self.slots[target] = old.slots[slot];
            self.entries += 1;
            self.used += 1;
        }
    }

    /// First free slot on `h`'s probe chain in a table known to hold no
    /// tombstones and no duplicate of the key being placed (rehash fill).
    fn raw_free_slot(&self, h: u64) -> usize {
        let mut g = self.start_group(h);
        let mut stride = 0usize;
        loop {
            // Free lanes are exactly the control high bits; no tag scan.
            let (lo, hi) = self.group_words(g);
            let free = u32::from(swar_gather_high_bits(lo & SWAR_HI))
                | (u32::from(swar_gather_high_bits(hi & SWAR_HI)) << 8);
            if free != 0 {
                return g * GROUP + free.trailing_zeros() as usize;
            }
            stride += 1;
            g = (g + stride) & (self.groups - 1);
        }
    }

    /// Shared insert: walks `digest`'s whole probe chain once, counting
    /// same-digest entries (the new entry's bucket position), asserting
    /// `real` is absent, and taking the first reusable slot.
    fn insert_impl(&mut self, digest: u64, real: LineAddr, reference: u8) {
        // Amortised growth: keep at least 1/8 of slots truly empty so
        // probe chains terminate and stay short.
        if (self.used + 1) * 8 > self.ctrl.len() * 7 {
            let new_groups = if (self.entries + 1) * 8 > self.ctrl.len() * 7 {
                self.groups * 2
            } else {
                self.groups // tombstone purge only
            };
            self.rehash(new_groups);
        }
        let portable = portable_scan();
        let h = Self::hash(digest);
        let tag = Self::tag(h);
        let mut g = self.start_group(h);
        let mut stride = 0usize;
        let mut bucket_len = 0usize;
        let mut target: Option<usize> = None;
        loop {
            let (mut mask, free, has_empty) = self.scan_insert(g, tag, portable);
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let slot = g * GROUP + lane;
                let s = &self.slots[slot];
                if self.ctrl[slot] == tag && s.digest == digest {
                    assert!(
                        s.real != real.index(),
                        "line {real} already indexed under digest {digest:#x}"
                    );
                    bucket_len += 1;
                }
            }
            if target.is_none() && free != 0 {
                target = Some(g * GROUP + free.trailing_zeros() as usize);
            }
            if has_empty {
                break;
            }
            stride += 1;
            g = (g + stride) & (self.groups - 1);
        }
        let slot = target.expect("the terminating group has an empty slot");
        if self.ctrl[slot] == CTRL_EMPTY {
            self.used += 1;
        }
        self.ctrl[slot] = tag;
        self.slots[slot] = Slot {
            digest,
            pos: bucket_len as u32,
            real: real.index(),
            reference,
        };
        self.entries += 1;
        if bucket_len == 1 {
            // The bucket just reached two entries (seed: `bucket.len() == 2`).
            self.collision_buckets += 1;
        }
    }

    /// Insert a new resident line with reference count 1.
    ///
    /// # Panics
    ///
    /// Panics if `real` is already present under `digest` — the caller must
    /// clean stale entries first (that is what the inverted table is for).
    pub fn insert(&mut self, digest: u64, real: LineAddr) {
        self.insert_impl(digest, real, 1);
    }

    /// Recovery-path insert with an explicit starting reference (0 is
    /// allowed transiently while mappings are being re-linked).
    ///
    /// # Panics
    ///
    /// Panics if `real` is already present under `digest`.
    pub(crate) fn insert_with_reference(&mut self, digest: u64, real: LineAddr, reference: u8) {
        self.insert_impl(digest, real, reference);
    }

    /// Increment the reference of `real` under `digest`. Returns `false`
    /// (and changes nothing) if the reference is saturated.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn add_reference(&mut self, digest: u64, real: LineAddr) -> bool {
        let slot = self
            .find_slot(digest, real.index())
            .expect("add_reference on missing hash entry");
        if self.slots[slot].reference == MAX_REFERENCE {
            self.saturated_hits += 1;
            return false;
        }
        self.slots[slot].reference += 1;
        true
    }

    /// Tombstone `slot` and re-number its digest's bucket exactly as the
    /// seed `Vec::swap_remove` did: the bucket's last entry (highest
    /// position) takes the removed entry's position.
    fn remove_slot(&mut self, slot: usize, digest: u64) {
        let portable = portable_scan();
        let removed_pos = self.slots[slot].pos;
        self.ctrl[slot] = CTRL_DELETED;
        self.entries -= 1;
        let h = Self::hash(digest);
        let tag = Self::tag(h);
        let mut g = self.start_group(h);
        let mut stride = 0usize;
        let mut last: Option<usize> = None;
        loop {
            let (words, has_empty) = self.scan_lookup(g, tag, portable);
            for (w, mut hits) in words.into_iter().enumerate() {
                while hits != 0 {
                    let lane = (hits.trailing_zeros() >> 3) as usize;
                    hits &= hits - 1;
                    let s = g * GROUP + w * 8 + lane;
                    if self.ctrl[s] == tag
                        && self.slots[s].digest == digest
                        && last.is_none_or(|l| self.slots[s].pos > self.slots[l].pos)
                    {
                        last = Some(s);
                    }
                }
            }
            if has_empty {
                break;
            }
            stride += 1;
            g = (g + stride) & (self.groups - 1);
        }
        if let Some(l) = last {
            if self.slots[l].pos > removed_pos {
                self.slots[l].pos = removed_pos;
            }
        }
    }

    /// Decrement the reference of `real` under `digest`. Returns the new
    /// count; at zero the entry is removed and the line can be freed.
    /// Saturated entries stay saturated (their true count is unknown).
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn release_reference(&mut self, digest: u64, real: LineAddr) -> u8 {
        let slot = self
            .find_slot(digest, real.index())
            .expect("release_reference on missing hash entry");
        if self.slots[slot].reference == MAX_REFERENCE {
            return MAX_REFERENCE;
        }
        self.slots[slot].reference -= 1;
        let remaining = self.slots[slot].reference;
        if remaining == 0 {
            self.remove_slot(slot, digest);
        }
        remaining
    }

    /// Remove the entry for `real` under `digest` regardless of references
    /// (used when the owner's content is overwritten and nobody references
    /// it anymore).
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn remove(&mut self, digest: u64, real: LineAddr) {
        let slot = self
            .find_slot(digest, real.index())
            .expect("remove on missing hash entry");
        self.remove_slot(slot, digest);
    }

    /// The reference count of `real` under `digest`, if present.
    #[inline]
    pub fn reference(&self, digest: u64, real: LineAddr) -> Option<u8> {
        self.find_slot(digest, real.index())
            .map(|s| self.slots[s].reference)
    }

    /// Total entries across all buckets.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Buckets that ever held ≥2 entries (digest collisions, Fig. 6).
    pub fn collision_buckets(&self) -> u64 {
        self.collision_buckets
    }

    /// Duplicate detections skipped because the entry was saturated.
    pub fn saturated_hits(&self) -> u64 {
        self.saturated_hits
    }

    /// Record that a duplicate of a saturated entry was declined without
    /// going through [`add_reference`](Self::add_reference).
    pub(crate) fn note_saturated_hit(&mut self) {
        self.saturated_hits += 1;
    }

    /// Iterate over `(digest, entry)` pairs (reference-count distribution,
    /// Fig. 7). Slot order, which is not meaningful — like the seed's map
    /// iteration order was not.
    pub fn iter(&self) -> impl Iterator<Item = (u64, HashEntry)> + '_ {
        self.ctrl
            .iter()
            .enumerate()
            .filter(|(_, &c)| c & 0x80 == 0)
            .map(|(slot, _)| {
                let s = &self.slots[slot];
                (
                    s.digest,
                    HashEntry {
                        real: LineAddr::new(s.real),
                        reference: s.reference,
                    },
                )
            })
    }
}

/// One-bit-per-index presence bitmap for the dense tables.
#[derive(Debug, Clone)]
struct PresenceBitmap {
    words: Box<[u64]>,
}

impl PresenceBitmap {
    fn new(len: u64) -> Self {
        PresenceBitmap {
            words: vec![0u64; (len as usize).div_ceil(64)].into_boxed_slice(),
        }
    }

    #[inline]
    fn get(&self, idx: u64) -> bool {
        self.words[(idx >> 6) as usize] & (1u64 << (idx & 63)) != 0
    }

    /// Set the bit; returns whether it was newly set.
    #[inline]
    fn set(&mut self, idx: u64) -> bool {
        let word = &mut self.words[(idx >> 6) as usize];
        let bit = 1u64 << (idx & 63);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Clear the bit; returns whether it was set.
    #[inline]
    fn clear(&mut self, idx: u64) -> bool {
        let word = &mut self.words[(idx >> 6) as usize];
        let bit = 1u64 << (idx & 63);
        let was = *word & bit != 0;
        *word &= !bit;
        was
    }
}

/// The initAddr → realAddr mapping for deduplicated lines.
///
/// A line absent from the table is *not deduplicated*: its data lives in its
/// home location (realAddr = initAddr). This matches the paper's colocation
/// observation — absent/"null" slots hold the encryption counter instead.
///
/// The line space is bounded and known at construction, so this is a dense
/// `Box<[u64]>` indexed by `LineAddr` with a presence bitmap — no hashing.
#[derive(Debug, Clone)]
pub struct AddrMapTable {
    real: Box<[u64]>,
    present: PresenceBitmap,
    len: usize,
}

impl AddrMapTable {
    /// An empty table over `lines` initial addresses.
    pub fn new(lines: u64) -> Self {
        AddrMapTable {
            real: vec![0u64; lines as usize].into_boxed_slice(),
            present: PresenceBitmap::new(lines),
            len: 0,
        }
    }

    /// Resolve `init` to the physical line holding its data.
    ///
    /// # Panics
    ///
    /// Panics if `init` is outside the constructed line space.
    #[inline]
    pub fn resolve(&self, init: LineAddr) -> LineAddr {
        let idx = init.index();
        assert!((idx as usize) < self.real.len(), "line {init} out of range");
        // Unconditional load keeps the select branchless: on mixed
        // mapped/unmapped streams the data-dependent branch would
        // mispredict half the time and serialise behind the bitmap word.
        let real = LineAddr::new(self.real[idx as usize]);
        if self.present.get(idx) {
            real
        } else {
            init
        }
    }

    /// Whether `init` is deduplicated (mapped away from home).
    #[inline]
    pub fn is_mapped(&self, init: LineAddr) -> bool {
        self.present.get(init.index())
    }

    /// Map `init` to `real`.
    ///
    /// # Panics
    ///
    /// Panics if `real == init` — identity mappings are represented by
    /// absence.
    pub fn map_to(&mut self, init: LineAddr, real: LineAddr) {
        assert_ne!(init, real, "identity mappings are implicit");
        let idx = init.index();
        self.real[idx as usize] = real.index();
        if self.present.set(idx) {
            self.len += 1;
        }
    }

    /// Remove `init`'s mapping (its data is back in its home line).
    pub fn unmap(&mut self, init: LineAddr) {
        if self.present.clear(init.index()) {
            self.len -= 1;
        }
    }

    /// Number of deduplicated (mapped) lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are deduplicated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The realAddr → digest table for stale-hash cleaning.
///
/// Dense `Box<[u32]>` indexed by `LineAddr` with a presence bitmap, like
/// [`AddrMapTable`].
#[derive(Debug, Clone)]
pub struct InvertedTable {
    digest: Box<[u64]>,
    present: PresenceBitmap,
    len: usize,
}

impl InvertedTable {
    /// An empty table over `lines` physical lines.
    pub fn new(lines: u64) -> Self {
        InvertedTable {
            digest: vec![0u64; lines as usize].into_boxed_slice(),
            present: PresenceBitmap::new(lines),
            len: 0,
        }
    }

    /// The digest of the content resident at `real`, if any.
    pub fn digest_of(&self, real: LineAddr) -> Option<u64> {
        let idx = real.index();
        if self.present.get(idx) {
            Some(self.digest[idx as usize])
        } else {
            None
        }
    }

    /// Record that `real` now holds content with `digest`.
    pub fn set(&mut self, real: LineAddr, digest: u64) {
        let idx = real.index();
        self.digest[idx as usize] = digest;
        if self.present.set(idx) {
            self.len += 1;
        }
    }

    /// Clear the record for `real` (line freed). Returns the stale digest.
    pub fn clear(&mut self, real: LineAddr) -> Option<u64> {
        let idx = real.index();
        if self.present.clear(idx) {
            self.len -= 1;
            Some(self.digest[idx as usize])
        } else {
            None
        }
    }

    /// Number of resident (hash-indexed) lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The free-space bitmap (1 bit per line).
#[derive(Debug, Clone)]
pub struct FreeSpaceTable {
    // true = free
    free: Vec<bool>,
    free_count: u64,
}

impl FreeSpaceTable {
    /// All `lines` start free.
    pub fn new(lines: u64) -> Self {
        FreeSpaceTable {
            free: vec![true; lines as usize],
            free_count: lines,
        }
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> u64 {
        self.free.len() as u64
    }

    /// Number of free lines.
    pub fn free_lines(&self) -> u64 {
        self.free_count
    }

    /// Whether `line` is free.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn is_free(&self, line: LineAddr) -> bool {
        self.free[line.index() as usize]
    }

    /// Mark `line` occupied.
    pub fn occupy(&mut self, line: LineAddr) {
        let slot = &mut self.free[line.index() as usize];
        if *slot {
            *slot = false;
            self.free_count -= 1;
        }
    }

    /// Mark `line` free.
    pub fn release(&mut self, line: LineAddr) {
        let slot = &mut self.free[line.index() as usize];
        if !*slot {
            *slot = true;
            self.free_count += 1;
        }
    }

    /// Allocate a line, preferring `home` if free, otherwise scanning
    /// outward from it (preserves locality as the sequential tables assume).
    /// Returns `None` when memory is exhausted.
    pub fn allocate(&mut self, home: LineAddr) -> Option<LineAddr> {
        self.allocate_within(home, 0, self.free.len() as u64)
    }

    /// Allocate within the half-open range `[lo, hi)` only, preferring
    /// `home` (which must lie in the range). Used by per-tenant dedup
    /// domains so relocated lines never leave their domain.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, out of bounds, or excludes `home`.
    pub fn allocate_within(&mut self, home: LineAddr, lo: u64, hi: u64) -> Option<LineAddr> {
        assert!(
            lo < hi && hi <= self.free.len() as u64,
            "bad range {lo}..{hi}"
        );
        assert!(
            (lo..hi).contains(&home.index()),
            "home {home} outside range {lo}..{hi}"
        );
        let span = hi - lo;
        let start = home.index();
        for offset in 0..span {
            let idx = lo + ((start - lo) + offset) % span;
            if self.free[idx as usize] {
                self.occupy(LineAddr::new(idx));
                return Some(LineAddr::new(idx));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    // ---- HashTable ----

    #[test]
    fn hash_insert_and_candidates() {
        let mut t = HashTable::new();
        assert!(t.candidates(0xAB).is_empty());
        t.insert(0xAB, l(3));
        assert_eq!(
            t.candidates(0xAB).as_slice(),
            &[HashEntry {
                real: l(3),
                reference: 1
            }]
        );
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn hash_collisions_share_a_bucket() {
        let mut t = HashTable::new();
        t.insert(0xAB, l(1));
        t.insert(0xAB, l(2)); // different content, same digest
        assert_eq!(t.candidates(0xAB).len(), 2);
        assert_eq!(t.collision_buckets(), 1);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn hash_double_insert_rejected() {
        let mut t = HashTable::new();
        t.insert(0xAB, l(1));
        t.insert(0xAB, l(1));
    }

    #[test]
    fn references_count_up_and_down() {
        let mut t = HashTable::new();
        t.insert(7, l(9));
        assert!(t.add_reference(7, l(9)));
        assert_eq!(t.reference(7, l(9)), Some(2));
        assert_eq!(t.release_reference(7, l(9)), 1);
        assert_eq!(t.release_reference(7, l(9)), 0);
        assert!(t.candidates(7).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn references_saturate_at_255() {
        let mut t = HashTable::new();
        t.insert(1, l(0));
        for _ in 0..(MAX_REFERENCE as usize - 1) {
            assert!(t.add_reference(1, l(0)));
        }
        assert_eq!(t.reference(1, l(0)), Some(MAX_REFERENCE));
        // Saturated: further duplicates are rejected and counted.
        assert!(!t.add_reference(1, l(0)));
        assert_eq!(t.saturated_hits(), 1);
        // Saturated entries never decrement (true count unknown).
        assert_eq!(t.release_reference(1, l(0)), MAX_REFERENCE);
        assert_eq!(t.reference(1, l(0)), Some(MAX_REFERENCE));
    }

    #[test]
    fn remove_deletes_regardless_of_reference() {
        let mut t = HashTable::new();
        t.insert(5, l(2));
        t.add_reference(5, l(2));
        t.remove(5, l(2));
        assert!(t.candidates(5).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut t = HashTable::new();
        t.insert(1, l(10));
        t.insert(2, l(20));
        t.insert(2, l(21));
        let mut seen: Vec<(u64, u64)> = t.iter().map(|(d, e)| (d, e.real.index())).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 10), (2, 20), (2, 21)]);
    }

    #[test]
    fn growth_keeps_every_entry_findable() {
        // Far past the initial 32-slot capacity, through several rehashes,
        // with colliding digests to stress shared probe chains.
        let mut t = HashTable::new();
        for i in 0..2000u64 {
            t.insert(u64::from(i as u32 % 257), l(i));
        }
        assert_eq!(t.len(), 2000);
        for i in 0..2000u64 {
            assert_eq!(
                t.reference(u64::from(i as u32 % 257), l(i)),
                Some(1),
                "i={i}"
            );
        }
        for d in 0..257u64 {
            let n = t.candidates(d).len();
            assert!((7..=8).contains(&n), "digest {d} has {n} candidates");
        }
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut t = HashTable::new();
        // Build a long shared chain, punch holes in the middle, then
        // verify the tail is still reachable and ordered.
        for i in 0..20u64 {
            t.insert(7, l(i));
        }
        for i in (0..20u64).step_by(2) {
            t.remove(7, l(i));
        }
        assert_eq!(t.candidates(7).len(), 10);
        for i in (1..20u64).step_by(2) {
            assert_eq!(t.reference(7, l(i)), Some(1), "i={i}");
        }
        // Reinserting reuses tombstoned slots without losing anyone.
        for i in 100..110u64 {
            t.insert(7, l(i));
        }
        assert_eq!(t.candidates(7).len(), 20);
    }

    #[test]
    fn candidate_order_matches_seed_swap_remove_semantics() {
        // Seed: bucket [a b c d], swap_remove(b) -> [a d c]. The flat
        // table must reproduce that exact order.
        let mut t = HashTable::new();
        for i in 0..4u64 {
            t.insert(9, l(i));
        }
        t.remove(9, l(1));
        let order: Vec<u64> = t.candidates(9).iter().map(|e| e.real.index()).collect();
        assert_eq!(order, vec![0, 3, 2]);
        // Removing the (current) last entry moves nobody.
        t.remove(9, l(2));
        let order: Vec<u64> = t.candidates(9).iter().map(|e| e.real.index()).collect();
        assert_eq!(order, vec![0, 3]);
    }

    #[test]
    fn portable_and_swar_scans_agree() {
        let build = || {
            let mut t = HashTable::new();
            for i in 0..300u64 {
                t.insert(i % 31, l(i));
            }
            for i in (0..300u64).step_by(3) {
                t.remove(i % 31, l(i));
            }
            t
        };
        dewrite_hashes::set_portable_only(false);
        let fast = build();
        let fast_c: Vec<Vec<u64>> = (0..31u64)
            .map(|d| fast.candidates(d).iter().map(|e| e.real.index()).collect())
            .collect();
        dewrite_hashes::set_portable_only(true);
        let portable = build();
        let portable_c: Vec<Vec<u64>> = (0..31u64)
            .map(|d| {
                portable
                    .candidates(d)
                    .iter()
                    .map(|e| e.real.index())
                    .collect()
            })
            .collect();
        // Either scan path must also read the other's table identically.
        let cross: Vec<Vec<u64>> = (0..31u64)
            .map(|d| fast.candidates(d).iter().map(|e| e.real.index()).collect())
            .collect();
        dewrite_hashes::set_portable_only(false);
        assert_eq!(fast_c, portable_c);
        assert_eq!(fast_c, cross);
    }

    // ---- differential proptests vs the seed oracles -------------------

    /// One randomized hash-table op.
    #[derive(Debug, Clone)]
    enum HashOp {
        Insert(u64, u64),
        InsertWithRef(u64, u64, u8),
        AddRef(u64, u64),
        Release(u64, u64),
        Remove(u64, u64),
    }

    fn hash_op_strategy() -> impl Strategy<Value = HashOp> {
        // Tiny digest/line spaces force collisions, shared chains, and
        // repeated remove/reinsert of the same keys.
        let d = 0u64..4;
        let r = 0u64..12;
        prop_oneof![
            (d.clone(), r.clone()).prop_map(|(d, r)| HashOp::Insert(d, r)),
            (
                d.clone(),
                r.clone(),
                prop_oneof![Just(0u8), Just(1), Just(254), Just(255)]
            )
                .prop_map(|(d, r, c)| HashOp::InsertWithRef(d, r, c)),
            (d.clone(), r.clone()).prop_map(|(d, r)| HashOp::AddRef(d, r)),
            (d.clone(), r.clone()).prop_map(|(d, r)| HashOp::Release(d, r)),
            (d, r).prop_map(|(d, r)| HashOp::Remove(d, r)),
        ]
    }

    /// Observable state must match the seed oracle after *every* op:
    /// candidate order, reference counts, len, and all statistics.
    fn assert_hash_tables_agree(seed: &crate::seed::SeedHashTable, flat: &HashTable) {
        assert_eq!(seed.len(), flat.len());
        assert_eq!(seed.is_empty(), flat.is_empty());
        assert_eq!(seed.collision_buckets(), flat.collision_buckets());
        assert_eq!(seed.saturated_hits(), flat.saturated_hits());
        for d in 0..4u64 {
            assert_eq!(
                seed.candidates(d),
                flat.candidates(d).as_slice(),
                "candidate order for digest {d}"
            );
            for r in 0..12u64 {
                assert_eq!(seed.reference(d, l(r)), flat.reference(d, l(r)));
            }
        }
    }

    proptest! {
        #[test]
        fn hash_table_matches_seed_oracle(ops in proptest::collection::vec(hash_op_strategy(), 0..120)) {
            let mut seed = crate::seed::SeedHashTable::new();
            let mut flat = HashTable::new();
            for op in ops {
                match op {
                    HashOp::Insert(d, r) => {
                        if seed.reference(d, l(r)).is_none() {
                            seed.insert(d, l(r));
                            flat.insert(d, l(r));
                        }
                    }
                    HashOp::InsertWithRef(d, r, c) => {
                        if seed.reference(d, l(r)).is_none() {
                            seed.insert_with_reference(d, l(r), c);
                            flat.insert_with_reference(d, l(r), c);
                        }
                    }
                    HashOp::AddRef(d, r) => {
                        if seed.reference(d, l(r)).is_some() {
                            prop_assert_eq!(seed.add_reference(d, l(r)), flat.add_reference(d, l(r)));
                        }
                    }
                    HashOp::Release(d, r) => {
                        // Reference 0 is a transient recovery state; the
                        // product re-links (add_reference) before anything
                        // can release, so releasing at 0 is out of model.
                        if seed.reference(d, l(r)).is_some_and(|c| c > 0) {
                            prop_assert_eq!(
                                seed.release_reference(d, l(r)),
                                flat.release_reference(d, l(r))
                            );
                        }
                    }
                    HashOp::Remove(d, r) => {
                        if seed.reference(d, l(r)).is_some() {
                            seed.remove(d, l(r));
                            flat.remove(d, l(r));
                        }
                    }
                }
                assert_hash_tables_agree(&seed, &flat);
            }
        }

        #[test]
        fn hash_table_matches_seed_through_saturation(extra in 0usize..40) {
            // Drive one entry to 255 and beyond: saturation behavior
            // (rejected add_reference, sticky release) must match exactly.
            let mut seed = crate::seed::SeedHashTable::new();
            let mut flat = HashTable::new();
            seed.insert(1, l(0));
            flat.insert(1, l(0));
            for _ in 0..(MAX_REFERENCE as usize - 1 + extra) {
                prop_assert_eq!(seed.add_reference(1, l(0)), flat.add_reference(1, l(0)));
            }
            prop_assert_eq!(seed.release_reference(1, l(0)), flat.release_reference(1, l(0)));
            assert_hash_tables_agree(&seed, &flat);
        }

        #[test]
        fn addr_map_matches_seed_oracle(
            ops in proptest::collection::vec((0u64..32, 0u64..32, any::<bool>()), 0..200)
        ) {
            let mut seed = crate::seed::SeedAddrMapTable::new();
            let mut flat = AddrMapTable::new(32);
            for (init, real, map) in ops {
                if map && init != real {
                    seed.map_to(l(init), l(real));
                    flat.map_to(l(init), l(real));
                } else if !map {
                    seed.unmap(l(init));
                    flat.unmap(l(init));
                }
                prop_assert_eq!(seed.len(), flat.len());
                for i in 0..32u64 {
                    prop_assert_eq!(seed.resolve(l(i)), flat.resolve(l(i)));
                    prop_assert_eq!(seed.is_mapped(l(i)), flat.is_mapped(l(i)));
                }
            }
        }

        #[test]
        fn inverted_matches_seed_oracle(
            ops in proptest::collection::vec((0u64..32, 0u64..8, any::<bool>()), 0..200)
        ) {
            let mut seed = crate::seed::SeedInvertedTable::new();
            let mut flat = InvertedTable::new(32);
            for (real, digest, set) in ops {
                if set {
                    seed.set(l(real), digest);
                    flat.set(l(real), digest);
                } else {
                    prop_assert_eq!(seed.clear(l(real)), flat.clear(l(real)));
                }
                prop_assert_eq!(seed.len(), flat.len());
                for i in 0..32u64 {
                    prop_assert_eq!(seed.digest_of(l(i)), flat.digest_of(l(i)));
                }
            }
        }
    }

    // ---- AddrMapTable ----

    #[test]
    fn addr_map_defaults_to_identity() {
        let m = AddrMapTable::new(16);
        assert_eq!(m.resolve(l(4)), l(4));
        assert!(!m.is_mapped(l(4)));
        assert!(m.is_empty());
    }

    #[test]
    fn addr_map_roundtrip() {
        let mut m = AddrMapTable::new(16);
        m.map_to(l(4), l(9));
        assert_eq!(m.resolve(l(4)), l(9));
        assert!(m.is_mapped(l(4)));
        assert_eq!(m.len(), 1);
        m.unmap(l(4));
        assert_eq!(m.resolve(l(4)), l(4));
    }

    #[test]
    #[should_panic(expected = "identity mappings")]
    fn addr_map_rejects_identity() {
        let mut m = AddrMapTable::new(16);
        m.map_to(l(4), l(4));
    }

    // ---- InvertedTable ----

    #[test]
    fn inverted_set_get_clear() {
        let mut t = InvertedTable::new(8);
        assert_eq!(t.digest_of(l(1)), None);
        t.set(l(1), 0xDEAD);
        assert_eq!(t.digest_of(l(1)), Some(0xDEAD));
        assert_eq!(t.len(), 1);
        assert_eq!(t.clear(l(1)), Some(0xDEAD));
        assert!(t.is_empty());
        assert_eq!(t.clear(l(1)), None);
    }

    // ---- FreeSpaceTable ----

    #[test]
    fn fsm_allocates_home_first() {
        let mut f = FreeSpaceTable::new(8);
        assert_eq!(f.free_lines(), 8);
        assert_eq!(f.allocate(l(3)), Some(l(3)));
        assert!(!f.is_free(l(3)));
        assert_eq!(f.free_lines(), 7);
    }

    #[test]
    fn fsm_scans_outward_when_home_taken() {
        let mut f = FreeSpaceTable::new(4);
        f.occupy(l(1));
        assert_eq!(f.allocate(l(1)), Some(l(2)));
    }

    #[test]
    fn fsm_wraps_around() {
        let mut f = FreeSpaceTable::new(4);
        f.occupy(l(3));
        f.occupy(l(0));
        assert_eq!(f.allocate(l(3)), Some(l(1)));
    }

    #[test]
    fn fsm_exhaustion_returns_none() {
        let mut f = FreeSpaceTable::new(2);
        assert!(f.allocate(l(0)).is_some());
        assert!(f.allocate(l(0)).is_some());
        assert_eq!(f.allocate(l(0)), None);
        assert_eq!(f.free_lines(), 0);
    }

    #[test]
    fn fsm_release_and_idempotence() {
        let mut f = FreeSpaceTable::new(2);
        f.occupy(l(0));
        f.occupy(l(0)); // idempotent
        assert_eq!(f.free_lines(), 1);
        f.release(l(0));
        f.release(l(0)); // idempotent
        assert_eq!(f.free_lines(), 2);
    }

    proptest! {
        #[test]
        fn fsm_free_count_is_consistent(ops in proptest::collection::vec((0u64..32, any::<bool>()), 0..200)) {
            let mut f = FreeSpaceTable::new(32);
            for (line, occupy) in ops {
                if occupy { f.occupy(l(line)); } else { f.release(l(line)); }
                let actual = (0..32).filter(|&i| f.is_free(l(i))).count() as u64;
                prop_assert_eq!(actual, f.free_lines());
            }
        }

        #[test]
        fn hash_len_matches_iter(inserts in proptest::collection::vec((0u64..8, 0u64..64), 0..64)) {
            let mut t = HashTable::new();
            let mut present = std::collections::HashSet::new();
            for (digest, real) in inserts {
                if present.insert((digest, real)) {
                    t.insert(digest, l(real));
                }
            }
            prop_assert_eq!(t.len(), t.iter().count());
            prop_assert_eq!(t.len(), present.len());
        }
    }
}
