//! A non-volatile main memory (NVM) device model.
//!
//! This crate is the bottom substrate of the DeWrite reproduction: a
//! trace-driven PCM-like main memory with
//!
//! * **sparse line storage** — 16 GB address space, lines materialized on
//!   first write, unwritten lines reading as zeros ([`NvmDevice`]);
//! * **bank-level contention** — each access occupies its (line-interleaved)
//!   bank for the device service time, and later arrivals queue
//!   ([`Bank`], [`BankSet`]); this queueing is what duplicate-write
//!   elimination relieves;
//! * **asymmetric timing** — 75 ns reads vs 300 ns writes ([`Timing::PCM`]),
//!   the property that makes "confirm a duplicate by reading it" cheap;
//! * **lock-free free-space words** — an atomic one-bit-per-line bitmap
//!   with `fetch_or`/`fetch_and` claim and release ([`AtomicBitmap`]), and
//!   its hierarchical successor: chunked bitmaps under per-chunk free
//!   counters with caller-owned reserved chunks and wear-aware rotation
//!   ([`FsmTree`]), the allocation substrate of the sharded engine;
//! * **wear tracking** — per-line write counts and programmed-bit counts
//!   ([`WearTracker`]) for the endurance results;
//! * **energy accounting** — per-flipped-bit write energy and a bucketed
//!   breakdown across NVM array / AES circuit / dedup logic
//!   ([`EnergyParams`], [`EnergyBreakdown`]).
//!
//! # Example
//!
//! ```
//! use dewrite_nvm::{LineAddr, NvmConfig, NvmDevice};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nvm = NvmDevice::new(NvmConfig::small())?;
//! let write = nvm.write_line(LineAddr::new(0), &[0xFF; 256], 0)?;
//! assert_eq!(write.bits_flipped, 2048); // fresh cells were all zero
//! assert_eq!(write.slot.finish_ns, 300); // PCM write latency
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod config;
mod device;
mod energy;
mod fsm_atomic;
mod fsm_tree;
mod line;
mod timing;
mod wear;
mod wearlevel;

pub use bank::{Bank, BankSet, BankSlot};
pub use config::NvmConfig;
pub use device::{Access, NvmDevice, NvmError};
pub use energy::{EnergyBreakdown, EnergyParams};
pub use fsm_atomic::AtomicBitmap;
pub use fsm_tree::{
    FsmStats, FsmTree, Reservation, CHUNK_LINES, CHUNK_WORDS, REFILL_MIN_FREE, WEAR_BUCKET_SHIFT,
};
pub use line::{bit_flips, is_zero_line, LineAddr, DEFAULT_LINE_SIZE};
pub use timing::Timing;
pub use wear::WearTracker;
pub use wearlevel::StartGap;
