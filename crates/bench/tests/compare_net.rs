//! `bench_compare` on loadgen exports carrying a `net` section: rows are
//! keyed (app, connections), throughput must not drop nor host p99 rise
//! beyond the tolerance, and matrix mismatches follow the same
//! `--allow-missing` semantics as every other mode.

use std::path::PathBuf;
use std::process::{Command, Output};

use dewrite_core::Json;

fn num(n: f64) -> Json {
    Json::Num(n)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// One net run row.
fn net_run(connections: u64, ops_per_sec: f64, host_p99_ns: u64) -> Json {
    obj(vec![
        ("connections", num(connections as f64)),
        ("ops", num(1000.0)),
        ("wall_ms", num(10.0)),
        ("ops_per_sec", num(ops_per_sec)),
        ("host_p50_ns", num(1000.0)),
        ("host_p95_ns", num(2000.0)),
        ("host_p99_ns", num(host_p99_ns as f64)),
        ("errors", num(0.0)),
        ("report_match", Json::Bool(true)),
    ])
}

/// A loadgen export with an empty in-process `apps` array and a `net`
/// section holding the given (connections, ops/s, p99) rows for one app.
fn net_export(rows: &[(u64, f64, u64)]) -> Json {
    obj(vec![
        ("schema_version", num(1.0)),
        ("tool", Json::Str("loadgen".into())),
        ("config", obj(vec![("ops", num(1000.0))])),
        ("available_parallelism", num(8.0)),
        ("check_skipped", Json::Bool(false)),
        ("apps", Json::Arr(Vec::new())),
        (
            "net",
            obj(vec![
                ("addr", Json::Str("127.0.0.1:7411".into())),
                ("window", num(32.0)),
                (
                    "apps",
                    Json::Arr(vec![obj(vec![
                        ("app", Json::Str("mcf".into())),
                        (
                            "runs",
                            Json::Arr(
                                rows.iter()
                                    .map(|&(c, ops, p99)| net_run(c, ops, p99))
                                    .collect(),
                            ),
                        ),
                    ])]),
                ),
            ]),
        ),
    ])
}

/// A plain pre-net loadgen export: `apps` only, no `net` key.
fn plain_export() -> Json {
    obj(vec![
        ("schema_version", num(1.0)),
        ("tool", Json::Str("loadgen".into())),
        ("config", obj(vec![("ops", num(1000.0))])),
        ("available_parallelism", num(8.0)),
        ("check_skipped", Json::Bool(false)),
        ("apps", Json::Arr(Vec::new())),
    ])
}

fn write_export(name: &str, json: &Json) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dewrite_compare_net_{}_{name}.json",
        std::process::id()
    ));
    std::fs::write(&path, format!("{json}\n")).expect("write export");
    path
}

fn run_compare(old: &PathBuf, new: &PathBuf, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(old)
        .arg(new)
        .args(extra)
        .output()
        .expect("spawn bench_compare")
}

#[test]
fn identical_net_sections_pass() {
    let rows = [
        (64u64, 150_000.0, 9_000_000u64),
        (256, 180_000.0, 14_000_000),
    ];
    let old = write_export("same_old", &net_export(&rows));
    let new = write_export("same_new", &net_export(&rows));
    let out = run_compare(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "identical net sections must pass; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("conns=64") && stdout.contains("conns=256"),
        "both rows must be compared, got:\n{stdout}"
    );
}

#[test]
fn net_throughput_regression_fails() {
    let old = write_export("tput_old", &net_export(&[(64, 200_000.0, 9_000_000)]));
    let new = write_export("tput_new", &net_export(&[(64, 100_000.0, 9_000_000)]));
    let out = run_compare(&old, &new, &["--tolerance", "15"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a halved ops/s must fail");
    assert!(
        stderr.contains("net mcf/64 conns") && stderr.contains("throughput regressed"),
        "regression must name the net row, got:\n{stderr}"
    );
}

#[test]
fn net_p99_regression_fails_within_tolerance_passes() {
    let old = write_export("p99_old", &net_export(&[(64, 150_000.0, 10_000_000)]));
    let worse = write_export("p99_worse", &net_export(&[(64, 150_000.0, 30_000_000)]));
    let out = run_compare(&old, &worse, &["--tolerance", "50"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a tripled p99 must fail at ±50%");
    assert!(
        stderr.contains("host p99 regressed"),
        "p99 regression must be reported, got:\n{stderr}"
    );

    let close = write_export("p99_close", &net_export(&[(64, 150_000.0, 11_000_000)]));
    let out = run_compare(&old, &close, &["--tolerance", "50"]);
    assert!(
        out.status.success(),
        "a 10% p99 drift is inside a ±50% band; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn missing_net_row_follows_allow_missing_semantics() {
    let old = write_export(
        "miss_old",
        &net_export(&[(64, 150_000.0, 9_000_000), (256, 180_000.0, 14_000_000)]),
    );
    let new = write_export("miss_new", &net_export(&[(64, 150_000.0, 9_000_000)]));

    let out = run_compare(&old, &new, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a dropped connections row must fail");
    assert!(
        stderr.contains("net mcf/256 conns") && stderr.contains("missing from"),
        "dropped row must be reported, got:\n{stderr}"
    );

    let out = run_compare(&old, &new, &["--allow-missing"]);
    assert!(
        out.status.success(),
        "--allow-missing must tolerate it; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn pre_net_baseline_compares_against_a_net_export() {
    // An old export from before the socket frontend has no `net` key at
    // all; the new rows have no baseline, which is missing-but-tolerable.
    let old = write_export("pre_old", &plain_export());
    let new = write_export("pre_new", &net_export(&[(64, 150_000.0, 9_000_000)]));

    let out = run_compare(&old, &new, &[]);
    assert!(
        !out.status.success(),
        "net rows without a baseline must fail by default"
    );
    let out = run_compare(&old, &new, &["--allow-missing"]);
    assert!(
        out.status.success(),
        "--allow-missing must tolerate a freshly added net section; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
