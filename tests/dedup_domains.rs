//! Per-tenant dedup domains: the mitigation for the cross-tenant dedup
//! timing side channel demonstrated in `examples/timing_probe.rs`. With
//! `dedup_domains > 1`, content never deduplicates across a domain
//! boundary, so an attacker in one domain learns nothing about residency
//! in another — while intra-domain deduplication keeps working.

use dewrite::core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
use dewrite::nvm::LineAddr;

const KEY: &[u8; 16] = b"domain test key!";
const LINES: u64 = 2048;

fn memory(domains: u64) -> DeWrite {
    let mut cfg = DeWriteConfig::paper();
    cfg.dedup_domains = domains;
    DeWrite::new(SystemConfig::for_lines(LINES), cfg, KEY)
}

#[test]
fn cross_domain_writes_never_deduplicate() {
    // Two domains: [0, 1024) and [1024, 2048).
    let mut mem = memory(2);
    let secret = vec![0x5Au8; 256];

    // Victim (domain 0) stores the content.
    let w = mem.write(LineAddr::new(10), &secret, 0).expect("write");
    assert!(!w.eliminated);

    // Attacker (domain 1) probes the same content repeatedly, resetting its
    // probe line with unique junk in between (as a real residency probe
    // must, so it never matches its own earlier copy). The probe must never
    // come back "duplicate", however warm the caches get.
    let probe = LineAddr::new(1500);
    let mut junk = vec![0xEEu8; 256];
    let mut t = 10_000;
    for i in 0..20u64 {
        let w = mem.write(probe, &secret, t).expect("write");
        assert!(
            !w.eliminated,
            "probe {i} deduplicated across the domain boundary"
        );
        t += 5_000;
        junk[0..8].copy_from_slice(&i.to_le_bytes());
        let w = mem.write(probe, &junk, t).expect("reset");
        assert!(!w.eliminated);
        t += 5_000;
    }
    mem.index().check_invariants().expect("invariants");
}

#[test]
fn intra_domain_dedup_still_works() {
    let mut mem = memory(2);
    let content = vec![0x77u8; 256];
    mem.write(LineAddr::new(0), &content, 0).expect("write");
    let w = mem
        .write(LineAddr::new(5), &content, 10_000)
        .expect("write");
    assert!(
        w.eliminated,
        "same-domain duplicate must still be eliminated"
    );

    // And independently in the second domain: first write stores, second
    // dedups against the *domain-local* copy.
    let w = mem
        .write(LineAddr::new(1500), &content, 20_000)
        .expect("write");
    assert!(!w.eliminated, "first copy in domain 1 must be stored");
    let w = mem
        .write(LineAddr::new(1600), &content, 30_000)
        .expect("write");
    assert!(w.eliminated, "domain-1 duplicate of the domain-1 copy");
}

#[test]
fn relocated_lines_stay_inside_their_domain() {
    let mut mem = memory(2);
    let shared = vec![0x11u8; 256];
    let fresh = vec![0x22u8; 256];

    // Build the shared-line-forces-relocation scenario near the domain
    // boundary of domain 0.
    mem.write(LineAddr::new(1000), &shared, 0).expect("write");
    mem.write(LineAddr::new(1010), &shared, 10_000)
        .expect("write"); // dedup
    mem.write(LineAddr::new(1000), &fresh, 20_000)
        .expect("write"); // relocate

    // Wherever 1000's new line landed, it must be inside domain 0.
    let real = mem.index().resolve(LineAddr::new(1000)).expect("written");
    assert!(real.index() < 1024, "relocated to {real} outside domain 0");
    assert_eq!(
        mem.read(LineAddr::new(1000), 30_000).expect("read").data,
        fresh
    );
    assert_eq!(
        mem.read(LineAddr::new(1010), 40_000).expect("read").data,
        shared
    );
}

#[test]
fn many_domains_degrade_reduction_gracefully() {
    // The isolation/efficiency trade-off: more domains = fewer cross-tenant
    // dedup opportunities, but correctness and intra-domain behaviour hold.
    let content = vec![0xABu8; 256];
    for domains in [1u64, 4, 16] {
        let mut mem = memory(domains);
        let mut t = 0;
        let stride = LINES / 16;
        for k in 0..16u64 {
            mem.write(LineAddr::new(k * stride), &content, t)
                .expect("write");
            t += 5_000;
        }
        let m = mem.base_metrics();
        // With d domains, the 16 spread-out writes hold one stored copy per
        // touched domain.
        let expected_stored = domains.min(16);
        assert_eq!(
            m.writes - m.writes_eliminated,
            expected_stored,
            "domains={domains}"
        );
        mem.index().check_invariants().expect("invariants");
    }
}
