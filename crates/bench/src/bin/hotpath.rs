//! Host-speed microbenchmark of the crypto/fingerprint/table hot path.
//!
//! Measures *wall-clock host* throughput (the thing the engine overhaul
//! optimizes) of each AES backend, each CRC implementation, and the flat
//! dedup-index / metadata-cache structures, then emits `BENCH_hotpath.json`
//! with ops/s and MB/s per engine plus the headline speedups versus the
//! seed-era implementations (retained in `dewrite_core::seed` and
//! `dewrite_mem::seed`). Simulated ns are untouched by any of these — see
//! the "Host time vs simulated time" and "Flat table memory layout"
//! sections of DESIGN.md.
//!
//! Usage:
//!   hotpath [--quick] [--check] [--out PATH]
//!
//! `--quick` (or env `BENCH_QUICK=1`) shortens sampling for CI smoke runs.
//! `--check` exits non-zero unless the tentpole speedups hold (≥3x on
//! 256 B line encryption, ≥4x on 256 B CRC digest, ≥3x on dedup-index
//! lookup, ≥2x on metadata-cache access, ≥2x on a near-full-arena FSM
//! claim, all vs the seed/flat implementations) and the `cache_scan`
//! scan-resistance floor holds (S3-FIFO hot-set hit rate ≥2x LRU's under
//! a 4x-capacity sequential sweep — a deterministic hit-rate ratio, not
//! wall clock). The digest-mode gates ride along: the strong keyed
//! kernel's `digest_256B` must be ≥5x faster than each cryptographic
//! baseline (SHA-1 and MD5), and the `dedup_commit` verify-free decision
//! ≥1.5x faster than the crc32-verify decision on a duplicate-heavy mix.
//! Two floors apply conditionally and report skips honestly (`SKIPPED:`
//! on stderr, `check_skipped` in the JSON) instead of passing vacuously:
//! the `fsm_claim_contended` floor (≥2x at 4 threads) needs ≥4 hardware
//! threads, and the strong-vs-crypto digest floor needs the kernel's
//! SIMD leg to be live (not `DEWRITE_PORTABLE`, x86-64 with SSSE3).

use std::time::Instant;

use dewrite_core::Json;
use dewrite_crypto::{Aes128, Aes128Reference, CounterModeEngine, LineCounter};
use dewrite_hashes::{
    md5_digest, sha1_digest, Crc32, Crc32c, CrcBackend, StrongKeyed, StrongScratch,
};
use dewrite_mem::{CacheConfig, MetadataCache};
use dewrite_nvm::{AtomicBitmap, FsmTree, LineAddr, Reservation, CHUNK_LINES};

/// One measured engine variant.
struct Sample {
    name: &'static str,
    engine: &'static str,
    bytes_per_op: u64,
    iters: u64,
    total_ns: u128,
}

impl Sample {
    fn ns_per_op(&self) -> f64 {
        self.total_ns as f64 / self.iters as f64
    }
    fn ops_per_s(&self) -> f64 {
        1e9 / self.ns_per_op()
    }
    fn mb_per_s(&self) -> f64 {
        (self.bytes_per_op as f64 * self.ops_per_s()) / 1e6
    }
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.into())),
            ("engine".into(), Json::Str(self.engine.into())),
            ("bytes_per_op".into(), Json::Num(self.bytes_per_op as f64)),
            ("iters".into(), Json::Num(self.iters as f64)),
            ("ns_per_op".into(), Json::Num(self.ns_per_op())),
            ("ops_per_s".into(), Json::Num(self.ops_per_s())),
            ("mb_per_s".into(), Json::Num(self.mb_per_s())),
        ])
    }
}

/// Run `op` until at least `budget_ns` of wall clock is spent (after a
/// short calibration pass), returning (iters, ns) for the *median* batch.
/// The median over many batches spread across the budget is robust in both
/// directions: interference spikes and frequency drift inflate the right
/// tail, rare everything-warm windows deflate the left, and a whole-budget
/// mean or a best-batch minimum each chases one of those tails — exactly
/// the noise a CI ratio gate must not be sensitive to.
fn measure<F: FnMut() -> u64>(budget_ns: u128, mut op: F) -> (u64, u128) {
    // Calibration: find an iteration count that takes ~1/64 of the budget.
    let mut batch = 1u64;
    let mut sink = 0u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            sink = sink.wrapping_add(op());
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= budget_ns / 64 || batch >= 1 << 30 {
            break;
        }
        batch *= 2;
    }
    // Measurement: run batches until the budget is consumed.
    let mut times = Vec::new();
    let mut total = 0u128;
    while total < budget_ns {
        let start = Instant::now();
        for _ in 0..batch {
            sink = sink.wrapping_add(op());
        }
        let elapsed = start.elapsed().as_nanos();
        total += elapsed;
        times.push(elapsed);
    }
    std::hint::black_box(sink);
    times.sort_unstable();
    (batch, times[times.len() / 2])
}

/// The multi-threaded sibling of [`measure`]: each batch spawns `threads`
/// workers that run `op(thread_id, per_thread_iters)` concurrently, and the
/// batch's wall time covers the whole scope. Returns
/// `(threads * per_thread_iters, median_batch_ns)`, so `ns_per_op` is
/// *aggregate* time per operation — the figure that halves when two
/// threads truly run in parallel. Calibration starts high enough that the
/// per-batch thread spawn cost is amortized away.
fn measure_contended<F: Fn(usize, u64) -> u64 + Sync>(
    budget_ns: u128,
    threads: usize,
    op: F,
) -> (u64, u128) {
    let run_batch = |per_thread: u64| -> u128 {
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let op = &op;
                s.spawn(move || std::hint::black_box(op(t, per_thread)));
            }
        });
        start.elapsed().as_nanos()
    };
    let mut batch = 4096u64;
    loop {
        let elapsed = run_batch(batch);
        if elapsed >= budget_ns / 64 || batch >= 1 << 28 {
            break;
        }
        batch *= 2;
    }
    let mut times = Vec::new();
    let mut total = 0u128;
    while total < budget_ns {
        let elapsed = run_batch(batch);
        total += elapsed;
        times.push(elapsed);
    }
    times.sort_unstable();
    (threads as u64 * batch, times[times.len() / 2])
}

/// The seed-era line encryption, reproduced exactly: a fresh pad `Vec` per
/// call, blocks from the from-scratch FIPS-197 cipher, then a collecting
/// XOR. This is the baseline the tentpole speedup is measured against.
fn seed_encrypt_line(
    aes: &Aes128Reference,
    plaintext: &[u8],
    addr: u64,
    counter: LineCounter,
) -> Vec<u8> {
    let mut pad = Vec::with_capacity(plaintext.len());
    for block_idx in 0..plaintext.len().div_ceil(16) {
        let mut seed = [0u8; 16];
        seed[0..8].copy_from_slice(&addr.to_le_bytes());
        seed[8..12].copy_from_slice(&counter.value().to_le_bytes());
        seed[12..16].copy_from_slice(&(block_idx as u32).to_le_bytes());
        pad.extend_from_slice(&aes.encrypt_block(&seed));
    }
    pad.truncate(plaintext.len());
    plaintext
        .iter()
        .zip(pad.iter())
        .map(|(p, k)| p ^ k)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    let budget_ns: u128 = if quick { 20_000_000 } else { 300_000_000 };

    let key = *b"dewrite-repro-16";
    let line: Vec<u8> = (0..256).map(|i| (i * 31 % 251) as u8).collect();
    let block: [u8; 16] = line[0..16].try_into().expect("16 bytes");
    let ctr = LineCounter::from_value(7);

    let reference = Aes128Reference::new(&key);
    let ttable = Aes128::portable(&key);
    let hw_aes = Aes128::hardware(&key);
    let engine = CounterModeEngine::new(&key);

    let mut samples: Vec<Sample> = Vec::new();
    let mut push = |name, engine, bytes, (iters, total_ns)| {
        let s = Sample {
            name,
            engine,
            bytes_per_op: bytes,
            iters,
            total_ns,
        };
        eprintln!(
            "{:>24} / {:<12} {:>10.1} ns/op {:>10.1} MB/s",
            s.name,
            s.engine,
            s.ns_per_op(),
            s.mb_per_s()
        );
        samples.push(s);
    };

    // --- AES single block ---
    push(
        "aes_block",
        "reference",
        16,
        measure(budget_ns, || {
            reference.encrypt_block(std::hint::black_box(&block))[0] as u64
        }),
    );
    push(
        "aes_block",
        "t-table",
        16,
        measure(budget_ns, || {
            ttable.encrypt_block(std::hint::black_box(&block))[0] as u64
        }),
    );
    if let Some(hw) = &hw_aes {
        push(
            "aes_block",
            "aes-ni",
            16,
            measure(budget_ns, || {
                hw.encrypt_block(std::hint::black_box(&block))[0] as u64
            }),
        );
    }

    // --- Full 256 B line encryption (counter mode) ---
    push(
        "line_encrypt_256B",
        "seed",
        256,
        measure(budget_ns, || {
            seed_encrypt_line(&reference, std::hint::black_box(&line), 0x1000, ctr)[0] as u64
        }),
    );
    {
        let mut buf = [0u8; 256];
        push(
            "line_encrypt_256B",
            "fast",
            256,
            measure(budget_ns, || {
                engine.encrypt_line_into(std::hint::black_box(&line), 0x1000, ctr, &mut buf);
                buf[0] as u64
            }),
        );
    }

    // --- 256 B CRC digest ---
    let crc32 = Crc32::new();
    let crc32c = Crc32c::new();
    let crc32c_portable = Crc32c::portable();
    push(
        "crc_256B",
        "seed",
        256,
        measure(budget_ns, || {
            u64::from(crc32.checksum_bytewise(std::hint::black_box(&line)))
        }),
    );
    push(
        "crc_256B",
        "slice-by-8",
        256,
        measure(budget_ns, || {
            u64::from(crc32.checksum(std::hint::black_box(&line)))
        }),
    );
    push(
        "crc32c_256B",
        "slice-by-8",
        256,
        measure(budget_ns, || {
            u64::from(crc32c_portable.checksum(std::hint::black_box(&line)))
        }),
    );
    if crc32c.backend_kind() == CrcBackend::Sse42 {
        push(
            "crc32c_256B",
            "sse4.2",
            256,
            measure(budget_ns, || {
                u64::from(crc32c.checksum(std::hint::black_box(&line)))
            }),
        );
    }

    // --- 256 B dedup digest: the DigestMode fingerprint family ---
    // Every fingerprint the digest-mode axis chooses between, on the hot
    // line size. CRC-32 is the light fingerprint that needs a verify read;
    // the strong keyed kernel is the collision-resistant tag that makes the
    // verify read skippable; SHA-1/MD5 are the cryptographic baselines
    // Table I cites as disqualifying (and `traditional` mode still pays).
    let strong = StrongKeyed::new();
    let strong_portable = StrongKeyed::portable();
    push(
        "digest_256B",
        "crc32",
        256,
        measure(budget_ns, || {
            u64::from(crc32.checksum(std::hint::black_box(&line)))
        }),
    );
    {
        let mut scratch = StrongScratch::new();
        push(
            "digest_256B",
            "strong-fast",
            256,
            measure(budget_ns, || {
                strong.digest_with(std::hint::black_box(&line), &mut scratch)
            }),
        );
        push(
            "digest_256B",
            "strong-portable",
            256,
            measure(budget_ns, || {
                strong_portable.digest_with(std::hint::black_box(&line), &mut scratch)
            }),
        );
    }
    push(
        "digest_256B",
        "sha1",
        256,
        measure(budget_ns, || {
            u64::from(sha1_digest(std::hint::black_box(&line))[0])
        }),
    );
    push(
        "digest_256B",
        "md5",
        256,
        measure(budget_ns, || {
            u64::from(md5_digest(std::hint::black_box(&line))[0])
        }),
    );

    // --- 256 B verify compare (equal lines: the full-length worst case a
    // --- confirmed duplicate pays) ---
    let line_copy = line.clone();
    push(
        "compare_256B",
        "seed",
        256,
        measure(budget_ns, || {
            u64::from(dewrite_core::lines_equal_portable(
                std::hint::black_box(&line),
                std::hint::black_box(&line_copy),
            ))
        }),
    );
    push(
        "compare_256B",
        "fast",
        256,
        measure(budget_ns, || {
            u64::from(dewrite_core::lines_equal_chunked(
                std::hint::black_box(&line),
                std::hint::black_box(&line_copy),
            ))
        }),
    );

    // --- Dedup-commit decision: crc32-verify vs strong-keyed verify-free ---
    // The end-to-end host cost of deciding "this write is a duplicate", on
    // a duplicate-heavy stream where every probe hits. The crc32-verify leg
    // pays the light digest, the index probe, and then the verify read it
    // can never skip: fetch the candidate's resident ciphertext, decrypt it
    // under the resident line's counter, and byte-compare. The strong-keyed
    // leg pays its longer digest and the probe, then commits on the tag
    // match alone. The resident set is sized well past any LLC and its
    // slots are content-hash-scattered, so the verify read chases a cold
    // candidate line — exactly the memory round trip verify-free elides —
    // while the incoming stream sweeps in arrival order (a CPU-produced
    // write is stream-friendly) and costs both legs the same.
    {
        const COMMIT_LINES: usize = 1 << 19;
        const COMMIT_BASE: u64 = 1 << 24;
        let mut pool = vec![0u8; COMMIT_LINES * 256];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for word in pool.chunks_exact_mut(8) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            word.copy_from_slice(&x.to_le_bytes());
        }
        let scatter = |i: usize| i.wrapping_mul(0x9E37_79B1) & (COMMIT_LINES - 1);
        let mut resident = vec![0u8; COMMIT_LINES * 256];
        let mut ctrs = vec![LineCounter::from_value(0); COMMIT_LINES];
        let mut crc_index = dewrite_core::tables::HashTable::new();
        let mut strong_index = dewrite_core::tables::HashTable::new();
        let mut scratch = StrongScratch::new();
        for i in 0..COMMIT_LINES {
            let content = &pool[i * 256..(i + 1) * 256];
            let slot = scatter(i);
            let addr = LineAddr::new(COMMIT_BASE + slot as u64);
            let line_ctr = LineCounter::from_value((slot % 61) as u32);
            ctrs[slot] = line_ctr;
            engine.encrypt_line_into(
                content,
                addr.index(),
                line_ctr,
                &mut resident[slot * 256..(slot + 1) * 256],
            );
            crc_index.insert(u64::from(crc32.checksum(content)), addr);
            strong_index.insert(strong.digest_with(content, &mut scratch), addr);
        }
        {
            let mut i = 0usize;
            let mut buf = [0u8; 256];
            push(
                "dedup_commit",
                "crc32-verify",
                256,
                measure(budget_ns, || {
                    let content = std::hint::black_box(&pool[i * 256..(i + 1) * 256]);
                    i = (i + 1) & (COMMIT_LINES - 1);
                    let digest = u64::from(crc32.checksum(content));
                    let mut hit = 0u64;
                    for cand in crc_index.candidates(digest).as_slice() {
                        let slot = (cand.real.index() - COMMIT_BASE) as usize;
                        engine.decrypt_line_into(
                            &resident[slot * 256..(slot + 1) * 256],
                            cand.real.index(),
                            ctrs[slot],
                            &mut buf,
                        );
                        if dewrite_core::lines_equal_chunked(content, &buf) {
                            hit = cand.real.index();
                            break;
                        }
                    }
                    hit
                }),
            );
        }
        {
            let mut i = 0usize;
            push(
                "dedup_commit",
                "strong-verify-free",
                256,
                measure(budget_ns, || {
                    let content = std::hint::black_box(&pool[i * 256..(i + 1) * 256]);
                    i = (i + 1) & (COMMIT_LINES - 1);
                    let tag = strong.digest_with(content, &mut scratch);
                    strong_index
                        .candidates(tag)
                        .first()
                        .map_or(0, |e| e.real.index())
                }),
            );
        }
    }

    // --- Dedup-index probe and store (flat SwissTable vs seed HashMap) ---
    // A populated table with digests spread over a 24-bit space so collision
    // chains stay realistic (mostly singletons). Sized at 64K resident lines
    // — a working set deep enough that structure layout (dense arrays and
    // inline slots vs hash buckets behind pointer chases) governs the
    // memory traffic each probe pays.
    const INDEX_LINES: u64 = 1 << 16;
    let digest_of = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
    let mut seed_index = dewrite_core::seed::SeedHashTable::new();
    let mut flat_index = dewrite_core::tables::HashTable::new();
    for i in 0..INDEX_LINES {
        let digest = digest_of(i);
        if seed_index.reference(digest, LineAddr::new(i)).is_none() {
            seed_index.insert(digest, LineAddr::new(i));
            flat_index.insert(digest, LineAddr::new(i));
        }
    }
    // Lookup: the write path's per-write index lookup — resolve the line's
    // current mapping, fetch the resident content's digest from the
    // inverted table (the overwrite check every store performs), then
    // probe candidates for a digest stream with ~50% hit rate (the
    // duplicate query). Half the lines are mapped away.
    let mut seed_amt = dewrite_core::seed::SeedAddrMapTable::new();
    let mut flat_amt = dewrite_core::tables::AddrMapTable::new(2 * INDEX_LINES);
    let mut seed_inv = dewrite_core::seed::SeedInvertedTable::new();
    let mut flat_inv = dewrite_core::tables::InvertedTable::new(2 * INDEX_LINES);
    for i in 0..INDEX_LINES {
        let real = if i % 2 == 1 {
            seed_amt.map_to(LineAddr::new(i), LineAddr::new(INDEX_LINES + i));
            flat_amt.map_to(LineAddr::new(i), LineAddr::new(INDEX_LINES + i));
            INDEX_LINES + i
        } else {
            i
        };
        seed_inv.set(LineAddr::new(real), digest_of(i));
        flat_inv.set(LineAddr::new(real), digest_of(i));
    }
    {
        let mut i = 0u64;
        push(
            "index_lookup",
            "seed",
            8,
            measure(budget_ns, || {
                let n = std::hint::black_box(i);
                let digest = digest_of(n % (2 * INDEX_LINES));
                let addr = LineAddr::new(n % INDEX_LINES);
                i += 1;
                let real = seed_amt.resolve(addr);
                let old = seed_inv.digest_of(real).unwrap_or(0);
                seed_index
                    .candidates(digest)
                    .first()
                    .map_or(real.index() ^ old, |e| {
                        u64::from(e.reference) ^ real.index() ^ old
                    })
            }),
        );
    }
    {
        let mut i = 0u64;
        push(
            "index_lookup",
            "flat",
            8,
            measure(budget_ns, || {
                let n = std::hint::black_box(i);
                let digest = digest_of(n % (2 * INDEX_LINES));
                let addr = LineAddr::new(n % INDEX_LINES);
                i += 1;
                let real = flat_amt.resolve(addr);
                let old = flat_inv.digest_of(real).unwrap_or(0);
                flat_index
                    .candidates(digest)
                    .first()
                    .map_or(real.index() ^ old, |e| {
                        u64::from(e.reference) ^ real.index() ^ old
                    })
            }),
        );
    }
    // Store: insert + remove churn against the populated table (the
    // non-duplicate write's metadata update plus the overwrite cleanup).
    {
        let mut j = 0u64;
        push(
            "index_store",
            "seed",
            8,
            measure(budget_ns, || {
                let digest = digest_of(std::hint::black_box(j) ^ 0xA5A5);
                let real = LineAddr::new(INDEX_LINES + (j % 1024));
                seed_index.insert(digest, real);
                seed_index.remove(digest, real);
                j += 1;
                digest
            }),
        );
    }
    {
        let mut j = 0u64;
        push(
            "index_store",
            "flat",
            8,
            measure(budget_ns, || {
                let digest = digest_of(std::hint::black_box(j) ^ 0xA5A5);
                let real = LineAddr::new(INDEX_LINES + (j % 1024));
                flat_index.insert(digest, real);
                flat_index.remove(digest, real);
                j += 1;
                digest
            }),
        );
    }

    // --- Metadata-cache access (flat tag/way arrays vs seed per-set Vecs) ---
    // A highly-associative metadata cache (the paper's on-chip metadata
    // store checks every way of a set per probe) under a 50% hit / 50%
    // true-miss access stream with no fill — the presence probe the write
    // path issues constantly. A miss must rule out every way: the seed
    // walks all 32 key slots behind a per-set Vec, the flat layout answers
    // from four SWAR tag words.
    let probe_cfg = CacheConfig {
        capacity: 16 * 1024,
        associativity: 32,
        replacement: dewrite_mem::Replacement::Lru,
    };
    {
        let mut cache = dewrite_mem::seed::SeedMetadataCache::new(probe_cfg);
        for k in 0..16_384u64 {
            cache.insert(k, false);
        }
        let mut i = 0u64;
        push(
            "cache_access",
            "seed",
            8,
            measure(budget_ns, || {
                let key = (std::hint::black_box(i).wrapping_mul(2_654_435_761)) % 32_768;
                i += 1;
                u64::from(cache.access(key, false))
            }),
        );
    }
    {
        let mut cache = MetadataCache::new(probe_cfg);
        for k in 0..16_384u64 {
            cache.insert(k, false);
        }
        let mut i = 0u64;
        push(
            "cache_access",
            "flat",
            8,
            measure(budget_ns, || {
                let key = (std::hint::black_box(i).wrapping_mul(2_654_435_761)) % 32_768;
                i += 1;
                u64::from(cache.access(key, false))
            }),
        );
    }
    // The same probe stream under the other eviction policies: the
    // policy dispatch must not tax the flat layout's hit path. (The
    // LRU row above keeps its historical "flat" engine name so old
    // baselines stay comparable.)
    for (policy, engine) in [
        (dewrite_mem::Replacement::Fifo, "flat-fifo"),
        (dewrite_mem::Replacement::S3Fifo, "flat-s3-fifo"),
    ] {
        let mut cache = MetadataCache::new(CacheConfig {
            replacement: policy,
            ..probe_cfg
        });
        for k in 0..16_384u64 {
            cache.insert(k, false);
        }
        let mut i = 0u64;
        push(
            "cache_access",
            engine,
            8,
            measure(budget_ns, || {
                let key = (std::hint::black_box(i).wrapping_mul(2_654_435_761)) % 32_768;
                i += 1;
                u64::from(cache.access(key, false))
            }),
        );
    }

    // --- Metadata-cache scan resistance: sweep vs embedded hot set ---
    // A sequential sweep over 4x the cache's capacity, interleaved (one
    // hot touch per four sweep lines) with an 8K-entry hot set that was
    // resident and re-referenced before the sweep began. Under LRU the
    // sweep's one-hit-wonder fills ratchet every hot entry out before its
    // next touch; S3-FIFO's small-queue filter evicts the sweep keys at
    // frequency zero and keeps the hot set in main. The hot-set hit rate
    // during the sweep is the scan-resistance figure the check gates;
    // the timed row keeps the whole scan on the perf radar. One scan =
    // warm + sweep, so ns_per_op is per-access (the loop runs
    // sweep + sweep/4 + 2*hot accesses per scan).
    let scan_hot_rate = |policy: dewrite_mem::Replacement| -> (f64, u64) {
        const SCAN_CAPACITY: usize = 16 * 1024;
        const HOT: u64 = 8 * 1024;
        let hot_key = |j: u64| (1u64 << 40) | j;
        let mut cache = MetadataCache::new(CacheConfig {
            capacity: SCAN_CAPACITY,
            associativity: 32,
            replacement: policy,
        });
        // Warm twice: the second pass is the reuse that marks the hot
        // set hot (LRU re-stamp / S3-FIFO frequency bump).
        for _ in 0..2 {
            for j in 0..HOT {
                if !cache.access(hot_key(j), false) {
                    cache.insert(hot_key(j), false);
                }
            }
        }
        let sweep = 4 * SCAN_CAPACITY as u64;
        let (mut hot_seen, mut hot_hits, mut j) = (0u64, 0u64, 0u64);
        for i in 0..sweep {
            if !cache.access(i, false) {
                cache.insert(i, false);
            }
            if i % 4 == 0 {
                hot_seen += 1;
                if cache.access(hot_key(j), false) {
                    hot_hits += 1;
                } else {
                    cache.insert(hot_key(j), false);
                }
                j = (j + 1) % HOT;
            }
        }
        let accesses = 2 * HOT + sweep + hot_seen;
        (hot_hits as f64 / hot_seen as f64, accesses)
    };
    let mut scan_rates: Vec<(&str, f64)> = Vec::new();
    for (policy, engine) in [
        (dewrite_mem::Replacement::Lru, "lru"),
        (dewrite_mem::Replacement::Fifo, "fifo"),
        (dewrite_mem::Replacement::S3Fifo, "s3-fifo"),
    ] {
        let (rate, accesses) = scan_hot_rate(policy);
        scan_rates.push((engine, rate));
        let (scans, total_ns) = measure(budget_ns, || {
            let (rate, _) = scan_hot_rate(std::hint::black_box(policy));
            rate.to_bits()
        });
        push("cache_scan", engine, 8, (scans * accesses, total_ns));
        eprintln!(
            "{:>24} / {:<12} hot-set hit rate {:.3}",
            "cache_scan", engine, rate
        );
    }

    // --- FSM claim: hierarchical tree vs flat bitmap, near-full arena ---
    // A 1M-line map with free space only in its final chunk — the
    // steady-state shape of a sized-for-the-workload arena, where almost
    // every claim must travel. The flat scan walks thousands of bitmap
    // words from the (uniformly random) home to the free region; the tree
    // consults one 4-byte counter per 512-line chunk and skips straight
    // there. Placement is identical, so each claim+release pair leaves the
    // occupancy unchanged for the other leg.
    const FSM_LINES: u64 = 1 << 20;
    {
        let flat_fsm = AtomicBitmap::new(FSM_LINES);
        for line in 0..(FSM_LINES - CHUNK_LINES) {
            flat_fsm.occupy(line);
        }
        let tree_fsm = FsmTree::from_bitmap(&flat_fsm);
        let homes = |x: &mut u64| {
            *x ^= *x << 13;
            *x ^= *x >> 7;
            *x ^= *x << 17;
            *x % FSM_LINES
        };
        {
            let mut x = 0x5EED_F00D_u64;
            push(
                "fsm_claim",
                "flat",
                0,
                measure(budget_ns, || {
                    let home = homes(&mut x);
                    let line = flat_fsm.allocate(home).expect("tail chunk stays free");
                    flat_fsm.release(line);
                    line
                }),
            );
        }
        {
            let mut x = 0x5EED_F00D_u64;
            push(
                "fsm_claim",
                "tree",
                0,
                measure(budget_ns, || {
                    let home = homes(&mut x);
                    let line = tree_fsm.allocate(home).expect("tail chunk stays free");
                    tree_fsm.release(line);
                    line
                }),
            );
        }
    }

    // --- FSM claim under contention: 4 threads of claim/release churn ---
    // A roomy map, so free lines are never scarce: what's under test is
    // the allocator's own metadata traffic. Every flat claim and release
    // RMWs the one shared `free_count` cache line; a tree claim through a
    // reservation touches only the reserved chunk's bitmap words and
    // counter, which no other thread is using.
    const FSM_THREADS: usize = 4;
    {
        let lines = 64 * CHUNK_LINES;
        let flat_fsm = AtomicBitmap::new(lines);
        push(
            "fsm_claim_contended",
            "flat",
            0,
            measure_contended(budget_ns, FSM_THREADS, |t, iters| {
                let home = (t as u64 * lines) / FSM_THREADS as u64;
                let mut sink = 0u64;
                for _ in 0..iters {
                    let line = flat_fsm.allocate(home).expect("never exhausts");
                    flat_fsm.release(line);
                    sink = sink.wrapping_add(line);
                }
                sink
            }),
        );
        let tree_fsm = FsmTree::new(lines);
        push(
            "fsm_claim_contended",
            "tree",
            0,
            measure_contended(budget_ns, FSM_THREADS, |_, iters| {
                let mut r = Reservation::new();
                let mut sink = 0u64;
                for _ in 0..iters {
                    let line = tree_fsm.allocate_reserved(&mut r).expect("never exhausts");
                    tree_fsm.release(line);
                    sink = sink.wrapping_add(line);
                }
                tree_fsm.drain_reservation_stats(&mut r);
                sink
            }),
        );
    }

    // --- Headline speedups vs the seed engines ---
    let ns_of = |name: &str, engine: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.engine == engine)
            .map(Sample::ns_per_op)
    };
    let line_speedup = match (
        ns_of("line_encrypt_256B", "seed"),
        ns_of("line_encrypt_256B", "fast"),
    ) {
        (Some(seed), Some(fast)) => seed / fast,
        _ => 0.0,
    };
    // Best CRC engine vs the seed byte-at-a-time loop (CRC-32 is the
    // fingerprint DeWrite uses; SSE4.2 only exists for CRC-32C).
    let crc_fast_ns = [
        ns_of("crc_256B", "slice-by-8"),
        ns_of("crc32c_256B", "sse4.2"),
    ]
    .into_iter()
    .flatten()
    .fold(f64::INFINITY, f64::min);
    let crc_speedup = match ns_of("crc_256B", "seed") {
        Some(seed) if crc_fast_ns.is_finite() => seed / crc_fast_ns,
        _ => 0.0,
    };
    let compare_speedup = match (ns_of("compare_256B", "seed"), ns_of("compare_256B", "fast")) {
        (Some(seed), Some(fast)) => seed / fast,
        _ => 0.0,
    };
    let pair_speedup = |name: &str| match (ns_of(name, "seed"), ns_of(name, "flat")) {
        (Some(seed), Some(flat)) => seed / flat,
        _ => 0.0,
    };
    let index_lookup_speedup = pair_speedup("index_lookup");
    let index_store_speedup = pair_speedup("index_store");
    let cache_access_speedup = pair_speedup("cache_access");
    let scan_rate_of = |engine: &str| {
        scan_rates
            .iter()
            .find(|(e, _)| *e == engine)
            .map_or(0.0, |(_, r)| *r)
    };
    let scan_lru_rate = scan_rate_of("lru");
    let scan_s3_rate = scan_rate_of("s3-fifo");
    // The 1e-3 floor keeps the ratio finite if LRU ever hits zero; both
    // rates are deterministic functions of the scan pattern.
    let cache_scan_ratio = scan_s3_rate / scan_lru_rate.max(1e-3);
    let fsm_pair = |name: &str| match (ns_of(name, "flat"), ns_of(name, "tree")) {
        (Some(flat), Some(tree)) => flat / tree,
        _ => 0.0,
    };
    let fsm_claim_speedup = fsm_pair("fsm_claim");
    let fsm_claim_contended_speedup = fsm_pair("fsm_claim_contended");
    // Strong keyed digest vs each cryptographic baseline, and the
    // commit-decision ratio the verify-free path buys.
    let digest_vs = |baseline: &str| match (
        ns_of("digest_256B", baseline),
        ns_of("digest_256B", "strong-fast"),
    ) {
        (Some(base), Some(fast)) => base / fast,
        _ => 0.0,
    };
    let digest_vs_sha1 = digest_vs("sha1");
    let digest_vs_md5 = digest_vs("md5");
    let dedup_commit_speedup = match (
        ns_of("dedup_commit", "crc32-verify"),
        ns_of("dedup_commit", "strong-verify-free"),
    ) {
        (Some(verify), Some(free)) => verify / free,
        _ => 0.0,
    };
    // The digest ratio gate needs the kernel's SIMD leg to actually be
    // live: under DEWRITE_PORTABLE (or on a host without SSSE3) the
    // "fast" construction falls back to scalar code, and the ratio would
    // measure the fallback, not the kernel the gate is about.
    let digest_gate = strong.simd_active();
    // The contended floor needs real hardware parallelism: on a host with
    // fewer threads than the bench spawns, both legs time-slice one core
    // and the ratio measures the scheduler, not the allocator.
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let contended_gate = parallelism >= FSM_THREADS;
    let check_skipped = check && (!contended_gate || !digest_gate);

    eprintln!();
    eprintln!("line_encrypt_256B speedup vs seed: {line_speedup:.2}x (target >= 3x)");
    eprintln!("crc_256B digest speedup vs seed:   {crc_speedup:.2}x (target >= 4x)");
    eprintln!("compare_256B speedup vs seed:      {compare_speedup:.2}x");
    eprintln!("index_lookup speedup vs seed:      {index_lookup_speedup:.2}x (target >= 3x)");
    eprintln!("index_store speedup vs seed:       {index_store_speedup:.2}x");
    eprintln!("cache_access speedup vs seed:      {cache_access_speedup:.2}x (target >= 2x)");
    eprintln!(
        "cache_scan hot-set s3-fifo vs lru: {cache_scan_ratio:.2}x \
         ({scan_s3_rate:.3} vs {scan_lru_rate:.3}, target >= 2x)"
    );
    eprintln!("fsm_claim speedup vs flat:         {fsm_claim_speedup:.2}x (target >= 2x)");
    eprintln!(
        "fsm_claim_contended vs flat:       {fsm_claim_contended_speedup:.2}x \
         (target >= 2x on >= {FSM_THREADS}-thread hosts)"
    );
    eprintln!("digest_256B strong vs sha1:        {digest_vs_sha1:.2}x (target >= 5x)");
    eprintln!("digest_256B strong vs md5:         {digest_vs_md5:.2}x (target >= 5x)");
    eprintln!("dedup_commit verify-free vs crc:   {dedup_commit_speedup:.2}x (target >= 1.5x)");
    if check && !contended_gate {
        eprintln!(
            "SKIPPED: fsm_claim_contended speedup assertion \
             (available_parallelism={parallelism} < {FSM_THREADS})"
        );
    }
    if check && !digest_gate {
        eprintln!("SKIPPED: digest_256B strong-vs-crypto assertion (SIMD leg not active)");
    }

    let report = Json::Obj(vec![
        ("schema_version".into(), Json::Num(1.0)),
        ("bench".into(), Json::Str("hotpath".into())),
        ("quick".into(), Json::Bool(quick)),
        (
            "host".into(),
            Json::Obj(vec![
                ("aes_ni".into(), Json::Bool(hw_aes.is_some())),
                (
                    "sse42_crc".into(),
                    Json::Bool(crc32c.backend_kind() == CrcBackend::Sse42),
                ),
                ("strong_simd".into(), Json::Bool(strong.simd_active())),
            ]),
        ),
        (
            "results".into(),
            Json::Arr(samples.iter().map(Sample::to_json).collect()),
        ),
        (
            "speedups".into(),
            Json::Obj(vec![
                ("line_encrypt_256B_vs_seed".into(), Json::Num(line_speedup)),
                ("crc_256B_vs_seed".into(), Json::Num(crc_speedup)),
                ("compare_256B_vs_seed".into(), Json::Num(compare_speedup)),
                (
                    "index_lookup_vs_seed".into(),
                    Json::Num(index_lookup_speedup),
                ),
                ("index_store_vs_seed".into(), Json::Num(index_store_speedup)),
                (
                    "cache_access_vs_seed".into(),
                    Json::Num(cache_access_speedup),
                ),
                ("cache_scan_hot_rate_lru".into(), Json::Num(scan_lru_rate)),
                (
                    "cache_scan_hot_rate_s3_fifo".into(),
                    Json::Num(scan_s3_rate),
                ),
                (
                    "cache_scan_s3_fifo_vs_lru".into(),
                    Json::Num(cache_scan_ratio),
                ),
                ("fsm_claim_vs_flat".into(), Json::Num(fsm_claim_speedup)),
                (
                    "fsm_claim_contended_vs_flat".into(),
                    Json::Num(fsm_claim_contended_speedup),
                ),
                (
                    "digest_256B_strong_vs_sha1".into(),
                    Json::Num(digest_vs_sha1),
                ),
                ("digest_256B_strong_vs_md5".into(), Json::Num(digest_vs_md5)),
                (
                    "dedup_commit_verify_free_vs_verify".into(),
                    Json::Num(dedup_commit_speedup),
                ),
            ]),
        ),
        ("check_skipped".into(), Json::Bool(check_skipped)),
    ]);
    std::fs::write(&out_path, format!("{report}\n")).expect("write BENCH_hotpath.json");
    eprintln!("wrote {out_path}");

    if check
        && (line_speedup < 3.0
            || crc_speedup < 4.0
            || index_lookup_speedup < 3.0
            || cache_access_speedup < 2.0
            || cache_scan_ratio < 2.0
            || fsm_claim_speedup < 2.0
            || (contended_gate && fsm_claim_contended_speedup < 2.0)
            || (digest_gate && (digest_vs_sha1 < 5.0 || digest_vs_md5 < 5.0))
            || dedup_commit_speedup < 1.5)
    {
        eprintln!("FAIL: speedup targets not met");
        std::process::exit(1);
    }
}
