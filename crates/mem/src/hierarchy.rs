//! A multi-level CPU cache hierarchy (Table II: "a four-level cache
//! hierarchy, following the expected trend of modern architecture").
//!
//! The main experiments drive the memory controller with post-LLC traces
//! directly (the statistics the paper publishes are at that level), but the
//! hierarchy closes the loop for end-to-end demos: program-level loads and
//! stores enter at L1; only misses descend; dirty victims become the
//! write-back stream the NVM controller sees. All levels are write-back,
//! write-allocate, LRU, and (for simplicity) non-inclusive.

use crate::cache::{CacheConfig, MetadataCache, Replacement};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConfig {
    /// Capacity in lines.
    pub lines: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Hit latency, ns.
    pub hit_ns: u64,
}

/// What a hierarchy access produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Level that served the access (0 = L1, …), or `None` for a full miss
    /// that must go to memory.
    pub hit_level: Option<usize>,
    /// Accumulated lookup latency down to (and including) the serving
    /// level, ns.
    pub latency_ns: u64,
    /// Dirty lines evicted on the way (line addresses) — the write-back
    /// stream for the memory controller.
    pub writebacks: Vec<u64>,
}

/// Per-level hit/miss counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that reached the level.
    pub accesses: u64,
    /// Accesses served by the level.
    pub hits: u64,
}

impl LevelStats {
    /// Local hit rate of the level.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A write-back, write-allocate cache hierarchy over line addresses.
///
/// ```
/// use dewrite_mem::CacheHierarchy;
///
/// let mut h = CacheHierarchy::paper_four_level();
/// let miss = h.access(0x42, false);
/// assert_eq!(miss.hit_level, None); // cold: goes to memory
/// let hit = h.access(0x42, false);
/// assert_eq!(hit.hit_level, Some(0)); // now in L1
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    levels: Vec<(MetadataCache, LevelConfig)>,
    stats: Vec<LevelStats>,
    memory_accesses: u64,
}

impl CacheHierarchy {
    /// Build a hierarchy from level configurations, L1 first.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or any level has zero capacity.
    pub fn new(configs: &[LevelConfig]) -> Self {
        assert!(!configs.is_empty(), "hierarchy needs at least one level");
        let levels = configs
            .iter()
            .map(|&cfg| {
                let cache = MetadataCache::new(CacheConfig {
                    capacity: cfg.lines,
                    associativity: cfg.associativity,
                    replacement: Replacement::Lru,
                });
                (cache, cfg)
            })
            .collect();
        CacheHierarchy {
            stats: vec![LevelStats::default(); configs.len()],
            levels,
            memory_accesses: 0,
        }
    }

    /// The paper-style four-level hierarchy scaled for simulation:
    /// 32 KB L1 / 256 KB L2 / 2 MB L3 / 16 MB L4 of 256 B lines.
    pub fn paper_four_level() -> Self {
        Self::new(&[
            LevelConfig {
                lines: (32 << 10) / 256,
                associativity: 8,
                hit_ns: 1,
            },
            LevelConfig {
                lines: (256 << 10) / 256,
                associativity: 8,
                hit_ns: 3,
            },
            LevelConfig {
                lines: (2 << 20) / 256,
                associativity: 16,
                hit_ns: 10,
            },
            LevelConfig {
                lines: (16 << 20) / 256,
                associativity: 16,
                hit_ns: 25,
            },
        ])
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Access `line` (a load if `!write`, a store if `write`). Stores dirty
    /// the line at the level that serves them; misses allocate at every
    /// level on the refill path; evicted dirty lines surface as
    /// write-backs.
    pub fn access(&mut self, line: u64, write: bool) -> HierarchyOutcome {
        let mut latency = 0;
        let mut writebacks = Vec::new();
        let mut hit_level = None;

        for (i, (cache, cfg)) in self.levels.iter_mut().enumerate() {
            latency += cfg.hit_ns;
            self.stats[i].accesses += 1;
            if cache.access(line, write) {
                self.stats[i].hits += 1;
                hit_level = Some(i);
                break;
            }
        }

        if hit_level.is_none() {
            self.memory_accesses += 1;
        }

        // Refill every level above (and including) the first miss level on
        // the path; collect dirty victims.
        let fill_to = hit_level.unwrap_or(self.levels.len());
        for (cache, _) in self.levels.iter_mut().take(fill_to) {
            if let Some(victim) = cache.insert(line, write) {
                if victim.dirty {
                    writebacks.push(victim.key);
                }
            }
        }

        HierarchyOutcome {
            hit_level,
            latency_ns: latency,
            writebacks,
        }
    }

    /// Drain every dirty line from all levels (a full flush), returning the
    /// write-back stream.
    pub fn flush(&mut self) -> Vec<u64> {
        // Dirty lines are not individually enumerable through the cache API;
        // approximate a flush by counting (used at end-of-run accounting).
        let mut out = Vec::new();
        for (cache, _) in self.levels.iter_mut() {
            let dirty = cache.flush_dirty();
            out.extend(std::iter::repeat_n(u64::MAX, dirty as usize));
        }
        out
    }

    /// Per-level statistics, L1 first.
    pub fn level_stats(&self) -> &[LevelStats] {
        &self.stats
    }

    /// Accesses that missed every level.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(&[
            LevelConfig {
                lines: 4,
                associativity: 2,
                hit_ns: 1,
            },
            LevelConfig {
                lines: 16,
                associativity: 4,
                hit_ns: 4,
            },
        ])
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut h = tiny();
        let first = h.access(7, false);
        assert_eq!(first.hit_level, None);
        assert_eq!(first.latency_ns, 5); // searched both levels
        assert_eq!(h.memory_accesses(), 1);

        let second = h.access(7, false);
        assert_eq!(second.hit_level, Some(0));
        assert_eq!(second.latency_ns, 1);
        assert_eq!(h.memory_accesses(), 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = tiny();
        // Fill well past L1 capacity (4 lines) but within L2 (16).
        for line in 0..12 {
            h.access(line, false);
        }
        // Line 0 is long gone from L1 but should often be in L2.
        let r = h.access(0, false);
        assert!(r.hit_level == Some(1) || r.hit_level == Some(0), "{r:?}");
        let l2 = h.level_stats()[1];
        assert!(l2.hits >= 1);
    }

    #[test]
    fn dirty_evictions_surface_as_writebacks() {
        let mut h = tiny();
        // Dirty many lines; once both levels overflow, dirty victims appear.
        let mut writebacks = 0;
        for line in 0..200 {
            writebacks += h.access(line, true).writebacks.len();
        }
        assert!(writebacks > 0, "dirty victims must surface");
    }

    #[test]
    fn clean_traffic_produces_no_writebacks() {
        let mut h = tiny();
        let mut writebacks = 0;
        for line in 0..200 {
            writebacks += h.access(line, false).writebacks.len();
        }
        assert_eq!(writebacks, 0);
    }

    #[test]
    fn locality_filters_memory_traffic() {
        let mut h = CacheHierarchy::paper_four_level();
        // A loop over a working set that fits in L3: after warmup, almost
        // nothing reaches memory.
        for round in 0..4 {
            for line in 0..2_000u64 {
                h.access(line, line % 4 == 0);
            }
            let _ = round;
        }
        let total_accesses = 4 * 2_000;
        assert!(
            h.memory_accesses() < total_accesses / 3,
            "memory saw {} of {} accesses",
            h.memory_accesses(),
            total_accesses
        );
        // A 2000-line sequential sweep has no L1 reuse (capacity misses),
        // but the lower levels absorb the loop.
        assert!(h.level_stats().iter().any(|s| s.hit_rate() > 0.5));
    }

    #[test]
    fn flush_reports_dirty_lines() {
        let mut h = tiny();
        h.access(1, true);
        h.access(2, true);
        h.access(3, false);
        let flushed = h.flush();
        assert!(flushed.len() >= 2, "flushed {}", flushed.len());
        assert!(h.flush().is_empty(), "second flush is clean");
    }

    #[test]
    fn paper_hierarchy_shape() {
        let h = CacheHierarchy::paper_four_level();
        assert_eq!(h.depth(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_rejected() {
        let _ = CacheHierarchy::new(&[]);
    }
}
