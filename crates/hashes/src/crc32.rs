//! Slice-by-8 CRC-32 (IEEE 802.3) and CRC-32C (Castagnoli).
//!
//! Both are reflected CRCs with initial value `0xFFFF_FFFF` and final XOR
//! `0xFFFF_FFFF`. The eight 256-entry lookup tables are generated at
//! *compile time* (`const fn`), so [`Crc32::new`] / [`Crc32c::new`] are
//! free — they just borrow a `'static` table set. The hot loop consumes
//! eight bytes per iteration (slice-by-8); CRC-32C additionally dispatches
//! to the SSE4.2 `crc32` instruction when the CPU has it (the Castagnoli
//! polynomial is the one the instruction implements — plain CRC-32 always
//! takes the slice-by-8 path).
//!
//! Backend choice never changes the checksum — the hardware and slice-by-8
//! paths are differentially tested against a bitwise (table-free) reference
//! over random inputs. The byte-at-a-time engine the repo started with is
//! retained as [`Crc32::checksum_bytewise`] so benchmarks can measure the
//! upgrade.

use crate::portable::portable_only;
use crate::traits::{HashAlgorithm, LineHasher};

/// Reflected polynomial for CRC-32 (IEEE 802.3 / zlib / PNG).
const POLY_IEEE: u32 = 0xEDB8_8320;
/// Reflected polynomial for CRC-32C (Castagnoli / iSCSI / SSE4.2).
const POLY_CASTAGNOLI: u32 = 0x82F6_3B78;

/// Build the slice-by-8 table set for a reflected polynomial at compile
/// time. `tables[0]` is the classic byte-at-a-time table; `tables[k]`
/// advances a byte `k` positions further through the shift register.
const fn build_tables(reflected_poly: u32) -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ reflected_poly
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES_IEEE: [[u32; 256]; 8] = build_tables(POLY_IEEE);
static TABLES_CASTAGNOLI: [[u32; 256]; 8] = build_tables(POLY_CASTAGNOLI);

/// Shared slice-by-8 engine for reflected 32-bit CRCs. Construction is free:
/// the tables are `'static`, baked in at compile time.
#[derive(Clone, Copy)]
struct CrcEngine {
    tables: &'static [[u32; 256]; 8],
}

impl CrcEngine {
    const fn new(tables: &'static [[u32; 256]; 8]) -> Self {
        CrcEngine { tables }
    }

    /// Slice-by-8: fold eight bytes into the CRC per iteration.
    fn checksum(&self, data: &[u8]) -> u32 {
        let t = self.tables;
        let mut crc = 0xFFFF_FFFFu32;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    /// The seed-era byte-at-a-time loop, kept for benchmark baselines.
    fn checksum_bytewise(&self, data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ self.tables[0][idx];
        }
        crc ^ 0xFFFF_FFFF
    }
}

impl std::fmt::Debug for CrcEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrcEngine")
            .field("table[0][1]", &format_args!("{:#010x}", self.tables[0][1]))
            .finish()
    }
}

/// CRC-32 (IEEE 802.3) — the light-weight fingerprint used by DeWrite.
///
/// ```
/// use dewrite_hashes::Crc32;
/// let crc = Crc32::new();
/// // The canonical "123456789" check value.
/// assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    engine: CrcEngine,
}

impl Crc32 {
    /// Create a CRC-32 hasher. Free: the tables are compile-time constants.
    pub const fn new() -> Self {
        Crc32 {
            engine: CrcEngine::new(&TABLES_IEEE),
        }
    }

    /// Compute the CRC-32 checksum of `data` (slice-by-8).
    pub fn checksum(&self, data: &[u8]) -> u32 {
        self.engine.checksum(data)
    }

    /// The seed-era byte-at-a-time checksum, retained as a benchmark
    /// baseline. Identical results, ~an eighth of the throughput.
    pub fn checksum_bytewise(&self, data: &[u8]) -> u32 {
        self.engine.checksum_bytewise(data)
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl LineHasher for Crc32 {
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Crc32
    }

    fn digest(&self, data: &[u8]) -> u64 {
        u64::from(self.checksum(data))
    }
}

/// Which implementation a [`Crc32c`] instance dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrcBackend {
    /// Portable slice-by-8 over compile-time tables.
    Slice8,
    /// x86 SSE4.2 `crc32` instruction.
    Sse42,
}

impl std::fmt::Display for CrcBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CrcBackend::Slice8 => "slice-by-8",
            CrcBackend::Sse42 => "sse4.2",
        })
    }
}

/// CRC-32C (Castagnoli) — same circuit cost, different polynomial; used in
/// the hash-function ablation experiment. Dispatches to the SSE4.2 `crc32`
/// instruction when the host CPU has it (this is the polynomial that
/// instruction implements).
///
/// ```
/// use dewrite_hashes::Crc32c;
/// let crc = Crc32c::new();
/// assert_eq!(crc.checksum(b"123456789"), 0xE306_9283);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32c {
    engine: CrcEngine,
    backend: CrcBackend,
}

impl Crc32c {
    /// Create a CRC-32C hasher on the fastest available backend. Free: no
    /// tables are built at runtime, and feature detection is a cached flag.
    pub fn new() -> Self {
        let backend = if !portable_only() && hw_available() {
            CrcBackend::Sse42
        } else {
            CrcBackend::Slice8
        };
        Crc32c {
            engine: CrcEngine::new(&TABLES_CASTAGNOLI),
            backend,
        }
    }

    /// Create a hasher pinned to the portable slice-by-8 path.
    pub const fn portable() -> Self {
        Crc32c {
            engine: CrcEngine::new(&TABLES_CASTAGNOLI),
            backend: CrcBackend::Slice8,
        }
    }

    /// The backend this instance dispatches to.
    pub fn backend_kind(&self) -> CrcBackend {
        self.backend
    }

    /// Compute the CRC-32C checksum of `data`.
    pub fn checksum(&self, data: &[u8]) -> u32 {
        match self.backend {
            #[cfg(target_arch = "x86_64")]
            CrcBackend::Sse42 => {
                // SAFETY: an `Sse42` backend is only constructed after
                // `is_x86_feature_detected!("sse4.2")` succeeded.
                #[allow(unsafe_code)]
                unsafe {
                    crate::crc32_hw::crc32c_sse42(data)
                }
            }
            _ => self.engine.checksum(data),
        }
    }

    /// The seed-era byte-at-a-time checksum, retained as a benchmark
    /// baseline.
    pub fn checksum_bytewise(&self, data: &[u8]) -> u32 {
        self.engine.checksum_bytewise(data)
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

fn hw_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("sse4.2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

impl LineHasher for Crc32c {
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Crc32c
    }

    fn digest(&self, data: &[u8]) -> u64 {
        u64::from(self.checksum(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Bitwise (table-free) reference implementation.
    fn crc32_bitwise(poly: u32, data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ poly
                } else {
                    crc >> 1
                };
            }
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn ieee_check_vectors() {
        let crc = Crc32::new();
        assert_eq!(crc.checksum(b""), 0x0000_0000);
        assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc.checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(crc.checksum(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc.checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn castagnoli_check_vectors() {
        for crc in [Crc32c::new(), Crc32c::portable()] {
            assert_eq!(crc.checksum(b""), 0x0000_0000);
            assert_eq!(crc.checksum(b"123456789"), 0xE306_9283);
            // RFC 3720 B.4: 32 bytes of zeros.
            assert_eq!(crc.checksum(&[0u8; 32]), 0x8A91_36AA);
            // RFC 3720 B.4: 32 bytes of 0xFF.
            assert_eq!(crc.checksum(&[0xFFu8; 32]), 0x62A8_AB43);
        }
    }

    #[test]
    fn digest_matches_checksum() {
        let crc = Crc32::new();
        assert_eq!(crc.digest(b"xyz"), u64::from(crc.checksum(b"xyz")));
    }

    #[test]
    fn zero_line_has_stable_digest() {
        // The hash table keys zero lines like any other content; make sure
        // the digest of a 256 B zero line is fixed across instances.
        let a = Crc32::new().digest(&[0u8; 256]);
        let b = Crc32::new().digest(&[0u8; 256]);
        assert_eq!(a, b);
    }

    #[test]
    fn bytewise_baseline_matches_slice8() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let crc = Crc32::new();
        assert_eq!(crc.checksum(&data), crc.checksum_bytewise(&data));
        let crcc = Crc32c::portable();
        assert_eq!(crcc.checksum(&data), crcc.checksum_bytewise(&data));
    }

    proptest! {
        // Differential: slice-by-8 must agree with the bitwise reference on
        // every random input, at every length (covers ragged tails 0..8).
        #[test]
        fn slice8_matches_bitwise_ieee(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let crc = Crc32::new();
            prop_assert_eq!(crc.checksum(&data), crc32_bitwise(POLY_IEEE, &data));
        }

        #[test]
        fn slice8_matches_bitwise_castagnoli(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let crc = Crc32c::portable();
            prop_assert_eq!(crc.checksum(&data), crc32_bitwise(POLY_CASTAGNOLI, &data));
        }

        // Differential: whatever backend `new()` lands on (including SSE4.2
        // when the host has it) must agree with the bitwise reference.
        #[test]
        fn dispatched_crc32c_matches_bitwise(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let crc = Crc32c::new();
            prop_assert_eq!(crc.checksum(&data), crc32_bitwise(POLY_CASTAGNOLI, &data));
        }

        #[test]
        fn single_bit_flip_changes_checksum(
            mut data in proptest::collection::vec(any::<u8>(), 1..256),
            idx in any::<usize>(),
            bit in 0u8..8,
        ) {
            let crc = Crc32::new();
            let before = crc.checksum(&data);
            let i = idx % data.len();
            data[i] ^= 1 << bit;
            // CRC-32 detects all single-bit errors.
            prop_assert_ne!(crc.checksum(&data), before);
        }
    }
}
