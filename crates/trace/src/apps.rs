//! The 20 evaluated applications, calibrated to the paper's Figure 2.
//!
//! Duplication ratios are digitised from Fig. 2 (range 18.6%–98.4%, average
//! 58%; zero-line share average 16%). The paper names the extremes
//! explicitly: `vips` at 18.6% and `blackscholes` at 98.4%; `cactusADM`,
//! `libquantum`, `lbm`, `blackscholes` above 80%; `bzip2` and `vips` mostly
//! non-duplicate; and `sjeng` as the one application whose duplicates are
//! dominated by zero lines. Remaining per-app values are interpolations that
//! preserve the published aggregates — the experiments report shape
//! (averages, extremes, orderings), not per-bar exactness.

use crate::profile::{AppProfile, Suite};

/// Construct one profile with common defaults.
const fn app(
    name: &'static str,
    suite: Suite,
    dup_ratio: f64,
    zero_share: f64,
    state_persistence: f64,
    reads_per_write: f64,
    writes_per_kilo_instr: f64,
) -> AppProfile {
    AppProfile {
        name,
        suite,
        dup_ratio,
        zero_share,
        state_persistence,
        reads_per_write,
        writes_per_kilo_instr,
        working_set_lines: 1 << 16, // 64 Ki lines = 16 MB footprint
        content_pool_size: 1 << 11,
    }
}

/// The 12 SPEC CPU2006 applications.
pub const SPEC_APPS: [AppProfile; 12] = [
    app("bzip2", Suite::Spec2006, 0.20, 0.05, 0.90, 2.2, 18.0),
    app("gcc", Suite::Spec2006, 0.45, 0.12, 0.91, 2.5, 22.0),
    app("mcf", Suite::Spec2006, 0.55, 0.15, 0.92, 3.0, 35.0),
    app("milc", Suite::Spec2006, 0.60, 0.15, 0.92, 2.0, 28.0),
    app("zeusmp", Suite::Spec2006, 0.70, 0.20, 0.93, 1.8, 25.0),
    app("gromacs", Suite::Spec2006, 0.40, 0.10, 0.90, 2.4, 15.0),
    app("cactusADM", Suite::Spec2006, 0.92, 0.25, 0.96, 1.5, 30.0),
    app("leslie3d", Suite::Spec2006, 0.65, 0.18, 0.92, 2.0, 26.0),
    app("sjeng", Suite::Spec2006, 0.35, 0.30, 0.90, 2.6, 12.0),
    app("libquantum", Suite::Spec2006, 0.85, 0.20, 0.95, 1.6, 32.0),
    app("h264ref", Suite::Spec2006, 0.30, 0.08, 0.89, 2.8, 16.0),
    app("lbm", Suite::Spec2006, 0.95, 0.25, 0.97, 1.4, 40.0),
];

/// The 8 PARSEC 2.1 applications.
pub const PARSEC_APPS: [AppProfile; 8] = [
    app("blackscholes", Suite::Parsec, 0.984, 0.35, 0.97, 1.2, 20.0),
    app("bodytrack", Suite::Parsec, 0.50, 0.12, 0.91, 2.3, 18.0),
    app("canneal", Suite::Parsec, 0.45, 0.10, 0.90, 3.2, 30.0),
    app("dedup", Suite::Parsec, 0.75, 0.15, 0.94, 1.9, 24.0),
    app("ferret", Suite::Parsec, 0.55, 0.14, 0.92, 2.4, 22.0),
    app("fluidanimate", Suite::Parsec, 0.60, 0.18, 0.92, 2.0, 26.0),
    app("streamcluster", Suite::Parsec, 0.65, 0.10, 0.93, 2.8, 34.0),
    app("vips", Suite::Parsec, 0.186, 0.04, 0.88, 2.5, 20.0),
];

/// All 20 evaluated applications, SPEC first (presentation order of Fig. 2).
pub fn all_apps() -> Vec<AppProfile> {
    SPEC_APPS
        .iter()
        .cloned()
        .chain(PARSEC_APPS.iter().cloned())
        .collect()
}

/// Look up an application profile by name. The synthetic profiles
/// (`worst-case`, `scan`) resolve here too — they are reachable from
/// every driver (`sim`, `loadgen`, `repro`) without being counted in
/// [`all_apps`] and the paper's 20-app aggregates.
pub fn app_by_name(name: &str) -> Option<AppProfile> {
    match name {
        "worst-case" => Some(worst_case()),
        "scan" => Some(scan_adversary()),
        "dupflood" => Some(dup_flood()),
        _ => all_apps().into_iter().find(|a| a.name == name),
    }
}

/// The worst-case synthetic benchmark of Fig. 18: random values inserted
/// into a 2-D array and traversed — no duplicate lines at all.
pub fn worst_case() -> AppProfile {
    AppProfile {
        name: "worst-case",
        suite: Suite::Synthetic,
        dup_ratio: 0.0,
        zero_share: 0.0,
        state_persistence: 0.99,
        reads_per_write: 1.0,
        writes_per_kilo_instr: 30.0,
        working_set_lines: 1 << 16,
        content_pool_size: 1,
    }
}

/// A scan-adversarial synthetic: a large sequential sweep (working set
/// far beyond any metadata-cache footprint) interleaved with a small,
/// hot, duplicate-heavy content pool. Every sweep line is a
/// one-hit-wonder in the digest-keyed metadata cache while the pool
/// keys stay hot — exactly the access pattern that defeats LRU (the
/// sweep evicts the hot entries) and that S3-FIFO's small-queue filter
/// absorbs. Low state persistence keeps the duplicate predictor off
/// balance so cache hits, not prediction, carry the workload.
pub fn scan_adversary() -> AppProfile {
    AppProfile {
        name: "scan",
        suite: Suite::Synthetic,
        dup_ratio: 0.5,
        zero_share: 0.05,
        state_persistence: 0.6,
        reads_per_write: 1.0,
        writes_per_kilo_instr: 40.0,
        working_set_lines: 1 << 17,
        content_pool_size: 1 << 9,
    }
}

/// A collision-flood adversary for the verify-free digest path: almost
/// every write repeats content from a tiny pool, so nearly every commit
/// rides the duplicate path. Under crc32-verify each of those commits
/// pays a 75 ns verify-read; under strong-keyed none do — this trace
/// maximizes the gap between the modes, and its saturated reference
/// counters (far more than 255 copies per content) exercise the
/// saturated-skip path that verify-free commits must still honor.
/// High state persistence keeps the predictor confidently on the
/// duplicate path, isolating the digest-mode difference.
pub fn dup_flood() -> AppProfile {
    AppProfile {
        name: "dupflood",
        suite: Suite::Synthetic,
        dup_ratio: 0.97,
        zero_share: 0.10,
        state_persistence: 0.97,
        reads_per_write: 0.5,
        writes_per_kilo_instr: 40.0,
        working_set_lines: 1 << 15,
        content_pool_size: 1 << 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_apps_total() {
        assert_eq!(all_apps().len(), 20);
    }

    #[test]
    fn all_profiles_validate() {
        for a in all_apps() {
            a.validate().unwrap_or_else(|e| panic!("{e}"));
        }
        // worst_case has dup_ratio 0 which is valid but persistence must be.
        worst_case().validate().unwrap();
    }

    #[test]
    fn aggregates_match_paper() {
        let apps = all_apps();
        let avg_dup: f64 = apps.iter().map(|a| a.dup_ratio).sum::<f64>() / apps.len() as f64;
        // Paper: 58% average duplicate lines.
        assert!((avg_dup - 0.58).abs() < 0.02, "avg dup {avg_dup}");

        let avg_zero: f64 = apps.iter().map(|a| a.zero_share).sum::<f64>() / apps.len() as f64;
        // Paper: ~16% average zero lines.
        assert!((avg_zero - 0.16).abs() < 0.02, "avg zero {avg_zero}");

        let avg_persist: f64 =
            apps.iter().map(|a| a.state_persistence).sum::<f64>() / apps.len() as f64;
        // Paper Fig. 4: ~92% of writes share the previous write's state.
        assert!(
            (avg_persist - 0.92).abs() < 0.01,
            "avg persistence {avg_persist}"
        );
    }

    #[test]
    fn extremes_match_paper() {
        let apps = all_apps();
        let min = apps.iter().map(|a| a.dup_ratio).fold(f64::MAX, f64::min);
        let max = apps.iter().map(|a| a.dup_ratio).fold(f64::MIN, f64::max);
        assert!((min - 0.186).abs() < 1e-9); // vips
        assert!((max - 0.984).abs() < 1e-9); // blackscholes
    }

    #[test]
    fn named_extremes() {
        assert!(app_by_name("cactusADM").unwrap().dup_ratio > 0.8);
        assert!(app_by_name("lbm").unwrap().dup_ratio > 0.8);
        assert!(app_by_name("libquantum").unwrap().dup_ratio > 0.8);
        assert!(app_by_name("bzip2").unwrap().dup_ratio < 0.5);
        assert!(app_by_name("vips").unwrap().dup_ratio < 0.5);
        assert!(app_by_name("nonexistent").is_none());
    }

    #[test]
    fn sjeng_duplicates_dominated_by_zero_lines() {
        let sjeng = app_by_name("sjeng").unwrap();
        assert!(sjeng.zero_share / sjeng.dup_ratio > 0.8);
        // …and it is the only such application.
        for a in all_apps() {
            if a.name != "sjeng" {
                assert!(
                    a.zero_share / a.dup_ratio < 0.8,
                    "{} looks zero-dominated too",
                    a.name
                );
            }
        }
    }

    #[test]
    fn worst_case_has_no_duplicates() {
        let w = worst_case();
        assert_eq!(w.dup_ratio, 0.0);
        assert_eq!(w.zero_share, 0.0);
    }

    #[test]
    fn synthetics_resolve_by_name_but_stay_out_of_the_aggregates() {
        for name in ["worst-case", "scan", "dupflood"] {
            let p = app_by_name(name).unwrap_or_else(|| panic!("{name} resolves"));
            assert_eq!(p.name, name);
            assert_eq!(p.suite, Suite::Synthetic);
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                !all_apps().iter().any(|a| a.name == name),
                "{name} must not join the paper's 20-app averages"
            );
        }
    }

    #[test]
    fn dupflood_profile_is_duplicate_saturated() {
        let d = dup_flood();
        // Nearly every write must be a pool repeat, and the pool must be
        // small enough that every content saturates its 255-reference
        // entry many times over.
        assert!(d.dup_ratio >= 0.95, "flood must be duplicate-dominated");
        assert!(
            d.working_set_lines >= 1024 * d.content_pool_size as u64,
            "each pool content must accumulate far more than MAX_REFERENCE copies"
        );
    }

    #[test]
    fn scan_profile_is_sweep_dominated_with_a_hot_pool() {
        let s = scan_adversary();
        // The sweep footprint must dwarf the duplicate pool: that ratio is
        // what makes the workload scan-adversarial for a digest-keyed
        // metadata cache.
        assert!(s.working_set_lines >= 64 * s.content_pool_size as u64);
        assert!(s.dup_ratio >= 0.4, "pool keys must recur enough to be hot");
    }
}
