//! Golden-file test for `sim --folded`: the collapsed-stack export must be
//! byte-stable for a fixed app/scheme/seed, and must parse as valid
//! flamegraph.pl input (`frames... count`, count last on the line).

use std::process::Command;

const GOLDEN: &str = include_str!("golden/folded_mcf_dewrite.txt");

fn run_folded(extra: &[&str]) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sim"));
    cmd.args([
        "--app", "mcf", "--writes", "5000", "--seed", "1", "--folded",
    ]);
    cmd.args(extra);
    let out = cmd.output().expect("spawn sim");
    assert!(
        out.status.success(),
        "sim failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn folded_output_matches_golden() {
    let got = run_folded(&["--scheme", "dewrite"]);
    assert_eq!(
        got, GOLDEN,
        "sim --folded drifted from the committed golden file; if the \
         pipeline model changed intentionally, regenerate \
         crates/bench/tests/golden/folded_mcf_dewrite.txt"
    );
}

#[test]
fn folded_output_is_valid_collapsed_stack_format() {
    let got = run_folded(&["--scheme", "dewrite"]);
    assert!(!got.is_empty());
    for line in got.lines() {
        // flamegraph.pl input: semicolon-separated frames, then a space
        // and a numeric sample count as the final token.
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(
            stack.contains(';'),
            "expected root;stage frames in {line:?}"
        );
        count.parse::<u64>().expect("numeric sample count");
    }
}

#[test]
fn folded_omits_stages_that_never_occurred() {
    // The CME baseline has no dedup pipeline, so its folded export must
    // not fabricate digest/probe/compare/verify frames.
    let got = run_folded(&["--scheme", "baseline"]);
    assert!(!got.is_empty());
    for absent in ["digest", "hash_probe", "compare", "verify_read"] {
        assert!(
            !got.contains(absent),
            "baseline fabricated a {absent} frame:\n{got}"
        );
    }
    assert!(got.contains(";encrypt "), "baseline still encrypts:\n{got}");
}
