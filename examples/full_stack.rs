//! Full stack demo: program-level accesses → four-level CPU cache
//! hierarchy → write-back stream → DeWrite secure NVMM.
//!
//! The main experiments drive the controller with post-LLC traces (the
//! level the paper's statistics are published at); this example closes the
//! loop from "CPU executes loads and stores" down to encrypted PCM cells.
//!
//! Run with: `cargo run --release --example full_stack`

use dewrite::core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
use dewrite::mem::CacheHierarchy;
use dewrite::nvm::LineAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data_lines = 1u64 << 14;
    let mut hierarchy = CacheHierarchy::paper_four_level();
    let mut nvm = DeWrite::new(
        SystemConfig::for_lines(data_lines),
        DeWriteConfig::paper(),
        b"full stack key!!",
    );
    let mut rng = StdRng::seed_from_u64(11);

    // A program touching a few hot buffers (with duplicate content, e.g.
    // memset patterns) and a cold scan.
    let patterns: Vec<Vec<u8>> = (0..4u8).map(|p| vec![p.wrapping_mul(0x11); 256]).collect();
    let mut contents: std::collections::HashMap<u64, Vec<u8>> = Default::default();

    let mut t = 0u64;
    let mut cpu_accesses = 0u64;
    for step in 0..60_000u64 {
        // 80% hot region (2K lines), 20% cold scan.
        let line = if rng.gen_bool(0.8) {
            rng.gen_range(0..2_048)
        } else {
            2_048 + (step % (data_lines - 2_048))
        };
        let is_store = rng.gen_bool(0.3);
        cpu_accesses += 1;

        if is_store {
            // Stores often write one of the recurring patterns.
            let content = if rng.gen_bool(0.6) {
                patterns[rng.gen_range(0..patterns.len())].clone()
            } else {
                let mut c = vec![0u8; 256];
                rng.fill(&mut c[..]);
                c
            };
            contents.insert(line, content);
        }

        let outcome = hierarchy.access(line, is_store);
        t += outcome.latency_ns;

        // Dirty victims leave the hierarchy: these are the memory writes.
        for victim in outcome.writebacks {
            let data = contents
                .get(&victim)
                .cloned()
                .unwrap_or_else(|| vec![0u8; 256]);
            let w = nvm.write(LineAddr::new(victim % data_lines), &data, t)?;
            t += w.critical_ns;
        }
        // Full misses fetch the line from the NVMM.
        if outcome.hit_level.is_none() {
            let r = nvm.read(LineAddr::new(line % data_lines), t)?;
            t += r.latency_ns;
        }
    }

    println!("CPU accesses                : {cpu_accesses}");
    for (i, s) in hierarchy.level_stats().iter().enumerate() {
        println!(
            "L{} hit rate                 : {:.1}%  ({} hits / {} lookups)",
            i + 1,
            s.hit_rate() * 100.0,
            s.hits,
            s.accesses
        );
    }
    println!(
        "memory reads (LLC misses)   : {}",
        hierarchy.memory_accesses()
    );
    let m = nvm.base_metrics();
    println!(
        "memory writes (write-backs) : {} — {} eliminated by dedup ({:.1}%)",
        m.writes,
        m.writes_eliminated,
        m.writes_eliminated as f64 / m.writes.max(1) as f64 * 100.0
    );
    println!(
        "NVM array line writes       : {}",
        nvm.device().writes() - m.meta_nvm_writes
    );
    println!("energy                      : {}", nvm.device().energy());

    // End-of-run integrity: the controller's scrub must pass.
    let checked = nvm.scrub().map_err(|e| format!("scrub failed: {e}"))?;
    println!("controller scrub            : OK ({checked} resident lines verified)");
    Ok(())
}
