//! The hot-path engine overhaul is host-speed only: forced-portable and
//! hardware-dispatched engines must produce bit-identical `RunReport`s.
//!
//! Backends are chosen when an engine is constructed, so toggling
//! `set_portable_only` between simulation runs exercises both paths in one
//! process (the same switch CI flips via `DEWRITE_PORTABLE=1`).

use dewrite_bench::runner::{run_scheme, Scale, SchemeKind, Workload};
use dewrite_trace::app_by_name;

const SEED: u64 = 0xDE11_A11C;

/// Serialize the full report for one (scheme, app) run.
fn report_json(kind: SchemeKind, portable: bool) -> String {
    dewrite_crypto::set_portable_only(portable);
    dewrite_hashes::set_portable_only(portable);
    let profile = app_by_name("dedup").expect("known app");
    let workload = Workload::generate(&profile, Scale::quick(), SEED);
    let report = run_scheme(kind, &workload);
    // Leave the process-wide switch as we found it.
    dewrite_crypto::set_portable_only(false);
    dewrite_hashes::set_portable_only(false);
    report.to_json().to_string()
}

#[test]
fn dewrite_report_identical_portable_vs_fast() {
    let portable = report_json(SchemeKind::DeWrite, true);
    let fast = report_json(SchemeKind::DeWrite, false);
    assert_eq!(
        portable, fast,
        "RunReport differs between portable and hardware engines"
    );
}

#[test]
fn baseline_report_identical_portable_vs_fast() {
    let portable = report_json(SchemeKind::Baseline, true);
    let fast = report_json(SchemeKind::Baseline, false);
    assert_eq!(portable, fast);
}

#[test]
fn repeated_fast_runs_are_identical() {
    // Dispatch itself must be deterministic run-to-run, not just
    // portable-vs-fast.
    let a = report_json(SchemeKind::DeWrite, false);
    let b = report_json(SchemeKind::DeWrite, false);
    assert_eq!(a, b);
}
