//! Minimal JSON representation + stable report schema.
//!
//! The build environment is offline (no serde), so reports carry their own
//! hand-rolled JSON value type with a compact writer and a
//! recursive-descent parser. The schema is versioned
//! ([`SCHEMA_VERSION`]) and round-trips: `RunReport::from_json`
//! reconstructs everything `RunReport::to_json` emits, including the
//! per-stage latency histograms.
//!
//! Numbers are `f64`; all integer counters in the reports stay below 2^53,
//! so the round-trip is exact.

use dewrite_mem::{LatencyHistogram, LatencyStats};
use dewrite_nvm::EnergyBreakdown;

use crate::metrics::RunReport;
use crate::schemes::{BaseMetrics, DeWriteCacheStats, DeWriteMetrics};
use crate::trace::{Stage, StageBreakdown};

/// Version stamped into every report object as `schema_version`.
pub const SCHEMA_VERSION: u64 = 1;

/// A JSON value. Object keys keep insertion order so emitted documents are
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers below 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse one JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a description with the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at offset {pos}"));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Inf; reports never produce them, but
                    // fail safe rather than emit an unparseable token.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte {c:#x} at offset {pos}",
            pos = *pos
        )),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a valid &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number at offset {start}: {e}"))
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn field<T>(j: &Json, key: &str, read: impl Fn(&Json) -> Option<T>) -> Result<T, String> {
    j.get(key)
        .and_then(read)
        .ok_or_else(|| format!("missing or mistyped field `{key}`"))
}

fn req<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    field(j, key, Json::as_u64)
}

fn f64_field(j: &Json, key: &str) -> Result<f64, String> {
    field(j, key, Json::as_f64)
}

/// A `u64` field that defaults to zero when absent — for counters added
/// after schema version 1 shipped, so older exports still parse.
fn u64_field_or_zero(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field `{key}` is not a u64")),
    }
}

fn lat_to_json(s: &LatencyStats) -> Json {
    Json::Obj(vec![
        ("count".into(), num(s.count())),
        ("total_ns".into(), num(s.total_ns())),
        ("min_ns".into(), num(s.min_ns())),
        ("max_ns".into(), num(s.max_ns())),
        ("mean_ns".into(), Json::Num(s.mean_ns())),
    ])
}

fn lat_from_json(j: &Json) -> Result<LatencyStats, String> {
    Ok(LatencyStats::from_parts(
        u64_field(j, "count")?,
        u64_field(j, "total_ns")?,
        u64_field(j, "min_ns")?,
        u64_field(j, "max_ns")?,
    ))
}

fn hist_to_json(h: &LatencyHistogram) -> Json {
    let Json::Obj(mut pairs) = lat_to_json(&h.stats()) else {
        unreachable!("lat_to_json returns an object");
    };
    pairs.push(("p50_ns".into(), num(h.p50_ns())));
    pairs.push(("p95_ns".into(), num(h.p95_ns())));
    pairs.push(("p99_ns".into(), num(h.p99_ns())));
    pairs.push((
        "buckets".into(),
        Json::Arr(
            h.bucket_counts()
                .map(|(b, c)| Json::Arr(vec![num(u64::from(b)), num(c)]))
                .collect(),
        ),
    ));
    Json::Obj(pairs)
}

fn hist_from_json(j: &Json) -> Result<LatencyHistogram, String> {
    let stats = lat_from_json(j)?;
    let buckets = req(j, "buckets")?
        .as_arr()
        .ok_or("field `buckets` is not an array")?;
    let buckets: Vec<(u16, u64)> = buckets
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("bad bucket pair")?;
            let bucket = pair[0].as_u64().ok_or("bad bucket index")?;
            let bucket = u16::try_from(bucket).map_err(|e| e.to_string())?;
            let count = pair[1].as_u64().ok_or("bad bucket count")?;
            Ok((bucket, count))
        })
        .collect::<Result<_, String>>()?;
    LatencyHistogram::from_parts(stats, buckets)
}

fn stages_to_json(b: &StageBreakdown) -> Json {
    Json::Obj(
        Stage::ALL
            .into_iter()
            .map(|s| (s.name().to_string(), hist_to_json(b.stage(s))))
            .collect(),
    )
}

fn breakdown_from_json(paths: &Json, stages: &Json) -> Result<StageBreakdown, String> {
    let mut b = StageBreakdown::default();
    b.duplicate_writes = u64_field(paths, "duplicate_writes")?;
    b.stored_writes = u64_field(paths, "stored_writes")?;
    b.predicted_dup = u64_field(paths, "predicted_dup")?;
    b.pna_skips = u64_field(paths, "pna_skips")?;
    for stage in Stage::ALL {
        let hist = stages
            .get(stage.name())
            .ok_or_else(|| format!("missing stage `{}`", stage.name()))?;
        *b.stage_mut(stage) = hist_from_json(hist)?;
    }
    Ok(b)
}

fn base_to_json(b: &BaseMetrics) -> Json {
    Json::Obj(vec![
        ("writes".into(), num(b.writes)),
        ("writes_eliminated".into(), num(b.writes_eliminated)),
        ("coalesced_writes".into(), num(b.coalesced_writes)),
        ("reads".into(), num(b.reads)),
        ("aes_line_ops".into(), num(b.aes_line_ops)),
        ("hash_ops".into(), num(b.hash_ops)),
        ("verify_reads".into(), num(b.verify_reads)),
        ("meta_nvm_reads".into(), num(b.meta_nvm_reads)),
        ("meta_nvm_writes".into(), num(b.meta_nvm_writes)),
    ])
}

fn base_from_json(j: &Json) -> Result<BaseMetrics, String> {
    Ok(BaseMetrics {
        writes: u64_field(j, "writes")?,
        writes_eliminated: u64_field(j, "writes_eliminated")?,
        coalesced_writes: u64_field_or_zero(j, "coalesced_writes")?,
        reads: u64_field(j, "reads")?,
        aes_line_ops: u64_field(j, "aes_line_ops")?,
        hash_ops: u64_field(j, "hash_ops")?,
        verify_reads: u64_field(j, "verify_reads")?,
        meta_nvm_reads: u64_field(j, "meta_nvm_reads")?,
        meta_nvm_writes: u64_field(j, "meta_nvm_writes")?,
    })
}

fn energy_to_json(e: &EnergyBreakdown) -> Json {
    Json::Obj(vec![
        ("nvm_read_pj".into(), num(e.nvm_read_pj)),
        ("nvm_write_pj".into(), num(e.nvm_write_pj)),
        ("aes_pj".into(), num(e.aes_pj)),
        ("dedup_pj".into(), num(e.dedup_pj)),
    ])
}

fn energy_from_json(j: &Json) -> Result<EnergyBreakdown, String> {
    Ok(EnergyBreakdown {
        nvm_read_pj: u64_field(j, "nvm_read_pj")?,
        nvm_write_pj: u64_field(j, "nvm_write_pj")?,
        aes_pj: u64_field(j, "aes_pj")?,
        dedup_pj: u64_field(j, "dedup_pj")?,
    })
}

impl DeWriteMetrics {
    /// Serialize to the stable report schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dup_eliminated".into(), num(self.dup_eliminated)),
            ("pna_skips".into(), num(self.pna_skips)),
            ("pna_missed_dups".into(), num(self.pna_missed_dups)),
            ("saturated_skips".into(), num(self.saturated_skips)),
            ("false_matches".into(), num(self.false_matches)),
            ("assumed_dups".into(), num(self.assumed_dups)),
            ("parallel_writes".into(), num(self.parallel_writes)),
            ("direct_writes".into(), num(self.direct_writes)),
            ("wasted_encryptions".into(), num(self.wasted_encryptions)),
            ("saved_encryptions".into(), num(self.saved_encryptions)),
            (
                "predictor_accuracy".into(),
                Json::Num(self.predictor_accuracy),
            ),
        ])
    }

    /// Deserialize from the stable report schema.
    ///
    /// # Errors
    ///
    /// Returns which field is missing or mistyped.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(DeWriteMetrics {
            dup_eliminated: u64_field(j, "dup_eliminated")?,
            pna_skips: u64_field(j, "pna_skips")?,
            pna_missed_dups: u64_field(j, "pna_missed_dups")?,
            saturated_skips: u64_field(j, "saturated_skips")?,
            false_matches: u64_field(j, "false_matches")?,
            // Absent from reports written before the digest-mode axis
            // existed; default to the only value they could have had.
            assumed_dups: u64_field(j, "assumed_dups").unwrap_or(0),
            parallel_writes: u64_field(j, "parallel_writes")?,
            direct_writes: u64_field(j, "direct_writes")?,
            wasted_encryptions: u64_field(j, "wasted_encryptions")?,
            saved_encryptions: u64_field(j, "saved_encryptions")?,
            predictor_accuracy: f64_field(j, "predictor_accuracy")?,
        })
    }
}

impl DeWriteCacheStats {
    /// Serialize the four partition statistics.
    pub fn to_json(&self) -> Json {
        let part = |s: &dewrite_mem::CacheStats| {
            Json::Obj(vec![
                ("hits".into(), num(s.hits)),
                ("misses".into(), num(s.misses)),
                ("demand_inserts".into(), num(s.demand_inserts)),
                ("prefetch_inserts".into(), num(s.prefetch_inserts)),
                ("dirty_evictions".into(), num(s.dirty_evictions)),
                ("hit_rate".into(), Json::Num(s.hit_rate())),
            ])
        };
        Json::Obj(vec![
            ("addr_map".into(), part(&self.addr_map)),
            ("inverted".into(), part(&self.inverted)),
            ("hash".into(), part(&self.hash)),
            ("fsm".into(), part(&self.fsm)),
        ])
    }
}

impl RunReport {
    /// Serialize to the stable, versioned report schema.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), num(SCHEMA_VERSION)),
            ("scheme".into(), Json::Str(self.scheme.clone())),
            ("app".into(), Json::Str(self.app.clone())),
            ("instructions".into(), num(self.instructions)),
            ("cycles".into(), Json::Num(self.cycles)),
            ("ipc".into(), Json::Num(self.ipc)),
            ("write_latency".into(), lat_to_json(&self.write_latency)),
            (
                "write_latency_eliminated".into(),
                lat_to_json(&self.write_latency_eliminated),
            ),
            (
                "write_latency_stored".into(),
                lat_to_json(&self.write_latency_stored),
            ),
            ("read_latency".into(), lat_to_json(&self.read_latency)),
            ("write_critical".into(), lat_to_json(&self.write_critical)),
            (
                "write_latency_hist".into(),
                hist_to_json(&self.write_latency_hist),
            ),
            (
                "read_latency_hist".into(),
                hist_to_json(&self.read_latency_hist),
            ),
            ("stages".into(), stages_to_json(&self.stage_breakdown)),
            (
                "write_paths".into(),
                Json::Obj(vec![
                    (
                        "duplicate_writes".into(),
                        num(self.stage_breakdown.duplicate_writes),
                    ),
                    (
                        "stored_writes".into(),
                        num(self.stage_breakdown.stored_writes),
                    ),
                    (
                        "predicted_dup".into(),
                        num(self.stage_breakdown.predicted_dup),
                    ),
                    ("pna_skips".into(), num(self.stage_breakdown.pna_skips)),
                ]),
            ),
            ("base".into(), base_to_json(&self.base)),
            ("energy".into(), energy_to_json(&self.energy)),
            ("nvm_data_writes".into(), num(self.nvm_data_writes)),
            ("bit_flip_ratio".into(), Json::Num(self.bit_flip_ratio)),
            (
                "dewrite".into(),
                match &self.dewrite {
                    Some(m) => m.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Reconstruct a report from its schema. Unknown fields are ignored;
    /// newer schema versions are rejected.
    ///
    /// # Errors
    ///
    /// Returns which field is missing, mistyped, or inconsistent.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let version = u64_field(j, "schema_version")?;
        if version > SCHEMA_VERSION {
            return Err(format!(
                "report schema version {version} is newer than supported {SCHEMA_VERSION}"
            ));
        }
        let dewrite = match j.get("dewrite") {
            None | Some(Json::Null) => None,
            Some(m) => Some(DeWriteMetrics::from_json(m)?),
        };
        Ok(RunReport {
            scheme: field(j, "scheme", |v| v.as_str().map(String::from))?,
            app: field(j, "app", |v| v.as_str().map(String::from))?,
            instructions: u64_field(j, "instructions")?,
            cycles: f64_field(j, "cycles")?,
            ipc: f64_field(j, "ipc")?,
            write_latency: lat_from_json(req(j, "write_latency")?)?,
            write_latency_eliminated: lat_from_json(req(j, "write_latency_eliminated")?)?,
            write_latency_stored: lat_from_json(req(j, "write_latency_stored")?)?,
            read_latency: lat_from_json(req(j, "read_latency")?)?,
            write_critical: lat_from_json(req(j, "write_critical")?)?,
            write_latency_hist: hist_from_json(req(j, "write_latency_hist")?)?,
            read_latency_hist: hist_from_json(req(j, "read_latency_hist")?)?,
            stage_breakdown: breakdown_from_json(req(j, "write_paths")?, req(j, "stages")?)?,
            base: base_from_json(req(j, "base")?)?,
            energy: energy_from_json(req(j, "energy")?)?,
            nvm_data_writes: u64_field(j, "nvm_data_writes")?,
            bit_flip_ratio: f64_field(j, "bit_flip_ratio")?,
            dewrite,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x \"quoted\"\nline".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), num(u64::MAX >> 12)]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parser_accepts_whitespace_and_nesting() {
        let j = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(j.get("k").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.get("k").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(j.get("k").unwrap().as_arr().unwrap()[2].as_str(), Some("A"));
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(num(42).to_string(), "42");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
    }

    #[test]
    fn histogram_round_trips() {
        let mut h = LatencyHistogram::new();
        for ns in [3, 75, 75, 91, 300, 4_096, 70_000] {
            h.record(ns);
        }
        let j = hist_to_json(&h);
        let back = hist_from_json(&j).unwrap();
        assert_eq!(back, h);
        assert_eq!(j.get("p50_ns").unwrap().as_u64(), Some(h.p50_ns()));
    }

    #[test]
    fn histogram_import_validates_counts() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        let Json::Obj(mut pairs) = hist_to_json(&h) else {
            unreachable!()
        };
        for (k, v) in &mut pairs {
            if k == "buckets" {
                *v = Json::Arr(vec![]);
            }
        }
        assert!(hist_from_json(&Json::Obj(pairs)).is_err());
    }

    #[test]
    fn empty_report_round_trips() {
        let r = RunReport::default();
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let mut r = RunReport::default().to_json();
        let Json::Obj(pairs) = &mut r else {
            unreachable!()
        };
        pairs[0].1 = num(SCHEMA_VERSION + 1);
        let err = RunReport::from_json(&r).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }
}
