//! BLAKE3-style keyed compression kernel for verify-free deduplication.
//!
//! DeWrite's light CRC-32 fingerprint collides by design, so every digest
//! match costs a candidate verify-read plus a byte compare (§III-B). The
//! strong-keyed mode replaces that bet: a 256-bit keyed compression function
//! built from the ChaCha quarter-round (the same G function BLAKE3 uses),
//! truncated to a 64-bit tag. With a per-run secret key an adversary cannot
//! construct colliding lines offline, and at 64 tag bits random collisions
//! are negligible over any realistic run, so a tag match is *assumed* to be
//! a duplicate and the verify leg is skipped entirely.
//!
//! The kernel is dependency-free and processes a 256 B line as four 64 B
//! blocks, one per lane:
//!
//! * **Fast leg** — all four lanes are compressed simultaneously. On
//!   x86-64 this runs the explicit 128-bit kernel in
//!   [`crate::strong_simd`]: the four lanes' states are transposed into
//!   one `__m128i` per state word so every quarter-round step is a single
//!   vector instruction, and the final root compression runs
//!   row-vectorized (the BLAKE2s layout: the four G columns of one state
//!   in one vector). The kernel tier is detected once at construction —
//!   AVX-512VL (single-instruction rotates, spill-free 32-register file)
//!   when available, SSSE3 otherwise. Elsewhere it falls back to a
//!   structure-of-arrays form (`[u32; 4]` per state word) that LLVM
//!   autovectorizes (NEON on aarch64, SWAR anywhere else).
//! * **Portable leg** — the same schedule computed lane-at-a-time with
//!   scalar arithmetic; selected by `DEWRITE_PORTABLE=1` (see
//!   [`portable_only`]) or [`StrongKeyed::portable`].
//!
//! All legs are bit-identical; differential proptests below pin that, and
//! fixed test vectors pin the output format itself so a refactor cannot
//! silently change every stored digest.
//!
//! The tree shape is fixed — four lane chains, each lane CV folded in half
//! by XOR (the truncation-by-feed-forward the compression itself uses),
//! then one keyed root compression over the 16 folded words — not the
//! general BLAKE3 chunk tree: lines are fixed-size and small, so the
//! layout is hard-coded for the hot path. Inputs that are not exactly
//! 256 B are still defined (blocks round-robin across lanes, final block
//! zero-padded with its real length bound into the compression), which
//! keeps the [`LineHasher`] contract total.

use crate::portable::portable_only;
use crate::traits::{HashAlgorithm, LineHasher};

/// Key width in bytes (eight little-endian `u32` words).
pub const STRONG_KEY_BYTES: usize = 32;

/// Bytes per compression block.
const BLOCK_BYTES: usize = 64;
/// Parallel lanes in the fast leg (one 64 B block each for a 256 B line).
pub(crate) const LANES: usize = 4;
/// Compression rounds (BLAKE3 count).
const ROUNDS: usize = 7;

/// Initialization constants (the BLAKE3/SHA-256 IV), used as the fixed
/// second half of the compression state.
pub(crate) const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// Message word permutation applied between rounds (BLAKE3 schedule).
const PERM: [usize; 16] = [2, 6, 3, 10, 7, 0, 4, 13, 1, 11, 12, 5, 9, 14, 15, 8];

/// Per-round message schedule: `MSG_SCHEDULE[r][i]` is the original block
/// word that round `r` consumes in position `i` (the fixed point of
/// applying [`PERM`] `r` times). Precomputing it lets every leg index the
/// block directly instead of physically permuting 64 B between rounds.
pub(crate) const MSG_SCHEDULE: [[usize; 16]; ROUNDS] = {
    let mut s = [[0usize; 16]; ROUNDS];
    let mut i = 0;
    while i < 16 {
        s[0][i] = i;
        i += 1;
    }
    let mut r = 1;
    while r < ROUNDS {
        let mut i = 0;
        while i < 16 {
            s[r][i] = s[r - 1][PERM[i]];
            i += 1;
        }
        r += 1;
    }
    s
};

/// Domain flag: leaf block of the input stream.
pub(crate) const FLAG_CHUNK: u32 = 1 << 0;
/// Domain flag: parent compression over lane chaining values.
pub(crate) const FLAG_PARENT: u32 = 1 << 1;
/// Domain flag: final (root) compression.
pub(crate) const FLAG_ROOT: u32 = 1 << 2;

/// Default key used when no per-run key is supplied; documented so stored
/// digests are reproducible. Production runs derive a per-run key from the
/// memory encryption key instead (see [`StrongKeyed::derive`]).
pub const STRONG_DEFAULT_KEY: [u8; STRONG_KEY_BYTES] = *b"dewrite-strong-keyed-digest-v1!!";

/// Which implementation a [`StrongKeyed`] instance dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrongLeg {
    /// 4-lane structure-of-arrays compression (autovectorized SIMD/SWAR).
    Fast,
    /// Scalar lane-at-a-time compression.
    Portable,
}

impl std::fmt::Display for StrongLeg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StrongLeg::Fast => "4-lane",
            StrongLeg::Portable => "portable",
        })
    }
}

/// Reusable working state for the keyed digest.
///
/// The kernel itself never heap-allocates, but the lane block buffers are
/// 320 B of state that the hot path would otherwise re-zero on every call;
/// callers (one per engine shard) keep one scratch and pass it to
/// [`StrongKeyed::digest_with`], matching the `encrypt_line_into` idiom used
/// by the crypto path.
#[derive(Debug, Clone)]
pub struct StrongScratch {
    /// Message blocks, one per lane, as little-endian words.
    blocks: [[u32; 16]; LANES],
    /// Real byte count of each lane's current block.
    lens: [u32; LANES],
    /// Per-lane chaining values.
    cvs: [[u32; 8]; LANES],
}

impl StrongScratch {
    /// Create a zeroed scratch state.
    pub const fn new() -> Self {
        StrongScratch {
            blocks: [[0u32; 16]; LANES],
            lens: [0u32; LANES],
            cvs: [[0u32; 8]; LANES],
        }
    }
}

impl Default for StrongScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The ChaCha-style quarter round over scalar state words.
#[inline(always)]
fn g(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, mx: u32, my: u32) {
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(mx);
    state[d] = (state[d] ^ state[a]).rotate_right(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(12);
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(my);
    state[d] = (state[d] ^ state[a]).rotate_right(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(7);
}

/// One scalar compression: 7 rounds of column + diagonal G over the 16-word
/// state, message permuted between rounds, output truncated by feed-forward
/// XOR of the two state halves.
fn compress(
    cv: &[u32; 8],
    block: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 8] {
    let mut state = [
        cv[0],
        cv[1],
        cv[2],
        cv[3],
        cv[4],
        cv[5],
        cv[6],
        cv[7],
        IV[0],
        IV[1],
        IV[2],
        IV[3],
        counter as u32,
        (counter >> 32) as u32,
        block_len,
        flags,
    ];
    let m = block;
    for sched in &MSG_SCHEDULE {
        g(&mut state, 0, 4, 8, 12, m[sched[0]], m[sched[1]]);
        g(&mut state, 1, 5, 9, 13, m[sched[2]], m[sched[3]]);
        g(&mut state, 2, 6, 10, 14, m[sched[4]], m[sched[5]]);
        g(&mut state, 3, 7, 11, 15, m[sched[6]], m[sched[7]]);
        g(&mut state, 0, 5, 10, 15, m[sched[8]], m[sched[9]]);
        g(&mut state, 1, 6, 11, 12, m[sched[10]], m[sched[11]]);
        g(&mut state, 2, 7, 8, 13, m[sched[12]], m[sched[13]]);
        g(&mut state, 3, 4, 9, 14, m[sched[14]], m[sched[15]]);
    }
    let mut out = [0u32; 8];
    for i in 0..8 {
        out[i] = state[i] ^ state[i + 8];
    }
    out
}

/// Four lanes of state word `w`, one element per lane. Element-wise loops
/// over this type are what the autovectorizer turns into 128-bit SIMD.
type V4 = [u32; LANES];

/// The quarter round across all four lanes at once. Each per-lane loop is a
/// straight-line element-wise op over `[u32; 4]`, the canonical
/// autovectorization shape (SSE2/AVX on x86-64, NEON on aarch64, SWAR
/// elsewhere).
// Each loop reads two distinct rows of `state` by index; the iterator
// form needs `split_at_mut` per step and breaks the element-wise shape
// the autovectorizer keys on.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn g4(state: &mut [V4; 16], a: usize, b: usize, c: usize, d: usize, mx: V4, my: V4) {
    for l in 0..LANES {
        state[a][l] = state[a][l].wrapping_add(state[b][l]).wrapping_add(mx[l]);
    }
    for l in 0..LANES {
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_right(16);
    }
    for l in 0..LANES {
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
    }
    for l in 0..LANES {
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_right(12);
    }
    for l in 0..LANES {
        state[a][l] = state[a][l].wrapping_add(state[b][l]).wrapping_add(my[l]);
    }
    for l in 0..LANES {
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_right(8);
    }
    for l in 0..LANES {
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
    }
    for l in 0..LANES {
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_right(7);
    }
}

/// Compress one block in each of the four lanes simultaneously.
/// Bit-identical to four [`compress`] calls with the same inputs.
fn compress4(
    cvs: &mut [[u32; 8]; LANES],
    blocks: &[[u32; 16]; LANES],
    counters: [u64; LANES],
    block_lens: [u32; LANES],
    flags: u32,
) {
    let mut state = [[0u32; LANES]; 16];
    for w in 0..8 {
        for l in 0..LANES {
            state[w][l] = cvs[l][w];
        }
    }
    for w in 0..4 {
        state[8 + w] = [IV[w]; LANES];
    }
    for l in 0..LANES {
        state[12][l] = counters[l] as u32;
        state[13][l] = (counters[l] >> 32) as u32;
    }
    state[14] = block_lens;
    state[15] = [flags; LANES];

    // Transpose the message into word-major lane vectors.
    let mut m = [[0u32; LANES]; 16];
    for w in 0..16 {
        for l in 0..LANES {
            m[w][l] = blocks[l][w];
        }
    }
    for sched in &MSG_SCHEDULE {
        g4(&mut state, 0, 4, 8, 12, m[sched[0]], m[sched[1]]);
        g4(&mut state, 1, 5, 9, 13, m[sched[2]], m[sched[3]]);
        g4(&mut state, 2, 6, 10, 14, m[sched[4]], m[sched[5]]);
        g4(&mut state, 3, 7, 11, 15, m[sched[6]], m[sched[7]]);
        g4(&mut state, 0, 5, 10, 15, m[sched[8]], m[sched[9]]);
        g4(&mut state, 1, 6, 11, 12, m[sched[10]], m[sched[11]]);
        g4(&mut state, 2, 7, 8, 13, m[sched[12]], m[sched[13]]);
        g4(&mut state, 3, 4, 9, 14, m[sched[14]], m[sched[15]]);
    }
    for w in 0..8 {
        for l in 0..LANES {
            cvs[l][w] = state[w][l] ^ state[8 + w][l];
        }
    }
}

/// Load block `index` of `data` into `words`, zero-padding past the end.
/// Returns the number of real bytes in the block.
#[inline]
fn load_block(data: &[u8], index: usize, words: &mut [u32; 16]) -> u32 {
    let start = index * BLOCK_BYTES;
    let avail = data.len().saturating_sub(start).min(BLOCK_BYTES);
    let block = &data[start..start + avail];
    let mut chunks = block.chunks_exact(4);
    let mut w = 0;
    for c in &mut chunks {
        words[w] = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        w += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 4];
        last[..rem.len()].copy_from_slice(rem);
        words[w] = u32::from_le_bytes(last);
        w += 1;
    }
    while w < 16 {
        words[w] = 0;
        w += 1;
    }
    avail as u32
}

/// The strong keyed line digest.
///
/// ```
/// use dewrite_hashes::{StrongKeyed, StrongScratch};
///
/// let line = [0x5Au8; 256];
/// let mut scratch = StrongScratch::new();
/// let h = StrongKeyed::new();
/// let tag = h.digest_with(&line, &mut scratch);
/// assert_eq!(tag, StrongKeyed::portable().digest_with(&line, &mut scratch));
/// ```
#[derive(Debug, Clone)]
pub struct StrongKeyed {
    key: [u32; 8],
    leg: StrongLeg,
    /// Which explicit SIMD kernel the fast leg resolved to (detected once
    /// at construction; the `unsafe` intrinsic calls are sound iff the
    /// matching feature check passed then).
    simd: SimdTier,
}

/// Explicit-SIMD kernel tiers, best-first fallback at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimdTier {
    /// No explicit kernel: structure-of-arrays autovectorized/SWAR path.
    None,
    /// 128-bit kernel with `pshufb`/shift-or rotations.
    Ssse3,
    /// Same kernel with single-instruction `vprold` rotations and the
    /// 32-register EVEX file (no spills across state + message vectors).
    Avx512,
}

/// The best explicit SIMD kernel this CPU can run.
fn simd_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            return SimdTier::Avx512;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return SimdTier::Ssse3;
        }
    }
    SimdTier::None
}

impl StrongKeyed {
    /// Create a hasher with the documented default key on the fastest leg
    /// the environment allows.
    pub fn new() -> Self {
        Self::with_key(STRONG_DEFAULT_KEY)
    }

    /// Create a hasher with an explicit 32-byte key; the leg honours
    /// `DEWRITE_PORTABLE`.
    pub fn with_key(key: [u8; STRONG_KEY_BYTES]) -> Self {
        let leg = if portable_only() {
            StrongLeg::Portable
        } else {
            StrongLeg::Fast
        };
        Self::with_key_on(key, leg)
    }

    /// Create a hasher pinned to the scalar leg (default key).
    pub fn portable() -> Self {
        Self::with_key_on(STRONG_DEFAULT_KEY, StrongLeg::Portable)
    }

    /// Create a hasher with an explicit key pinned to a specific leg.
    pub fn with_key_on(key: [u8; STRONG_KEY_BYTES], leg: StrongLeg) -> Self {
        StrongKeyed {
            key: key_words(&key),
            leg,
            simd: if leg == StrongLeg::Fast {
                simd_tier()
            } else {
                SimdTier::None
            },
        }
    }

    /// Derive a per-run 32-byte key from arbitrary seed material (e.g. the
    /// 16-byte memory encryption key) and return a hasher keyed with it.
    /// The derivation is the kernel itself under the default key, so equal
    /// seeds always derive equal keys.
    pub fn derive(seed: &[u8]) -> Self {
        let mut scratch = StrongScratch::new();
        let wide = StrongKeyed::new().digest_wide_with(seed, &mut scratch);
        Self::with_key(wide)
    }

    /// The leg this instance dispatches to.
    pub fn leg(&self) -> StrongLeg {
        self.leg
    }

    /// Whether the fast leg resolved to a real SIMD tier on this host.
    /// `false` on the portable leg, on non-x86-64 targets, and on x86-64
    /// hosts without SSSE3 — where the fast leg falls back to the SWAR
    /// kernel and wall-clock gates against cryptographic baselines would
    /// measure the fallback, not the kernel.
    pub fn simd_active(&self) -> bool {
        self.simd != SimdTier::None
    }

    /// Compute the 64-bit truncated tag of `data` using caller-provided
    /// scratch (no per-call state beyond registers).
    pub fn digest_with(&self, data: &[u8], scratch: &mut StrongScratch) -> u64 {
        let cv = self.root(data, scratch);
        u64::from(cv[0]) | (u64::from(cv[1]) << 32)
    }

    /// Compute the full 256-bit digest as little-endian bytes. The 64-bit
    /// tag is the first 8 bytes.
    pub fn digest_wide_with(&self, data: &[u8], scratch: &mut StrongScratch) -> [u8; 32] {
        let cv = self.root(data, scratch);
        let mut out = [0u8; 32];
        for (w, word) in cv.iter().enumerate() {
            out[w * 4..w * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Run the lane chains and the keyed root compression.
    fn root(&self, data: &[u8], scratch: &mut StrongScratch) -> [u32; 8] {
        // The hot case — exactly one full four-block group, i.e. the 256 B
        // cache line — takes a fused kernel that never leaves registers
        // between the lane pass and the root.
        #[cfg(target_arch = "x86_64")]
        if self.simd != SimdTier::None && data.len() == LANES * BLOCK_BYTES {
            let chunk: &[u8; LANES * BLOCK_BYTES] = data.try_into().expect("length checked");
            // SAFETY: the tier is only set after the matching
            // `is_x86_feature_detected!` checks succeeded at construction.
            #[allow(unsafe_code)]
            return unsafe {
                match self.simd {
                    SimdTier::Avx512 => crate::strong_simd::digest_group_avx512(&self.key, chunk),
                    _ => crate::strong_simd::digest_group_ssse3(&self.key, chunk),
                }
            };
        }
        let nblocks = data.len().div_ceil(BLOCK_BYTES).max(1);
        scratch.cvs = [self.key; LANES];
        let full_steps = if self.leg == StrongLeg::Fast {
            nblocks / LANES
        } else {
            0
        };
        // Steps whose four blocks are all full go straight from the input
        // bytes through the explicit SIMD kernel; only a ragged final
        // group (or a non-SIMD host) takes the staged load_block path.
        let byte_steps = if self.simd != SimdTier::None {
            full_steps.min(data.len() / (LANES * BLOCK_BYTES))
        } else {
            0
        };
        #[cfg(target_arch = "x86_64")]
        for step in 0..byte_steps {
            let chunk: &[u8; LANES * BLOCK_BYTES] = data[step * LANES * BLOCK_BYTES..]
                [..LANES * BLOCK_BYTES]
                .try_into()
                .expect("byte_steps guarantees a full group");
            // SAFETY: the tier is only set after the matching
            // `is_x86_feature_detected!` checks succeeded at construction.
            #[allow(unsafe_code)]
            unsafe {
                match self.simd {
                    SimdTier::Avx512 => crate::strong_simd::compress4_avx512(
                        &mut scratch.cvs,
                        chunk,
                        (step * LANES) as u64,
                        FLAG_CHUNK,
                    ),
                    _ => crate::strong_simd::compress4_ssse3(
                        &mut scratch.cvs,
                        chunk,
                        (step * LANES) as u64,
                        FLAG_CHUNK,
                    ),
                }
            }
        }
        for step in byte_steps..full_steps {
            let base = step * LANES;
            for l in 0..LANES {
                scratch.lens[l] = load_block(data, base + l, &mut scratch.blocks[l]);
            }
            let counters = [
                base as u64,
                (base + 1) as u64,
                (base + 2) as u64,
                (base + 3) as u64,
            ];
            compress4(
                &mut scratch.cvs,
                &scratch.blocks,
                counters,
                scratch.lens,
                FLAG_CHUNK,
            );
        }
        for b in full_steps * LANES..nblocks {
            let lane = b % LANES;
            let len = load_block(data, b, &mut scratch.blocks[lane]);
            scratch.cvs[lane] = compress(
                &scratch.cvs[lane],
                &scratch.blocks[lane],
                b as u64,
                len,
                FLAG_CHUNK,
            );
        }
        // Root: each lane CV folds from eight words to four by XORing its
        // halves — the same truncation-by-feed-forward the compression
        // itself applies to its 16-word state — and the four folded CVs
        // form one 16-word block compressed under the key, with the total
        // input length bound in as the counter.
        let total = data.len() as u64;
        let mut m = [0u32; 16];
        for (l, cv) in scratch.cvs.iter().enumerate() {
            for i in 0..4 {
                m[l * 4 + i] = cv[i] ^ cv[i + 4];
            }
        }
        #[cfg(target_arch = "x86_64")]
        if self.simd != SimdTier::None {
            // SAFETY: the tier is only set after the matching
            // `is_x86_feature_detected!` checks succeeded at construction.
            #[allow(unsafe_code)]
            return unsafe {
                match self.simd {
                    SimdTier::Avx512 => crate::strong_simd::compress1_avx512(
                        &self.key,
                        &m,
                        total,
                        BLOCK_BYTES as u32,
                        FLAG_PARENT | FLAG_ROOT,
                    ),
                    _ => crate::strong_simd::compress1_ssse3(
                        &self.key,
                        &m,
                        total,
                        BLOCK_BYTES as u32,
                        FLAG_PARENT | FLAG_ROOT,
                    ),
                }
            };
        }
        compress(
            &self.key,
            &m,
            total,
            BLOCK_BYTES as u32,
            FLAG_PARENT | FLAG_ROOT,
        )
    }
}

impl Default for StrongKeyed {
    fn default() -> Self {
        Self::new()
    }
}

fn key_words(key: &[u8; STRONG_KEY_BYTES]) -> [u32; 8] {
    let mut words = [0u32; 8];
    for (w, chunk) in key.chunks_exact(4).enumerate() {
        words[w] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    words
}

impl LineHasher for StrongKeyed {
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::StrongKeyed
    }

    fn digest(&self, data: &[u8]) -> u64 {
        let mut scratch = StrongScratch::new();
        self.digest_with(data, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(fill: u8) -> [u8; 256] {
        let mut l = [0u8; 256];
        for (i, b) in l.iter_mut().enumerate() {
            *b = fill.wrapping_add(i as u8);
        }
        l
    }

    #[test]
    fn fixed_vectors_pin_the_output() {
        // Golden values: any change to the schedule, constants, padding or
        // truncation shows up here before it silently invalidates every
        // stored digest.
        let mut s = StrongScratch::new();
        let h = StrongKeyed::portable();
        assert_eq!(h.digest_with(&[], &mut s), 0x0EBA_FBDF_85D5_4397);
        assert_eq!(h.digest_with(b"abc", &mut s), 0x07DC_89DB_360F_6943);
        assert_eq!(h.digest_with(&[0u8; 256], &mut s), 0xEACE_E389_A20B_AFAE);
        assert_eq!(h.digest_with(&line(0x5A), &mut s), 0x94B2_7825_3EE4_FDF9);
    }

    #[test]
    fn tag_is_leading_bytes_of_wide_digest() {
        let mut s = StrongScratch::new();
        let h = StrongKeyed::new();
        let data = line(0x11);
        let wide = h.digest_wide_with(&data, &mut s);
        let tag = u64::from_le_bytes(wide[..8].try_into().unwrap());
        assert_eq!(tag, h.digest_with(&data, &mut s));
        assert_eq!(tag, h.digest(&data));
    }

    #[test]
    fn keys_separate_digests() {
        let mut s = StrongScratch::new();
        let a = StrongKeyed::with_key([0x01; 32]);
        let b = StrongKeyed::with_key([0x02; 32]);
        let data = line(0);
        assert_ne!(a.digest_with(&data, &mut s), b.digest_with(&data, &mut s));
    }

    #[test]
    fn derive_is_deterministic_and_seed_sensitive() {
        let mut s = StrongScratch::new();
        let data = line(7);
        let a = StrongKeyed::derive(b"a 16-byte secret");
        let b = StrongKeyed::derive(b"a 16-byte secret");
        let c = StrongKeyed::derive(b"another secret!!");
        assert_eq!(a.digest_with(&data, &mut s), b.digest_with(&data, &mut s));
        assert_ne!(a.digest_with(&data, &mut s), c.digest_with(&data, &mut s));
    }

    #[test]
    fn length_is_bound_into_the_digest() {
        // A zero-padded short input must not collide with the explicit
        // zero-extended input.
        let mut s = StrongScratch::new();
        let h = StrongKeyed::new();
        assert_ne!(
            h.digest_with(&[0u8; 100], &mut s),
            h.digest_with(&[0u8; 256], &mut s)
        );
        assert_ne!(h.digest_with(&[], &mut s), h.digest_with(&[0u8; 1], &mut s));
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        let mut s = StrongScratch::new();
        let h = StrongKeyed::new();
        let first = h.digest_with(&line(1), &mut s);
        let _ = h.digest_with(&line(2), &mut s);
        assert_eq!(h.digest_with(&line(1), &mut s), first);
        assert_eq!(h.digest_with(&line(1), &mut StrongScratch::new()), first);
    }

    #[test]
    fn legs_agree_on_the_hot_line_size() {
        let mut s = StrongScratch::new();
        let fast = StrongKeyed::with_key_on(STRONG_DEFAULT_KEY, StrongLeg::Fast);
        let portable = StrongKeyed::portable();
        for fill in [0u8, 1, 0x5A, 0xFF] {
            let data = line(fill);
            assert_eq!(
                fast.digest_with(&data, &mut s),
                portable.digest_with(&data, &mut s)
            );
        }
    }

    proptest! {
        // Differential: the 4-lane fast leg must be bit-identical to the
        // scalar leg at every length (ragged tails, partial lane steps).
        #[test]
        fn strong_fast_matches_portable(
            data in proptest::collection::vec(any::<u8>(), 0..600),
            key_bytes in proptest::collection::vec(any::<u8>(), 32..33),
        ) {
            let mut s = StrongScratch::new();
            let key: [u8; 32] = key_bytes.try_into().unwrap();
            let fast = StrongKeyed::with_key_on(key, StrongLeg::Fast);
            let portable = StrongKeyed::with_key_on(key, StrongLeg::Portable);
            prop_assert_eq!(
                fast.digest_wide_with(&data, &mut s),
                portable.digest_wide_with(&data, &mut s)
            );
        }

        #[test]
        fn strong_single_bit_flip_changes_tag(
            mut data in proptest::collection::vec(any::<u8>(), 1..256),
            idx in any::<usize>(),
            bit in 0u8..8,
        ) {
            let mut s = StrongScratch::new();
            let h = StrongKeyed::new();
            let before = h.digest_with(&data, &mut s);
            let i = idx % data.len();
            data[i] ^= 1 << bit;
            prop_assert_ne!(h.digest_with(&data, &mut s), before);
        }
    }
}
