//! Explicit 128-bit SIMD legs of the strong keyed kernel (x86-64).
//!
//! Two shapes, both bit-identical to the scalar `compress` in `strong.rs`:
//!
//! * `compress4_*` — the lane pass. The four lanes' states are
//!   *transposed*: vector `w` holds state word `w` of every lane, so each
//!   scalar op of the quarter round becomes exactly one 4-wide vector op
//!   and four 64 B blocks compress in one pass. The blocks load straight
//!   from the input bytes (little-endian words, so on x86 an unaligned
//!   vector load *is* the word load) and transpose in registers — no
//!   scalar staging buffer anywhere. No shuffles are needed in the round
//!   loop at all: the precomputed message schedule indexes the transposed
//!   words directly.
//! * `compress1_*` — the root pass, where only one state exists and
//!   lane-transposition has nothing to parallelize. It uses the classic
//!   row layout instead (BLAKE2s-style): one vector per state *row*, the
//!   four column Gs computed at once, diagonals reached by rotating rows.
//!
//! Each shape comes in two tiers sharing one const-generic body:
//!
//! * **SSSE3** — byte-granular rotations (16 and 8) are single `pshufb`s
//!   (the reason this tier wants SSSE3 rather than bare SSE2); the ragged
//!   rotations (12 and 7) are shift-shift-or.
//! * **AVX-512VL** — every rotation is a single `vprold`, and the EVEX
//!   encoding's 32 XMM registers hold the full 16-vector state plus the
//!   16-vector transposed message with no spills, which is where most of
//!   the additional speedup comes from.
//!
//! This module and `crc32_hw.rs` are the only `unsafe` code in the crate.
//! Safety rests on one invariant: these functions are only called after
//! `is_x86_feature_detected!` has confirmed the matching feature exists
//! (`StrongKeyed::with_key_on` in `strong.rs` enforces this by resolving
//! its SIMD tier exactly once, at construction).
#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m128i, __m256i, __m512i, _mm256_castsi256_si128, _mm256_loadu_si256,
    _mm256_permutex2var_epi32, _mm256_set_epi32, _mm256_set_m128i, _mm512_add_epi32,
    _mm512_castsi256_si512, _mm512_castsi512_si128, _mm512_extracti32x4_epi32, _mm512_loadu_si512,
    _mm512_mask_blend_epi64, _mm512_permutex2var_epi64, _mm512_permutexvar_epi32, _mm512_ror_epi32,
    _mm512_set_epi32, _mm512_set_epi64, _mm512_shuffle_i32x4, _mm512_unpackhi_epi32,
    _mm512_unpackhi_epi64, _mm512_unpacklo_epi32, _mm512_unpacklo_epi64, _mm512_xor_si512,
    _mm_add_epi32, _mm_loadu_si128, _mm_or_si128, _mm_ror_epi32, _mm_set1_epi32, _mm_set_epi32,
    _mm_set_epi8, _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_slli_epi32, _mm_srli_epi32,
    _mm_storeu_si128, _mm_unpackhi_epi32, _mm_unpackhi_epi64, _mm_unpacklo_epi32,
    _mm_unpacklo_epi64, _mm_xor_si128,
};

use crate::strong::{FLAG_CHUNK, FLAG_PARENT, FLAG_ROOT, IV, LANES, MSG_SCHEDULE};

/// `rotate_right(16)` of each 32-bit element.
#[inline(always)]
unsafe fn rot16<const AVX512: bool>(x: __m128i) -> __m128i {
    if AVX512 {
        _mm_ror_epi32::<16>(x)
    } else {
        // A half-word swap: one shuffle.
        let mask = _mm_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
        _mm_shuffle_epi8(x, mask)
    }
}

/// `rotate_right(8)` of each 32-bit element.
#[inline(always)]
unsafe fn rot8<const AVX512: bool>(x: __m128i) -> __m128i {
    if AVX512 {
        _mm_ror_epi32::<8>(x)
    } else {
        // A byte rotate: one shuffle.
        let mask = _mm_set_epi8(12, 15, 14, 13, 8, 11, 10, 9, 4, 7, 6, 5, 0, 3, 2, 1);
        _mm_shuffle_epi8(x, mask)
    }
}

/// `rotate_right(12)` of each 32-bit element.
#[inline(always)]
unsafe fn rot12<const AVX512: bool>(x: __m128i) -> __m128i {
    if AVX512 {
        _mm_ror_epi32::<12>(x)
    } else {
        _mm_or_si128(_mm_srli_epi32(x, 12), _mm_slli_epi32(x, 20))
    }
}

/// `rotate_right(7)` of each 32-bit element.
#[inline(always)]
unsafe fn rot7<const AVX512: bool>(x: __m128i) -> __m128i {
    if AVX512 {
        _mm_ror_epi32::<7>(x)
    } else {
        _mm_or_si128(_mm_srli_epi32(x, 7), _mm_slli_epi32(x, 25))
    }
}

/// The quarter round over four independent vector cells.
#[inline(always)]
unsafe fn g<const AVX512: bool>(
    va: &mut __m128i,
    vb: &mut __m128i,
    vc: &mut __m128i,
    vd: &mut __m128i,
    mx: __m128i,
    my: __m128i,
) {
    *va = _mm_add_epi32(_mm_add_epi32(*va, *vb), mx);
    *vd = rot16::<AVX512>(_mm_xor_si128(*vd, *va));
    *vc = _mm_add_epi32(*vc, *vd);
    *vb = rot12::<AVX512>(_mm_xor_si128(*vb, *vc));
    *va = _mm_add_epi32(_mm_add_epi32(*va, *vb), my);
    *vd = rot8::<AVX512>(_mm_xor_si128(*vd, *va));
    *vc = _mm_add_epi32(*vc, *vd);
    *vb = rot7::<AVX512>(_mm_xor_si128(*vb, *vc));
}

/// 4x4 transpose: rows `(a, b, c, d)` become columns.
#[inline(always)]
unsafe fn transpose4(
    a: __m128i,
    b: __m128i,
    c: __m128i,
    d: __m128i,
) -> (__m128i, __m128i, __m128i, __m128i) {
    let ab_lo = _mm_unpacklo_epi32(a, b); // a0 b0 a1 b1
    let ab_hi = _mm_unpackhi_epi32(a, b); // a2 b2 a3 b3
    let cd_lo = _mm_unpacklo_epi32(c, d); // c0 d0 c1 d1
    let cd_hi = _mm_unpackhi_epi32(c, d); // c2 d2 c3 d3
    (
        _mm_unpacklo_epi64(ab_lo, cd_lo), // a0 b0 c0 d0
        _mm_unpackhi_epi64(ab_lo, cd_lo), // a1 b1 c1 d1
        _mm_unpacklo_epi64(ab_hi, cd_hi), // a2 b2 c2 d2
        _mm_unpackhi_epi64(ab_hi, cd_hi), // a3 b3 c3 d3
    )
}

/// The seven unrolled rounds of the lane-transposed compression: `s[w]`
/// and `m[w]` each hold word `w` of all four lanes.
#[inline(always)]
unsafe fn rounds4<const AVX512: bool>(s: &mut [__m128i; 16], m: &[__m128i; 16]) {
    // The quarter-round index pairs are compile-time constants and never
    // alias within one call; swap through locals rather than fighting the
    // borrow checker with split_at_mut.
    macro_rules! quarter {
        ($a:expr, $b:expr, $c:expr, $d:expr, $x:expr, $y:expr) => {{
            let (mut a, mut b, mut c, mut d) = (s[$a], s[$b], s[$c], s[$d]);
            g::<AVX512>(&mut a, &mut b, &mut c, &mut d, m[$x], m[$y]);
            s[$a] = a;
            s[$b] = b;
            s[$c] = c;
            s[$d] = d;
        }};
    }
    // The rounds are unrolled by macro with *literal* round numbers so the
    // schedule indices are compile-time constants: every `m[...]` access
    // then resolves at compile time and the 16 message vectors stay in
    // registers for the whole compression (a `for` loop over the schedule
    // is not unrolled at this body size, which forces `m` onto the stack
    // and reloads it every round).
    macro_rules! round {
        ($r:literal) => {{
            const S: [usize; 16] = MSG_SCHEDULE[$r];
            quarter!(0, 4, 8, 12, S[0], S[1]);
            quarter!(1, 5, 9, 13, S[2], S[3]);
            quarter!(2, 6, 10, 14, S[4], S[5]);
            quarter!(3, 7, 11, 15, S[6], S[7]);
            quarter!(0, 5, 10, 15, S[8], S[9]);
            quarter!(1, 6, 11, 12, S[10], S[11]);
            quarter!(2, 7, 8, 13, S[12], S[13]);
            quarter!(3, 4, 9, 14, S[14], S[15]);
        }};
    }
    round!(0);
    round!(1);
    round!(2);
    round!(3);
    round!(4);
    round!(5);
    round!(6);
}

/// Load a four-block input group as the lane-transposed message: `m[w]`
/// holds block word `w` of all four lanes. Words are little-endian, so on
/// x86 an unaligned vector load of quad `q` of lane `l` *is* the word load,
/// and a 4x4 transpose per quad finishes the job.
#[inline(always)]
unsafe fn load_group(chunk: &[u8; LANES * 64]) -> [__m128i; 16] {
    let mut m = [_mm_set1_epi32(0); 16];
    for q in 0..4 {
        let at = |l: usize| _mm_loadu_si128(chunk.as_ptr().add(l * 64 + q * 16).cast::<__m128i>());
        let (w0, w1, w2, w3) = transpose4(at(0), at(1), at(2), at(3));
        m[4 * q] = w0;
        m[4 * q + 1] = w1;
        m[4 * q + 2] = w2;
        m[4 * q + 3] = w3;
    }
    m
}

/// Shared body of the lane pass: compress one *full* 64 B block in each of
/// the four lanes simultaneously. Bit-identical to four scalar `compress`
/// calls over the same four blocks.
#[inline(always)]
unsafe fn compress4_body<const AVX512: bool>(
    cvs: &mut [[u32; 8]; LANES],
    chunk: &[u8; LANES * 64],
    base_counter: u64,
    flags: u32,
) {
    let m = load_group(chunk);

    // Transposed state: s[w] holds state word w of all four lanes.
    let mut s = [_mm_set1_epi32(0); 16];
    {
        let half =
            |l: usize, h: usize| _mm_loadu_si128(cvs[l].as_ptr().add(4 * h).cast::<__m128i>());
        let (s0, s1, s2, s3) = transpose4(half(0, 0), half(1, 0), half(2, 0), half(3, 0));
        let (s4, s5, s6, s7) = transpose4(half(0, 1), half(1, 1), half(2, 1), half(3, 1));
        s[0] = s0;
        s[1] = s1;
        s[2] = s2;
        s[3] = s3;
        s[4] = s4;
        s[5] = s5;
        s[6] = s6;
        s[7] = s7;
    }
    for w in 0..4 {
        s[8 + w] = _mm_set1_epi32(IV[w] as i32);
    }
    // Lane counters are base, base+1, base+2, base+3.
    let counters = [
        base_counter,
        base_counter + 1,
        base_counter + 2,
        base_counter + 3,
    ];
    s[12] = _mm_set_epi32(
        counters[3] as u32 as i32,
        counters[2] as u32 as i32,
        counters[1] as u32 as i32,
        counters[0] as u32 as i32,
    );
    s[13] = _mm_set_epi32(
        (counters[3] >> 32) as u32 as i32,
        (counters[2] >> 32) as u32 as i32,
        (counters[1] >> 32) as u32 as i32,
        (counters[0] >> 32) as u32 as i32,
    );
    s[14] = _mm_set1_epi32(64);
    s[15] = _mm_set1_epi32(flags as i32);

    rounds4::<AVX512>(&mut s, &m);

    // Feed-forward truncation, transposed back to lane-major CVs.
    let f = |w: usize| _mm_xor_si128(s[w], s[8 + w]);
    let (lo0, lo1, lo2, lo3) = transpose4(f(0), f(1), f(2), f(3));
    let (hi0, hi1, hi2, hi3) = transpose4(f(4), f(5), f(6), f(7));
    for (l, (lo, hi)) in [(lo0, hi0), (lo1, hi1), (lo2, hi2), (lo3, hi3)]
        .into_iter()
        .enumerate()
    {
        _mm_storeu_si128(cvs[l].as_mut_ptr().cast::<__m128i>(), lo);
        _mm_storeu_si128(cvs[l].as_mut_ptr().add(4).cast::<__m128i>(), hi);
    }
}

/// Shared body of the whole-line fast path: one full four-block group
/// (the 256 B cache line) digested in a single call, never leaving
/// registers between the lane pass and the root. Bit-identical to
/// `compress4_body` + the fold + `compress1_body`, but skips the
/// transpose-out/scalar-fold/transpose-in glue of the general path: the
/// key CV is a broadcast (all lanes start equal), and the 8→4 fold
/// happens in the transposed domain where it is four XORs.
#[inline(always)]
unsafe fn digest_group_body<const AVX512: bool>(
    key: &[u32; 8],
    chunk: &[u8; LANES * 64],
) -> [u32; 8] {
    let m = load_group(chunk);
    let mut s = [_mm_set1_epi32(0); 16];
    for w in 0..8 {
        s[w] = _mm_set1_epi32(key[w] as i32);
    }
    for w in 0..4 {
        s[8 + w] = _mm_set1_epi32(IV[w] as i32);
    }
    s[12] = _mm_set_epi32(3, 2, 1, 0); // lane counters 0..3, low halves
    s[13] = _mm_set1_epi32(0); // counter high halves
    s[14] = _mm_set1_epi32(64);
    s[15] = _mm_set1_epi32(FLAG_CHUNK as i32);
    rounds4::<AVX512>(&mut s, &m);

    // Lane CVs in the transposed domain are cvT[w] = s[w] ^ s[8+w], so the
    // 8→4 fold cv[i] ^ cv[i+4] is cvT[i] ^ cvT[4+i]: four XOR vectors,
    // word-major. One transpose turns them into the root block's rows
    // (row l = lane l's folded words).
    let f = |i: usize| {
        _mm_xor_si128(
            _mm_xor_si128(s[i], s[8 + i]),
            _mm_xor_si128(s[4 + i], s[12 + i]),
        )
    };
    let (b0, b1, b2, b3) = transpose4(f(0), f(1), f(2), f(3));
    let mut block = [0u32; 16];
    _mm_storeu_si128(block.as_mut_ptr().cast::<__m128i>(), b0);
    _mm_storeu_si128(block.as_mut_ptr().add(4).cast::<__m128i>(), b1);
    _mm_storeu_si128(block.as_mut_ptr().add(8).cast::<__m128i>(), b2);
    _mm_storeu_si128(block.as_mut_ptr().add(12).cast::<__m128i>(), b3);
    compress1_body::<AVX512>(
        key,
        &block,
        (LANES * 64) as u64,
        64,
        FLAG_PARENT | FLAG_ROOT,
    )
}

/// Gather four message words into a vector (first index in element 0).
#[inline(always)]
unsafe fn gather(block: &[u32; 16], i0: usize, i1: usize, i2: usize, i3: usize) -> __m128i {
    _mm_set_epi32(
        block[i3] as i32,
        block[i2] as i32,
        block[i1] as i32,
        block[i0] as i32,
    )
}

/// Core of the root pass: one row-vectorized compression, generic over the
/// message source. The four column Gs run as one vector G, rows rotate to
/// bring diagonals into columns, and rotate back. Bit-identical to the
/// scalar `compress`. `pick(i0, i1, i2, i3)` yields the vector
/// `(block[i0], block[i1], block[i2], block[i3])` — from memory on the
/// standalone path, from registers on the fused whole-line path (where a
/// trip through the stack would stall the first round on store-forwarding).
#[inline(always)]
unsafe fn compress1_with_pick<const AVX512: bool>(
    cv: &[u32; 8],
    counter: u64,
    block_len: u32,
    flags: u32,
    pick: impl Fn(usize, usize, usize, usize) -> __m128i,
) -> [u32; 8] {
    let mut r0 = _mm_loadu_si128(cv.as_ptr().cast::<__m128i>()); // s0..s3
    let mut r1 = _mm_loadu_si128(cv.as_ptr().add(4).cast::<__m128i>()); // s4..s7
    let mut r2 = _mm_loadu_si128(IV.as_ptr().cast::<__m128i>()); // s8..s11
    let mut r3 = _mm_set_epi32(
        flags as i32,
        block_len as i32,
        (counter >> 32) as u32 as i32,
        counter as u32 as i32,
    ); // s12..s15

    // One double-G round: column step, rotate rows so the diagonals line up
    // as columns, diagonal step, rotate back.
    macro_rules! round {
        ($sched:expr) => {{
            let sched = $sched;
            let mx = pick(sched[0], sched[2], sched[4], sched[6]);
            let my = pick(sched[1], sched[3], sched[5], sched[7]);
            g::<AVX512>(&mut r0, &mut r1, &mut r2, &mut r3, mx, my);
            r1 = _mm_shuffle_epi32(r1, 0b00_11_10_01);
            r2 = _mm_shuffle_epi32(r2, 0b01_00_11_10);
            r3 = _mm_shuffle_epi32(r3, 0b10_01_00_11);
            let mx = pick(sched[8], sched[10], sched[12], sched[14]);
            let my = pick(sched[9], sched[11], sched[13], sched[15]);
            g::<AVX512>(&mut r0, &mut r1, &mut r2, &mut r3, mx, my);
            r1 = _mm_shuffle_epi32(r1, 0b10_01_00_11);
            r2 = _mm_shuffle_epi32(r2, 0b01_00_11_10);
            r3 = _mm_shuffle_epi32(r3, 0b00_11_10_01);
        }};
    }
    for sched in &MSG_SCHEDULE {
        round!(sched);
    }

    let mut out = [0u32; 8];
    _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), _mm_xor_si128(r0, r2));
    _mm_storeu_si128(
        out.as_mut_ptr().add(4).cast::<__m128i>(),
        _mm_xor_si128(r1, r3),
    );
    out
}

/// Root pass over a message already held in two 256-bit registers: each
/// 4-word gather is a single `vpermi2d` (index values 0..7 select from the
/// low half, 8..15 from the high half); the index vectors are compile-time
/// constants once the round loop unrolls.
#[inline(always)]
unsafe fn compress1_vecs_avx512(
    cv: &[u32; 8],
    mlo: __m256i,
    mhi: __m256i,
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 8] {
    // SAFETY (closure body): same feature contract as the enclosing
    // function; closures inherit its `#[target_feature]` set.
    compress1_with_pick::<true>(cv, counter, block_len, flags, |i0, i1, i2, i3| unsafe {
        let idx = _mm256_set_epi32(0, 0, 0, 0, i3 as i32, i2 as i32, i1 as i32, i0 as i32);
        _mm256_castsi256_si128(_mm256_permutex2var_epi32(mlo, idx, mhi))
    })
}

/// Shared body of the standalone root pass: the message comes from memory.
#[inline(always)]
unsafe fn compress1_body<const AVX512: bool>(
    cv: &[u32; 8],
    block: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 8] {
    if AVX512 {
        let mlo = _mm256_loadu_si256(block.as_ptr().cast());
        let mhi = _mm256_loadu_si256(block.as_ptr().add(8).cast());
        compress1_vecs_avx512(cv, mlo, mhi, counter, block_len, flags)
    } else {
        // SAFETY (closure body): same feature contract as the enclosing
        // function; closures inherit its `#[target_feature]` set.
        compress1_with_pick::<AVX512>(cv, counter, block_len, flags, |i0, i1, i2, i3| unsafe {
            gather(block, i0, i1, i2, i3)
        })
    }
}

/// Lane pass, SSSE3 tier.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("ssse3")`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn compress4_ssse3(
    cvs: &mut [[u32; 8]; LANES],
    chunk: &[u8; LANES * 64],
    base_counter: u64,
    flags: u32,
) {
    compress4_body::<false>(cvs, chunk, base_counter, flags);
}

/// Lane pass, AVX-512VL tier.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!` for both
/// `avx512f` and `avx512vl`.
#[target_feature(enable = "avx512f,avx512vl")]
pub(crate) unsafe fn compress4_avx512(
    cvs: &mut [[u32; 8]; LANES],
    chunk: &[u8; LANES * 64],
    base_counter: u64,
    flags: u32,
) {
    compress4_body::<true>(cvs, chunk, base_counter, flags);
}

/// Whole-line fast path, SSSE3 tier.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("ssse3")`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn digest_group_ssse3(key: &[u32; 8], chunk: &[u8; LANES * 64]) -> [u32; 8] {
    digest_group_body::<false>(key, chunk)
}

/// The quarter round over four 512-bit cells: each register holds four
/// state words as 128-bit sublanes, so one call executes all four quarter
/// rounds of a step at once.
#[inline(always)]
unsafe fn gz(
    va: &mut __m512i,
    vb: &mut __m512i,
    vc: &mut __m512i,
    vd: &mut __m512i,
    mx: __m512i,
    my: __m512i,
) {
    *va = _mm512_add_epi32(_mm512_add_epi32(*va, *vb), mx);
    *vd = _mm512_ror_epi32::<16>(_mm512_xor_si512(*vd, *va));
    *vc = _mm512_add_epi32(*vc, *vd);
    *vb = _mm512_ror_epi32::<12>(_mm512_xor_si512(*vb, *vc));
    *va = _mm512_add_epi32(_mm512_add_epi32(*va, *vb), my);
    *vd = _mm512_ror_epi32::<8>(_mm512_xor_si512(*vd, *va));
    *vc = _mm512_add_epi32(*vc, *vd);
    *vb = _mm512_ror_epi32::<7>(_mm512_xor_si512(*vb, *vc));
}

/// Whole-line fast path, AVX-512 tier: the entire lane pass in four
/// 512-bit state registers.
///
/// Layout: `Z0 = (s0..s3)`, `Z1 = (s4..s7)`, `Z2 = (s8..s11)`,
/// `Z3 = (s12..s15)`, where each 128-bit sublane is one transposed state
/// word (its four elements are the four lanes). A column step is then a
/// single [`gz`]; the diagonal step rotates `Z1..Z3`'s sublanes with
/// `vshufi32x4` exactly like the row form rotates words. The message sits
/// in four registers `A = m[sched[0,2,4,6]]`, `B = m[sched[1,3,5,7]]`,
/// `C = m[sched[8,10,12,14]]`, `D = m[sched[9,11,13,15]]` — the operands
/// the two `gz` calls want directly — and advances to the next round's
/// schedule through a fixed `vpermt2q`/blend network (the same four
/// registers always hold all 16 words, so next-round operands are a fixed
/// 128-bit-sublane permutation of the current four).
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!` for both
/// `avx512f` and `avx512vl`.
#[target_feature(enable = "avx512f,avx512vl")]
pub(crate) unsafe fn digest_group_avx512(key: &[u32; 8], chunk: &[u8; LANES * 64]) -> [u32; 8] {
    // Load the four 64 B blocks and transpose at qword granularity:
    // wj = (m[j], m[4+j], m[8+j], m[12+j]) as sublanes.
    let l0 = _mm512_loadu_si512(chunk.as_ptr().cast());
    let l1 = _mm512_loadu_si512(chunk.as_ptr().add(64).cast());
    let l2 = _mm512_loadu_si512(chunk.as_ptr().add(128).cast());
    let l3 = _mm512_loadu_si512(chunk.as_ptr().add(192).cast());
    let t0 = _mm512_unpacklo_epi32(l0, l1);
    let t1 = _mm512_unpackhi_epi32(l0, l1);
    let t2 = _mm512_unpacklo_epi32(l2, l3);
    let t3 = _mm512_unpackhi_epi32(l2, l3);
    let w0 = _mm512_unpacklo_epi64(t0, t2);
    let w1 = _mm512_unpackhi_epi64(t0, t2);
    let w2 = _mm512_unpacklo_epi64(t1, t3);
    let w3 = _mm512_unpackhi_epi64(t1, t3);

    // Round-0 schedule is the identity: A = (m0,m2,m4,m6) interleaves the
    // even-word registers w0/w2, C = (m8,m10,m12,m14) their upper halves;
    // B/D likewise from the odd-word registers. Indices are qword pairs
    // (one 128-bit sublane = two qwords; 0..7 first operand, 8..15 second).
    let idx_even = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);
    let idx_odd = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4);
    let mut a = _mm512_permutex2var_epi64(w0, idx_even, w2);
    let mut b = _mm512_permutex2var_epi64(w1, idx_even, w3);
    let mut c = _mm512_permutex2var_epi64(w0, idx_odd, w2);
    let mut d = _mm512_permutex2var_epi64(w1, idx_odd, w3);

    // State: broadcast each key word across its sublane (all lanes start
    // from the key CV), IV third row, (counter, len, flags) fourth row
    // with per-lane counters 0..3.
    let kv = _mm512_castsi256_si512(_mm256_loadu_si256(key.as_ptr().cast()));
    let mut z0 = _mm512_permutexvar_epi32(
        _mm512_set_epi32(3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0),
        kv,
    );
    let mut z1 = _mm512_permutexvar_epi32(
        _mm512_set_epi32(7, 7, 7, 7, 6, 6, 6, 6, 5, 5, 5, 5, 4, 4, 4, 4),
        kv,
    );
    let iv = |w: usize| IV[w] as i32;
    let mut z2 = _mm512_set_epi32(
        iv(3),
        iv(3),
        iv(3),
        iv(3),
        iv(2),
        iv(2),
        iv(2),
        iv(2),
        iv(1),
        iv(1),
        iv(1),
        iv(1),
        iv(0),
        iv(0),
        iv(0),
        iv(0),
    );
    let fc = FLAG_CHUNK as i32;
    let mut z3 = _mm512_set_epi32(fc, fc, fc, fc, 64, 64, 64, 64, 0, 0, 0, 0, 3, 2, 1, 0);

    // Next-round message network, derived from applying the word
    // permutation to the (A, B, C, D) sublane layout; the same fixed
    // permutation every round.
    let idx_na = _mm512_set_epi64(5, 4, 15, 14, 11, 10, 3, 2); // (A1,B1,B3,A2)
    let idx_nb1 = _mm512_set_epi64(0, 0, 1, 0, 11, 10, 7, 6); // (A3,C1,A0,__)
    let idx_nb2 = _mm512_set_epi64(13, 12, 5, 4, 3, 2, 1, 0); // sub3 <- D2
    let idx_nc1 = _mm512_set_epi64(15, 14, 9, 8, 5, 4, 0, 0); // (__,C2,D0,D3)
    let idx_nd1 = _mm512_set_epi64(1, 0, 7, 6, 13, 12, 0, 0); // (__,B2,C3,C0)
    let idx_nd2 = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 11, 10); // sub0 <- D1

    macro_rules! roundz {
        () => {{
            gz(&mut z0, &mut z1, &mut z2, &mut z3, a, b);
            z1 = _mm512_shuffle_i32x4::<0b00_11_10_01>(z1, z1);
            z2 = _mm512_shuffle_i32x4::<0b01_00_11_10>(z2, z2);
            z3 = _mm512_shuffle_i32x4::<0b10_01_00_11>(z3, z3);
            gz(&mut z0, &mut z1, &mut z2, &mut z3, c, d);
            z1 = _mm512_shuffle_i32x4::<0b10_01_00_11>(z1, z1);
            z2 = _mm512_shuffle_i32x4::<0b01_00_11_10>(z2, z2);
            z3 = _mm512_shuffle_i32x4::<0b00_11_10_01>(z3, z3);
        }};
    }
    macro_rules! advance {
        () => {{
            let na = _mm512_permutex2var_epi64(a, idx_na, b);
            let nb =
                _mm512_permutex2var_epi64(_mm512_permutex2var_epi64(a, idx_nb1, c), idx_nb2, d);
            let nc =
                _mm512_mask_blend_epi64(0b0000_0011, _mm512_permutex2var_epi64(c, idx_nc1, d), b);
            let nd =
                _mm512_permutex2var_epi64(_mm512_permutex2var_epi64(c, idx_nd1, b), idx_nd2, d);
            a = na;
            b = nb;
            c = nc;
            d = nd;
        }};
    }
    roundz!();
    advance!();
    roundz!();
    advance!();
    roundz!();
    advance!();
    roundz!();
    advance!();
    roundz!();
    advance!();
    roundz!();
    advance!();
    roundz!();

    // Feed-forward and the 8→4 lane-CV fold collapse to three XORs in this
    // layout: (Z0^Z2) = cvT[0..4], (Z1^Z3) = cvT[4..8], and their XOR has
    // fold word i in sublane i. Transposing the four sublanes yields the
    // root block's rows.
    let f = _mm512_xor_si512(_mm512_xor_si512(z0, z2), _mm512_xor_si512(z1, z3));
    let (b0, b1, b2, b3) = transpose4(
        _mm512_castsi512_si128(f),
        _mm512_extracti32x4_epi32::<1>(f),
        _mm512_extracti32x4_epi32::<2>(f),
        _mm512_extracti32x4_epi32::<3>(f),
    );
    // Hand the root block to the root pass in registers: a bounce through
    // the stack here would put a store-forwarding stall (128-bit stores,
    // 256-bit reload) on the critical path of the root's first round.
    compress1_vecs_avx512(
        key,
        _mm256_set_m128i(b1, b0),
        _mm256_set_m128i(b3, b2),
        (LANES * 64) as u64,
        64,
        FLAG_PARENT | FLAG_ROOT,
    )
}

/// Root pass, SSSE3 tier.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("ssse3")`.
#[target_feature(enable = "ssse3")]
pub(crate) unsafe fn compress1_ssse3(
    cv: &[u32; 8],
    block: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 8] {
    compress1_body::<false>(cv, block, counter, block_len, flags)
}

/// Root pass, AVX-512VL tier.
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!` for both
/// `avx512f` and `avx512vl`.
#[target_feature(enable = "avx512f,avx512vl")]
pub(crate) unsafe fn compress1_avx512(
    cv: &[u32; 8],
    block: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 8] {
    compress1_body::<true>(cv, block, counter, block_len, flags)
}
