//! Trace capture/replay integration: a generated workload serialized to the
//! binary format and replayed must drive a scheme to the identical state.

use dewrite::core::{BaseMetrics, DeWrite, DeWriteConfig, SecureMemory, Simulator, SystemConfig};
use dewrite::trace::{app_by_name, TraceGenerator, TraceReader, TraceRecord, TraceWriter};

const KEY: &[u8; 16] = b"replay test key!";

fn generate(app: &str, n: usize) -> (Vec<TraceRecord>, Vec<TraceRecord>) {
    let mut profile = app_by_name(app).expect("known app");
    profile.working_set_lines = 1 << 10;
    profile.content_pool_size = 128;
    let gen = TraceGenerator::new(profile, 256, 123);
    let warmup = gen.warmup_records();
    let trace: Vec<_> = gen.take(n).collect();
    (warmup, trace)
}

fn roundtrip(records: &[TraceRecord]) -> Vec<TraceRecord> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf, 256).expect("header");
    for rec in records {
        w.write_record(rec).expect("encode");
    }
    w.into_inner().expect("flush");
    TraceReader::new(buf.as_slice())
        .expect("header")
        .read_all()
        .expect("decode")
}

fn run(warmup: &[TraceRecord], trace: &[TraceRecord]) -> BaseMetrics {
    let config = SystemConfig::for_lines((1 << 10) + 128 + 64);
    let sim = Simulator::new(&config);
    let mut mem = DeWrite::new(config, DeWriteConfig::paper(), KEY);
    sim.run(&mut mem, "replay", warmup, trace.iter().cloned())
        .expect("runs");
    mem.base_metrics()
}

#[test]
fn serialized_trace_replays_identically() {
    let (warmup, trace) = generate("milc", 4_000);

    let direct = run(&warmup, &trace);
    let replayed = run(&roundtrip(&warmup), &roundtrip(&trace));

    // Bit-identical workload ⇒ identical controller behaviour.
    assert_eq!(direct, replayed);
    assert!(direct.writes_eliminated > 0, "sanity: dedup actually ran");
}

#[test]
fn codec_is_lossless_for_generated_traces() {
    let (warmup, trace) = generate("blackscholes", 2_000);
    assert_eq!(roundtrip(&warmup), warmup);
    assert_eq!(roundtrip(&trace), trace);
}

#[test]
fn trace_files_work_through_the_filesystem() {
    let (_, trace) = generate("gcc", 500);
    let path = std::env::temp_dir().join("dewrite_replay_test.trace");

    let file = std::fs::File::create(&path).expect("create");
    let mut w = TraceWriter::new(std::io::BufWriter::new(file), 256).expect("header");
    for rec in &trace {
        w.write_record(rec).expect("encode");
    }
    w.into_inner().expect("flush");

    let file = std::fs::File::open(&path).expect("open");
    let mut r = TraceReader::new(std::io::BufReader::new(file)).expect("header");
    let decoded = r.read_all().expect("decode");
    assert_eq!(decoded, trace);
    std::fs::remove_file(&path).ok();
}
