//! System-level experiments: Fig. 17 (IPC), Fig. 19 (energy vs baseline),
//! Fig. 20 (energy by write mode), Table II (configuration).

use dewrite_core::{SystemConfig, WriteMode};
use dewrite_nvm::Timing;
use dewrite_trace::all_apps;

use crate::experiments::{mean, Ctx};
use crate::runner::{par_map_apps, run_scheme, SchemeKind, Workload};
use crate::table::{f3, pct, Table};

/// Fig. 17: relative IPC of DeWrite normalized to the traditional secure
/// NVM (paper: avg +82%).
pub fn fig17(ctx: &mut Ctx) {
    let mut t = Table::new(
        "Fig. 17 — IPC normalized to traditional secure NVM (paper: avg 1.82)",
        &["app", "baseline IPC", "dewrite IPC", "relative"],
    );
    let mut rels = Vec::new();
    for c in ctx.comparisons().to_vec() {
        let rel = c.dewrite.relative_ipc_vs(&c.baseline);
        rels.push(rel);
        t.row(vec![
            c.app.clone(),
            f3(c.baseline.ipc),
            f3(c.dewrite.ipc),
            f3(rel),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        f3(mean(rels)),
    ]);
    ctx.emit(&t, "fig17");
}

/// Fig. 19: total energy of DeWrite normalized to the traditional secure
/// NVM, with the consumer breakdown (paper: −40% on average).
pub fn fig19(ctx: &mut Ctx) {
    let mut t = Table::new(
        "Fig. 19 — energy normalized to traditional secure NVM (paper: avg 0.60)",
        &[
            "app",
            "normalized energy",
            "nvm-write share",
            "aes share",
            "dedup share",
        ],
    );
    let mut rels = Vec::new();
    for c in ctx.comparisons().to_vec() {
        let rel = c.dewrite.relative_energy_vs(&c.baseline);
        rels.push(rel);
        let total = c.dewrite.energy.total_pj().max(1) as f64;
        t.row(vec![
            c.app.clone(),
            f3(rel),
            pct(c.dewrite.energy.nvm_write_pj as f64 / total),
            pct(c.dewrite.energy.aes_pj as f64 / total),
            pct(c.dewrite.energy.dedup_pj as f64 / total),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        f3(mean(rels)),
        String::new(),
        String::new(),
        String::new(),
    ]);
    ctx.emit(&t, "fig19");
}

/// Fig. 20: energy of the direct way, DeWrite, and the parallel way,
/// normalized to the parallel way (paper: DeWrite ≈ direct, −32% vs
/// parallel).
pub fn fig20(ctx: &mut Ctx) {
    let apps = all_apps();
    let scale = ctx.scale;
    let rows = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let direct = run_scheme(SchemeKind::DeWriteMode(WriteMode::Direct), &w);
        let parallel = run_scheme(SchemeKind::DeWriteMode(WriteMode::Parallel), &w);
        let predictive = run_scheme(SchemeKind::DeWrite, &w);
        let p = parallel.energy.total_pj().max(1) as f64;
        (
            profile.name.to_string(),
            direct.energy.total_pj() as f64 / p,
            predictive.energy.total_pj() as f64 / p,
            1.0,
        )
    });

    let mut t = Table::new(
        "Fig. 20 — energy normalized to the parallel way (paper: DeWrite ≈ direct, −32% vs parallel)",
        &["app", "direct", "DeWrite", "parallel"],
    );
    for (name, d, dw, p) in &rows {
        t.row(vec![name.clone(), f3(*d), f3(*dw), f3(*p)]);
    }
    t.row(vec![
        "AVERAGE".into(),
        f3(mean(rows.iter().map(|r| r.1))),
        f3(mean(rows.iter().map(|r| r.2))),
        f3(1.0),
    ]);
    ctx.emit(&t, "fig20");
}

/// Table II: the evaluated system configuration.
pub fn tab2(ctx: &mut Ctx) {
    let s = SystemConfig::for_lines(1 << 16);
    let timing = Timing::PCM;
    let mut t = Table::new("Table II — system configuration", &["parameter", "value"]);
    t.row(vec!["NVM technology".into(), "PCM (modeled)".into()]);
    t.row(vec!["capacity (paper)".into(), "16 GB".into()]);
    t.row(vec!["line size".into(), format!("{} B", s.nvm.line_size)]);
    t.row(vec!["banks".into(), s.nvm.banks.to_string()]);
    t.row(vec![
        "read latency".into(),
        format!("{} ns", timing.read_ns),
    ]);
    t.row(vec![
        "write latency".into(),
        format!("{} ns", timing.write_ns),
    ]);
    t.row(vec!["AES latency".into(), "96 ns / line".into()]);
    t.row(vec!["AES energy".into(), "5.9 nJ / 128-bit block".into()]);
    t.row(vec!["CRC-32 latency".into(), "15 ns".into()]);
    t.row(vec![
        "metadata cache".into(),
        "2 MB (512K x3 + 128K)".into(),
    ]);
    t.row(vec!["history window".into(), "3 bits".into()]);
    t.row(vec![
        "core".into(),
        format!("{} GHz in-order, CPI {}", s.core.freq_ghz, s.core.base_cpi),
    ]);
    t.row(vec![
        "write queue depth".into(),
        s.write_queue_depth.to_string(),
    ]);
    t.row(vec![
        "persist barrier".into(),
        match s.persist_every {
            Some(n) => format!("every {n} writes"),
            None => "none".into(),
        },
    ]);
    ctx.emit(&t, "tab2");
}
