//! Per-run experiment reports.

use dewrite_mem::{LatencyHistogram, LatencyStats};
use dewrite_nvm::EnergyBreakdown;

use crate::schemes::{BaseMetrics, DeWriteMetrics};
use crate::trace::StageBreakdown;

/// Everything one (scheme × workload) simulation produces, in the units the
/// paper's figures use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Scheme name.
    pub scheme: String,
    /// Workload/application name.
    pub app: String,
    /// Instructions executed.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: f64,
    /// Instructions per cycle (Fig. 17's metric).
    pub ipc: f64,
    /// Full write latencies, issue → durable (Fig. 14).
    pub write_latency: LatencyStats,
    /// Write latencies of eliminated (duplicate) writes only.
    pub write_latency_eliminated: LatencyStats,
    /// Write latencies of writes that reached the NVM array.
    pub write_latency_stored: LatencyStats,
    /// Read latencies (Fig. 16).
    pub read_latency: LatencyStats,
    /// Controller critical-path write latencies (Fig. 15's metric).
    pub write_critical: LatencyStats,
    /// Scheme counters (writes, eliminations, metadata traffic …).
    pub base: BaseMetrics,
    /// Energy consumed during the measured window.
    pub energy: EnergyBreakdown,
    /// NVM data-line writes that reached the array.
    pub nvm_data_writes: u64,
    /// Average fraction of line bits programmed per array write.
    pub bit_flip_ratio: f64,
    /// DeWrite-specific metrics, when the scheme is DeWrite.
    pub dewrite: Option<DeWriteMetrics>,
    /// Full write-latency distribution (p50/p95/p99, not just the mean).
    pub write_latency_hist: LatencyHistogram,
    /// Read-latency distribution.
    pub read_latency_hist: LatencyHistogram,
    /// Per-stage write-pipeline latency breakdown (empty when the scheme
    /// does not support event tracing).
    pub stage_breakdown: StageBreakdown,
}

impl RunReport {
    /// Fraction of writes whose NVM write was eliminated (Fig. 12).
    pub fn write_reduction(&self) -> f64 {
        if self.base.writes == 0 {
            0.0
        } else {
            self.base.writes_eliminated as f64 / self.base.writes as f64
        }
    }

    /// Write speedup of this run versus `baseline` (mean write latency
    /// ratio, Fig. 14).
    pub fn write_speedup_vs(&self, baseline: &RunReport) -> f64 {
        ratio(
            baseline.write_latency.mean_ns(),
            self.write_latency.mean_ns(),
        )
    }

    /// Read speedup versus `baseline` (Fig. 16).
    pub fn read_speedup_vs(&self, baseline: &RunReport) -> f64 {
        ratio(baseline.read_latency.mean_ns(), self.read_latency.mean_ns())
    }

    /// Relative IPC versus `baseline` (Fig. 17).
    pub fn relative_ipc_vs(&self, baseline: &RunReport) -> f64 {
        ratio(self.ipc, baseline.ipc)
    }

    /// Relative total energy versus `baseline` (Fig. 19).
    pub fn relative_energy_vs(&self, baseline: &RunReport) -> f64 {
        ratio(
            self.energy.total_pj() as f64,
            baseline.energy.total_pj() as f64,
        )
    }

    /// Fold another report into this one, treating the two as **parallel
    /// partitions of the same run** (engine shards): counters, latency
    /// summaries, histograms, stages and energy add; `cycles` takes the
    /// maximum (shards run concurrently, so elapsed time is the slowest
    /// partition) and `ipc` is recomputed; `bit_flip_ratio` is weighted by
    /// array writes; `dewrite` metrics add with accuracy weighted by
    /// writes. `scheme`/`app` keep `self`'s labels.
    ///
    /// Every combining operation is exact integer/`u64` arithmetic except
    /// the two weighted `f64` means, so folding shard reports **in a fixed
    /// order** yields bit-identical results regardless of how the shards
    /// were scheduled — the property the engine's determinism tests pin.
    pub fn merge(&mut self, other: &RunReport) {
        let self_writes = self.base.writes;
        let other_writes = other.base.writes;

        self.instructions += other.instructions;
        self.cycles = if self.cycles >= other.cycles {
            self.cycles
        } else {
            other.cycles
        };
        self.ipc = ratio(self.instructions as f64, self.cycles);

        self.write_latency.merge(&other.write_latency);
        self.write_latency_eliminated
            .merge(&other.write_latency_eliminated);
        self.write_latency_stored.merge(&other.write_latency_stored);
        self.read_latency.merge(&other.read_latency);
        self.write_critical.merge(&other.write_critical);
        self.write_latency_hist.merge(&other.write_latency_hist);
        self.read_latency_hist.merge(&other.read_latency_hist);
        self.stage_breakdown.merge(&other.stage_breakdown);

        self.base.writes += other.base.writes;
        self.base.writes_eliminated += other.base.writes_eliminated;
        self.base.coalesced_writes += other.base.coalesced_writes;
        self.base.reads += other.base.reads;
        self.base.aes_line_ops += other.base.aes_line_ops;
        self.base.hash_ops += other.base.hash_ops;
        self.base.verify_reads += other.base.verify_reads;
        self.base.meta_nvm_reads += other.base.meta_nvm_reads;
        self.base.meta_nvm_writes += other.base.meta_nvm_writes;

        self.energy.nvm_read_pj += other.energy.nvm_read_pj;
        self.energy.nvm_write_pj += other.energy.nvm_write_pj;
        self.energy.aes_pj += other.energy.aes_pj;
        self.energy.dedup_pj += other.energy.dedup_pj;

        let (a, b) = (self.nvm_data_writes, other.nvm_data_writes);
        if a + b > 0 {
            self.bit_flip_ratio =
                (self.bit_flip_ratio * a as f64 + other.bit_flip_ratio * b as f64) / (a + b) as f64;
        }
        self.nvm_data_writes += other.nvm_data_writes;

        self.dewrite = match (self.dewrite.take(), &other.dewrite) {
            (Some(mut m), Some(o)) => {
                m.dup_eliminated += o.dup_eliminated;
                m.pna_skips += o.pna_skips;
                m.pna_missed_dups += o.pna_missed_dups;
                m.saturated_skips += o.saturated_skips;
                m.false_matches += o.false_matches;
                m.assumed_dups += o.assumed_dups;
                m.parallel_writes += o.parallel_writes;
                m.direct_writes += o.direct_writes;
                m.wasted_encryptions += o.wasted_encryptions;
                m.saved_encryptions += o.saved_encryptions;
                if self_writes + other_writes > 0 {
                    m.predictor_accuracy = (m.predictor_accuracy * self_writes as f64
                        + o.predictor_accuracy * other_writes as f64)
                        / (self_writes + other_writes) as f64;
                }
                Some(m)
            }
            (slf, None) => slf,
            (None, Some(o)) => Some(*o),
        };
    }

    /// Fold per-shard reports into one aggregate, in input (shard) order.
    /// Returns `None` for an empty slice.
    pub fn merge_all<'a>(reports: impl IntoIterator<Item = &'a RunReport>) -> Option<RunReport> {
        let mut it = reports.into_iter();
        let mut merged = it.next()?.clone();
        for r in it {
            merged.merge(r);
        }
        Some(merged)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(write_mean: u64, read_mean: u64, ipc: f64) -> RunReport {
        let mut r = RunReport {
            ipc,
            ..RunReport::default()
        };
        r.write_latency.record(write_mean);
        r.read_latency.record(read_mean);
        r.base.writes = 100;
        r.base.writes_eliminated = 54;
        r
    }

    #[test]
    fn write_reduction_is_eliminated_over_total() {
        let r = report(100, 100, 1.0);
        assert!((r.write_reduction() - 0.54).abs() < 1e-12);
        assert_eq!(RunReport::default().write_reduction(), 0.0);
    }

    #[test]
    fn speedups_are_baseline_over_self() {
        let dewrite = report(100, 50, 1.8);
        let baseline = report(400, 150, 1.0);
        assert!((dewrite.write_speedup_vs(&baseline) - 4.0).abs() < 1e-12);
        assert!((dewrite.read_speedup_vs(&baseline) - 3.0).abs() < 1e-12);
        assert!((dewrite.relative_ipc_vs(&baseline) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn merge_folds_partitions() {
        let mut a = report(100, 50, 1.0);
        a.instructions = 1_000;
        a.cycles = 500.0;
        a.nvm_data_writes = 40;
        a.bit_flip_ratio = 0.5;
        let mut b = report(300, 150, 1.0);
        b.instructions = 3_000;
        b.cycles = 1_500.0;
        b.nvm_data_writes = 60;
        b.bit_flip_ratio = 0.25;

        a.merge(&b);
        assert_eq!(a.base.writes, 200);
        assert_eq!(a.base.writes_eliminated, 108);
        assert_eq!(a.instructions, 4_000);
        assert_eq!(a.cycles, 1_500.0, "parallel partitions: slowest wins");
        assert!((a.ipc - 4_000.0 / 1_500.0).abs() < 1e-12);
        assert_eq!(a.write_latency.count(), 2);
        assert_eq!(a.write_latency.mean_ns(), 200.0);
        assert_eq!(a.nvm_data_writes, 100);
        assert!((a.bit_flip_ratio - 0.35).abs() < 1e-12, "write-weighted");
    }

    #[test]
    fn merge_all_in_order_equals_pairwise() {
        let shards: Vec<RunReport> = (1..=3u64).map(|i| report(i * 100, i * 10, 1.0)).collect();
        let merged = RunReport::merge_all(&shards).expect("non-empty");
        let mut manual = shards[0].clone();
        manual.merge(&shards[1]);
        manual.merge(&shards[2]);
        assert_eq!(merged, manual);
        assert_eq!(RunReport::merge_all([].iter()), None);
    }

    #[test]
    fn zero_denominators_yield_zero() {
        let a = report(0, 0, 0.0);
        let b = RunReport::default();
        assert_eq!(a.relative_ipc_vs(&b), 0.0);
        assert_eq!(a.relative_energy_vs(&b), 0.0);
    }
}
