//! The default AES-128 block engine: runtime backend dispatch.
//!
//! [`Aes128`] picks the fastest available backend at construction:
//!
//! 1. **AES-NI** (`_mm_aesenc_si128`) when the CPU advertises the `aes`
//!    feature and the portable override is off;
//! 2. **T-tables** ([`crate::ttable`]) otherwise — the portable fast path.
//!
//! Every backend expands the same key schedule and produces bit-identical
//! ciphertext (enforced by differential proptests against the
//! [`Aes128Reference`](crate::Aes128Reference) oracle), so backend choice
//! can never change simulation results — only host speed.
//!
//! # Forcing the portable path
//!
//! Set `DEWRITE_PORTABLE=1` in the environment (read once, at first engine
//! construction) or call [`set_portable_only`] before constructing engines.
//! CI uses this to check that reports are bit-identical across backends.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::aes::Aes128Reference;
use crate::ttable::Aes128Soft;

/// Tri-state: 2 = unset (consult the environment), 1 = portable only,
/// 0 = hardware allowed.
static PORTABLE_ONLY: AtomicU8 = AtomicU8::new(2);

/// Should engine constructors refuse hardware backends?
///
/// Lazily seeded from the `DEWRITE_PORTABLE` environment variable (any
/// non-empty value other than `0` forces portable engines).
pub fn portable_only() -> bool {
    match PORTABLE_ONLY.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let forced =
                std::env::var_os("DEWRITE_PORTABLE").is_some_and(|v| !v.is_empty() && v != "0");
            PORTABLE_ONLY.store(u8::from(forced), Ordering::Relaxed);
            forced
        }
    }
}

/// Override backend selection for engines constructed *after* this call:
/// `true` forces the portable T-table path, `false` re-enables hardware
/// dispatch. Intended for tests and determinism checks.
pub fn set_portable_only(portable: bool) {
    PORTABLE_ONLY.store(u8::from(portable), Ordering::Relaxed);
}

/// Which backend an [`Aes128`] instance ended up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesBackend {
    /// Precomputed T-tables (portable fast path).
    TTable,
    /// x86 AES-NI instructions.
    AesNi,
}

impl std::fmt::Display for AesBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AesBackend::TTable => "t-table",
            AesBackend::AesNi => "aes-ni",
        })
    }
}

#[derive(Clone)]
enum Backend {
    Soft(Aes128Soft),
    #[cfg(target_arch = "x86_64")]
    Ni(crate::aesni::Aes128Ni),
}

/// The default AES-128 block engine (hardware when available, T-tables
/// otherwise). Drop-in replacement for the old from-scratch `Aes128`; the
/// reference implementation lives on as [`Aes128Reference`].
///
/// ```
/// use dewrite_crypto::{Aes128, Aes128Reference};
/// let key = [7u8; 16];
/// let fast = Aes128::new(&key);
/// let oracle = Aes128Reference::new(&key);
/// let pt = [0x42u8; 16];
/// assert_eq!(fast.encrypt_block(&pt), oracle.encrypt_block(&pt));
/// assert_eq!(fast.decrypt_block(&fast.encrypt_block(&pt)), pt);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    backend: Backend,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128")
            .field("backend", &self.backend_kind())
            .finish()
    }
}

impl Aes128 {
    /// Build the fastest engine the host (and the portable override)
    /// allows.
    pub fn new(key: &[u8; 16]) -> Self {
        if !portable_only() {
            if let Some(hw) = Self::hardware(key) {
                return hw;
            }
        }
        Self::portable(key)
    }

    /// Build the portable T-table engine regardless of CPU features.
    pub fn portable(key: &[u8; 16]) -> Self {
        Aes128 {
            backend: Backend::Soft(Aes128Soft::new(key)),
        }
    }

    /// Build the hardware engine, or `None` when the CPU lacks AES-NI.
    /// Ignores the portable override (callers use it to benchmark backends
    /// side by side).
    pub fn hardware(key: &[u8; 16]) -> Option<Self> {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("aes") {
                // SAFETY: the `aes` feature was just detected.
                #[allow(unsafe_code)]
                let ni = unsafe { crate::aesni::Aes128Ni::new(key) };
                return Some(Aes128 {
                    backend: Backend::Ni(ni),
                });
            }
        }
        let _ = key;
        None
    }

    /// The backend this instance dispatches to.
    pub fn backend_kind(&self) -> AesBackend {
        match &self.backend {
            Backend::Soft(_) => AesBackend::TTable,
            #[cfg(target_arch = "x86_64")]
            Backend::Ni(_) => AesBackend::AesNi,
        }
    }

    /// Encrypt one 16-byte block.
    #[inline]
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        match &self.backend {
            Backend::Soft(s) => s.encrypt_block(plaintext),
            #[cfg(target_arch = "x86_64")]
            Backend::Ni(ni) => {
                // SAFETY: a `Ni` backend is only ever constructed after
                // feature detection.
                #[allow(unsafe_code)]
                unsafe {
                    ni.encrypt_block(plaintext)
                }
            }
        }
    }

    /// Decrypt one 16-byte block.
    #[inline]
    pub fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        match &self.backend {
            Backend::Soft(s) => s.decrypt_block(ciphertext),
            #[cfg(target_arch = "x86_64")]
            Backend::Ni(ni) => {
                // SAFETY: a `Ni` backend is only ever constructed after
                // feature detection.
                #[allow(unsafe_code)]
                unsafe {
                    ni.decrypt_block(ciphertext)
                }
            }
        }
    }

    /// Encrypt a block with the reference oracle (differential-test
    /// convenience).
    pub fn reference(key: &[u8; 16]) -> Aes128Reference {
        Aes128Reference::new(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn portable_override_is_honored() {
        set_portable_only(true);
        let aes = Aes128::new(&[1u8; 16]);
        assert_eq!(aes.backend_kind(), AesBackend::TTable);
        set_portable_only(false);
        // With the override off, the backend is whatever the host offers;
        // both must round-trip.
        let aes = Aes128::new(&[1u8; 16]);
        let pt = [9u8; 16];
        assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
    }

    #[test]
    fn backends_agree_on_fips_vector() {
        let key: [u8; 16] = (0x00..0x10u8).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = (0..16u8)
            .map(|i| i * 0x11)
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, //
            0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a,
        ];
        assert_eq!(Aes128::portable(&key).encrypt_block(&pt), expected);
        if let Some(hw) = Aes128::hardware(&key) {
            assert_eq!(hw.encrypt_block(&pt), expected);
        }
    }

    proptest! {
        // The dispatched engine (whatever backend it lands on) must match
        // the reference oracle bit-for-bit.
        #[test]
        fn dispatched_matches_oracle(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
            let fast = Aes128::new(&key);
            let oracle = Aes128Reference::new(&key);
            prop_assert_eq!(fast.encrypt_block(&block), oracle.encrypt_block(&block));
            prop_assert_eq!(fast.decrypt_block(&block), oracle.decrypt_block(&block));
        }

        // Hardware and portable backends agree with each other directly.
        #[test]
        fn hardware_matches_portable(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
            if let Some(hw) = Aes128::hardware(&key) {
                let soft = Aes128::portable(&key);
                prop_assert_eq!(hw.encrypt_block(&block), soft.encrypt_block(&block));
                prop_assert_eq!(hw.decrypt_block(&block), soft.decrypt_block(&block));
            }
        }
    }
}
