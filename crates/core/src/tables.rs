//! The four deduplication data structures (§III-B2).
//!
//! This module implements the *functional* layer of the tables — exact
//! contents and invariants. Timing (metadata-cache hits, NVM accesses,
//! prefetch) is layered on top by the scheme implementations, which mirror
//! every table operation with a cache access keyed by the entry index.
//!
//! * [`HashTable`] — digest → {realAddr, reference}; multiple entries per
//!   digest are possible (CRC-32 collisions) and references saturate at 255.
//! * [`AddrMapTable`] — initAddr → realAddr for deduplicated lines.
//! * [`InvertedTable`] — realAddr → digest, for cleaning stale hashes when a
//!   resident line is overwritten or freed.
//! * [`FreeSpaceTable`] — one bit per line; allocation prefers a caller-
//!   provided home line for locality.

use std::collections::HashMap;

use dewrite_nvm::LineAddr;

/// Saturation limit of the 8-bit reference field. Lines that reach it are
/// "highly referenced": further duplicates of their content are *not*
/// deduplicated, preventing overflow (§III-B2).
pub const MAX_REFERENCE: u8 = 255;

/// One hash-table entry: a resident line and its reference count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashEntry {
    /// The physical line holding the content.
    pub real: LineAddr,
    /// Number of initial addresses mapped to `real`.
    pub reference: u8,
}

/// The digest-indexed duplicate-lookup table.
#[derive(Debug, Clone, Default)]
pub struct HashTable {
    buckets: HashMap<u32, Vec<HashEntry>>,
    entries: usize,
    collision_buckets: u64,
    saturated_hits: u64,
}

impl HashTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// All entries whose content hashes to `digest` (collision candidates).
    pub fn candidates(&self, digest: u32) -> &[HashEntry] {
        self.buckets.get(&digest).map_or(&[], Vec::as_slice)
    }

    /// Insert a new resident line with reference count 1.
    ///
    /// # Panics
    ///
    /// Panics if `real` is already present under `digest` — the caller must
    /// clean stale entries first (that is what the inverted table is for).
    pub fn insert(&mut self, digest: u32, real: LineAddr) {
        let bucket = self.buckets.entry(digest).or_default();
        assert!(
            !bucket.iter().any(|e| e.real == real),
            "line {real} already indexed under digest {digest:#x}"
        );
        bucket.push(HashEntry { real, reference: 1 });
        if bucket.len() == 2 {
            self.collision_buckets += 1;
        }
        self.entries += 1;
    }

    /// Recovery-path insert with an explicit starting reference (0 is
    /// allowed transiently while mappings are being re-linked).
    ///
    /// # Panics
    ///
    /// Panics if `real` is already present under `digest`.
    pub(crate) fn insert_with_reference(&mut self, digest: u32, real: LineAddr, reference: u8) {
        let bucket = self.buckets.entry(digest).or_default();
        assert!(
            !bucket.iter().any(|e| e.real == real),
            "line {real} already indexed under digest {digest:#x}"
        );
        bucket.push(HashEntry { real, reference });
        if bucket.len() == 2 {
            self.collision_buckets += 1;
        }
        self.entries += 1;
    }

    /// Increment the reference of `real` under `digest`. Returns `false`
    /// (and changes nothing) if the reference is saturated.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn add_reference(&mut self, digest: u32, real: LineAddr) -> bool {
        let entry = self
            .buckets
            .get_mut(&digest)
            .and_then(|b| b.iter_mut().find(|e| e.real == real))
            .expect("add_reference on missing hash entry");
        if entry.reference == MAX_REFERENCE {
            self.saturated_hits += 1;
            return false;
        }
        entry.reference += 1;
        true
    }

    /// Decrement the reference of `real` under `digest`. Returns the new
    /// count; at zero the entry is removed and the line can be freed.
    /// Saturated entries stay saturated (their true count is unknown).
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn release_reference(&mut self, digest: u32, real: LineAddr) -> u8 {
        let bucket = self
            .buckets
            .get_mut(&digest)
            .expect("release_reference on missing digest");
        let idx = bucket
            .iter()
            .position(|e| e.real == real)
            .expect("release_reference on missing hash entry");
        let entry = &mut bucket[idx];
        if entry.reference == MAX_REFERENCE {
            return MAX_REFERENCE;
        }
        entry.reference -= 1;
        let remaining = entry.reference;
        if remaining == 0 {
            bucket.swap_remove(idx);
            self.entries -= 1;
            if bucket.is_empty() {
                self.buckets.remove(&digest);
            }
        }
        remaining
    }

    /// Remove the entry for `real` under `digest` regardless of references
    /// (used when the owner's content is overwritten and nobody references
    /// it anymore).
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn remove(&mut self, digest: u32, real: LineAddr) {
        let bucket = self
            .buckets
            .get_mut(&digest)
            .expect("remove on missing digest");
        let idx = bucket
            .iter()
            .position(|e| e.real == real)
            .expect("remove on missing hash entry");
        bucket.swap_remove(idx);
        self.entries -= 1;
        if bucket.is_empty() {
            self.buckets.remove(&digest);
        }
    }

    /// The reference count of `real` under `digest`, if present.
    pub fn reference(&self, digest: u32, real: LineAddr) -> Option<u8> {
        self.buckets
            .get(&digest)?
            .iter()
            .find(|e| e.real == real)
            .map(|e| e.reference)
    }

    /// Total entries across all buckets.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Buckets that ever held ≥2 entries (digest collisions, Fig. 6).
    pub fn collision_buckets(&self) -> u64 {
        self.collision_buckets
    }

    /// Duplicate detections skipped because the entry was saturated.
    pub fn saturated_hits(&self) -> u64 {
        self.saturated_hits
    }

    /// Record that a duplicate of a saturated entry was declined without
    /// going through [`add_reference`](Self::add_reference).
    pub(crate) fn note_saturated_hit(&mut self) {
        self.saturated_hits += 1;
    }

    /// Iterate over `(digest, entry)` pairs (reference-count distribution,
    /// Fig. 7).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &HashEntry)> {
        self.buckets
            .iter()
            .flat_map(|(&d, bucket)| bucket.iter().map(move |e| (d, e)))
    }
}

/// The initAddr → realAddr mapping for deduplicated lines.
///
/// A line absent from the table is *not deduplicated*: its data lives in its
/// home location (realAddr = initAddr). This matches the paper's colocation
/// observation — absent/"null" slots hold the encryption counter instead.
#[derive(Debug, Clone, Default)]
pub struct AddrMapTable {
    map: HashMap<u64, LineAddr>,
}

impl AddrMapTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve `init` to the physical line holding its data.
    pub fn resolve(&self, init: LineAddr) -> LineAddr {
        self.map.get(&init.index()).copied().unwrap_or(init)
    }

    /// Whether `init` is deduplicated (mapped away from home).
    pub fn is_mapped(&self, init: LineAddr) -> bool {
        self.map.contains_key(&init.index())
    }

    /// Map `init` to `real`.
    ///
    /// # Panics
    ///
    /// Panics if `real == init` — identity mappings are represented by
    /// absence.
    pub fn map_to(&mut self, init: LineAddr, real: LineAddr) {
        assert_ne!(init, real, "identity mappings are implicit");
        self.map.insert(init.index(), real);
    }

    /// Remove `init`'s mapping (its data is back in its home line).
    pub fn unmap(&mut self, init: LineAddr) {
        self.map.remove(&init.index());
    }

    /// Number of deduplicated (mapped) lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no lines are deduplicated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The realAddr → digest table for stale-hash cleaning.
#[derive(Debug, Clone, Default)]
pub struct InvertedTable {
    map: HashMap<u64, u32>,
}

impl InvertedTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The digest of the content resident at `real`, if any.
    pub fn digest_of(&self, real: LineAddr) -> Option<u32> {
        self.map.get(&real.index()).copied()
    }

    /// Record that `real` now holds content with `digest`.
    pub fn set(&mut self, real: LineAddr, digest: u32) {
        self.map.insert(real.index(), digest);
    }

    /// Clear the record for `real` (line freed). Returns the stale digest.
    pub fn clear(&mut self, real: LineAddr) -> Option<u32> {
        self.map.remove(&real.index())
    }

    /// Number of resident (hash-indexed) lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no lines are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The free-space bitmap (1 bit per line).
#[derive(Debug, Clone)]
pub struct FreeSpaceTable {
    // true = free
    free: Vec<bool>,
    free_count: u64,
}

impl FreeSpaceTable {
    /// All `lines` start free.
    pub fn new(lines: u64) -> Self {
        FreeSpaceTable {
            free: vec![true; lines as usize],
            free_count: lines,
        }
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> u64 {
        self.free.len() as u64
    }

    /// Number of free lines.
    pub fn free_lines(&self) -> u64 {
        self.free_count
    }

    /// Whether `line` is free.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn is_free(&self, line: LineAddr) -> bool {
        self.free[line.index() as usize]
    }

    /// Mark `line` occupied.
    pub fn occupy(&mut self, line: LineAddr) {
        let slot = &mut self.free[line.index() as usize];
        if *slot {
            *slot = false;
            self.free_count -= 1;
        }
    }

    /// Mark `line` free.
    pub fn release(&mut self, line: LineAddr) {
        let slot = &mut self.free[line.index() as usize];
        if !*slot {
            *slot = true;
            self.free_count += 1;
        }
    }

    /// Allocate a line, preferring `home` if free, otherwise scanning
    /// outward from it (preserves locality as the sequential tables assume).
    /// Returns `None` when memory is exhausted.
    pub fn allocate(&mut self, home: LineAddr) -> Option<LineAddr> {
        self.allocate_within(home, 0, self.free.len() as u64)
    }

    /// Allocate within the half-open range `[lo, hi)` only, preferring
    /// `home` (which must lie in the range). Used by per-tenant dedup
    /// domains so relocated lines never leave their domain.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, out of bounds, or excludes `home`.
    pub fn allocate_within(&mut self, home: LineAddr, lo: u64, hi: u64) -> Option<LineAddr> {
        assert!(
            lo < hi && hi <= self.free.len() as u64,
            "bad range {lo}..{hi}"
        );
        assert!(
            (lo..hi).contains(&home.index()),
            "home {home} outside range {lo}..{hi}"
        );
        let span = hi - lo;
        let start = home.index();
        for offset in 0..span {
            let idx = lo + ((start - lo) + offset) % span;
            if self.free[idx as usize] {
                self.occupy(LineAddr::new(idx));
                return Some(LineAddr::new(idx));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    // ---- HashTable ----

    #[test]
    fn hash_insert_and_candidates() {
        let mut t = HashTable::new();
        assert!(t.candidates(0xAB).is_empty());
        t.insert(0xAB, l(3));
        assert_eq!(
            t.candidates(0xAB),
            &[HashEntry {
                real: l(3),
                reference: 1
            }]
        );
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn hash_collisions_share_a_bucket() {
        let mut t = HashTable::new();
        t.insert(0xAB, l(1));
        t.insert(0xAB, l(2)); // different content, same digest
        assert_eq!(t.candidates(0xAB).len(), 2);
        assert_eq!(t.collision_buckets(), 1);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn hash_double_insert_rejected() {
        let mut t = HashTable::new();
        t.insert(0xAB, l(1));
        t.insert(0xAB, l(1));
    }

    #[test]
    fn references_count_up_and_down() {
        let mut t = HashTable::new();
        t.insert(7, l(9));
        assert!(t.add_reference(7, l(9)));
        assert_eq!(t.reference(7, l(9)), Some(2));
        assert_eq!(t.release_reference(7, l(9)), 1);
        assert_eq!(t.release_reference(7, l(9)), 0);
        assert!(t.candidates(7).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn references_saturate_at_255() {
        let mut t = HashTable::new();
        t.insert(1, l(0));
        for _ in 0..(MAX_REFERENCE as usize - 1) {
            assert!(t.add_reference(1, l(0)));
        }
        assert_eq!(t.reference(1, l(0)), Some(MAX_REFERENCE));
        // Saturated: further duplicates are rejected and counted.
        assert!(!t.add_reference(1, l(0)));
        assert_eq!(t.saturated_hits(), 1);
        // Saturated entries never decrement (true count unknown).
        assert_eq!(t.release_reference(1, l(0)), MAX_REFERENCE);
        assert_eq!(t.reference(1, l(0)), Some(MAX_REFERENCE));
    }

    #[test]
    fn remove_deletes_regardless_of_reference() {
        let mut t = HashTable::new();
        t.insert(5, l(2));
        t.add_reference(5, l(2));
        t.remove(5, l(2));
        assert!(t.candidates(5).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut t = HashTable::new();
        t.insert(1, l(10));
        t.insert(2, l(20));
        t.insert(2, l(21));
        let mut seen: Vec<(u32, u64)> = t.iter().map(|(d, e)| (d, e.real.index())).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 10), (2, 20), (2, 21)]);
    }

    // ---- AddrMapTable ----

    #[test]
    fn addr_map_defaults_to_identity() {
        let m = AddrMapTable::new();
        assert_eq!(m.resolve(l(4)), l(4));
        assert!(!m.is_mapped(l(4)));
        assert!(m.is_empty());
    }

    #[test]
    fn addr_map_roundtrip() {
        let mut m = AddrMapTable::new();
        m.map_to(l(4), l(9));
        assert_eq!(m.resolve(l(4)), l(9));
        assert!(m.is_mapped(l(4)));
        assert_eq!(m.len(), 1);
        m.unmap(l(4));
        assert_eq!(m.resolve(l(4)), l(4));
    }

    #[test]
    #[should_panic(expected = "identity mappings")]
    fn addr_map_rejects_identity() {
        let mut m = AddrMapTable::new();
        m.map_to(l(4), l(4));
    }

    // ---- InvertedTable ----

    #[test]
    fn inverted_set_get_clear() {
        let mut t = InvertedTable::new();
        assert_eq!(t.digest_of(l(1)), None);
        t.set(l(1), 0xDEAD);
        assert_eq!(t.digest_of(l(1)), Some(0xDEAD));
        assert_eq!(t.len(), 1);
        assert_eq!(t.clear(l(1)), Some(0xDEAD));
        assert!(t.is_empty());
        assert_eq!(t.clear(l(1)), None);
    }

    // ---- FreeSpaceTable ----

    #[test]
    fn fsm_allocates_home_first() {
        let mut f = FreeSpaceTable::new(8);
        assert_eq!(f.free_lines(), 8);
        assert_eq!(f.allocate(l(3)), Some(l(3)));
        assert!(!f.is_free(l(3)));
        assert_eq!(f.free_lines(), 7);
    }

    #[test]
    fn fsm_scans_outward_when_home_taken() {
        let mut f = FreeSpaceTable::new(4);
        f.occupy(l(1));
        assert_eq!(f.allocate(l(1)), Some(l(2)));
    }

    #[test]
    fn fsm_wraps_around() {
        let mut f = FreeSpaceTable::new(4);
        f.occupy(l(3));
        f.occupy(l(0));
        assert_eq!(f.allocate(l(3)), Some(l(1)));
    }

    #[test]
    fn fsm_exhaustion_returns_none() {
        let mut f = FreeSpaceTable::new(2);
        assert!(f.allocate(l(0)).is_some());
        assert!(f.allocate(l(0)).is_some());
        assert_eq!(f.allocate(l(0)), None);
        assert_eq!(f.free_lines(), 0);
    }

    #[test]
    fn fsm_release_and_idempotence() {
        let mut f = FreeSpaceTable::new(2);
        f.occupy(l(0));
        f.occupy(l(0)); // idempotent
        assert_eq!(f.free_lines(), 1);
        f.release(l(0));
        f.release(l(0)); // idempotent
        assert_eq!(f.free_lines(), 2);
    }

    proptest! {
        #[test]
        fn fsm_free_count_is_consistent(ops in proptest::collection::vec((0u64..32, any::<bool>()), 0..200)) {
            let mut f = FreeSpaceTable::new(32);
            for (line, occupy) in ops {
                if occupy { f.occupy(l(line)); } else { f.release(l(line)); }
                let actual = (0..32).filter(|&i| f.is_free(l(i))).count() as u64;
                prop_assert_eq!(actual, f.free_lines());
            }
        }

        #[test]
        fn hash_len_matches_iter(inserts in proptest::collection::vec((0u32..8, 0u64..64), 0..64)) {
            let mut t = HashTable::new();
            let mut present = std::collections::HashSet::new();
            for (digest, real) in inserts {
                if present.insert((digest, real)) {
                    t.insert(digest, l(real));
                }
            }
            prop_assert_eq!(t.len(), t.iter().count());
            prop_assert_eq!(t.len(), present.len());
        }
    }
}
