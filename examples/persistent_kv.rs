//! A tiny persistent key-value store running on the simulated secure NVMM —
//! the kind of downstream system the paper's persistence argument is about.
//!
//! Values are stored line-aligned; each `put` persists through the
//! controller, so duplicate values (common in caches, session stores,
//! materialized defaults) never reach the NVM array under DeWrite.
//!
//! Run with: `cargo run --release --example persistent_kv`

use std::collections::HashMap;

use dewrite::core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
use dewrite::nvm::LineAddr;

/// A line-granular KV store over any [`SecureMemory`].
struct KvStore<M: SecureMemory> {
    mem: M,
    directory: HashMap<String, LineAddr>,
    next_line: u64,
    capacity_lines: u64,
    now_ns: u64,
}

impl<M: SecureMemory> KvStore<M> {
    fn new(mem: M, capacity_lines: u64) -> Self {
        KvStore {
            mem,
            directory: HashMap::new(),
            next_line: 0,
            capacity_lines,
            now_ns: 0,
        }
    }

    /// Store `value` (≤255 bytes) under `key`, durably.
    fn put(&mut self, key: &str, value: &[u8]) -> Result<bool, Box<dyn std::error::Error>> {
        assert!(value.len() < 256, "values are line-sized");
        let addr = match self.directory.get(key) {
            Some(&addr) => addr,
            None => {
                assert!(self.next_line < self.capacity_lines, "store full");
                let addr = LineAddr::new(self.next_line);
                self.next_line += 1;
                self.directory.insert(key.to_string(), addr);
                addr
            }
        };
        // Length-prefixed line encoding.
        let mut line = vec![0u8; 256];
        line[0] = value.len() as u8;
        line[1..=value.len()].copy_from_slice(value);
        let w = self.mem.write(addr, &line, self.now_ns)?;
        self.now_ns += w.total_ns + 50;
        Ok(w.eliminated)
    }

    /// Fetch the value stored under `key`.
    fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, Box<dyn std::error::Error>> {
        let Some(&addr) = self.directory.get(key) else {
            return Ok(None);
        };
        let r = self.mem.read(addr, self.now_ns)?;
        self.now_ns += r.latency_ns + 50;
        let len = r.data[0] as usize;
        Ok(Some(r.data[1..=len].to_vec()))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mem = DeWrite::new(
        SystemConfig::for_lines(4096),
        DeWriteConfig::paper(),
        b"kv example key!!",
    );
    let mut kv = KvStore::new(mem, 4096);

    // A session store: thousands of users, but most sessions carry one of a
    // handful of role/preference blobs.
    let roles = [
        br#"{"role":"viewer","quota":10}"#.as_slice(),
        br#"{"role":"editor","quota":100}"#.as_slice(),
        br#"{"role":"admin","quota":0}"#.as_slice(),
    ];
    let mut eliminated = 0u32;
    for user in 0..3_000u32 {
        let value = roles[(user % 7).min(2) as usize]; // skewed toward viewer
        if kv.put(&format!("session:{user}"), value)? {
            eliminated += 1;
        }
    }
    println!("3000 session puts, {eliminated} NVM writes eliminated by dedup");

    // Point lookups still return exactly what each key stored.
    let v = kv.get("session:42")?.expect("stored");
    assert_eq!(v, roles[0]);
    let v = kv.get("session:8")?.expect("stored");
    assert_eq!(v, roles[1]);
    println!(
        "lookups verified: session:8 -> {}",
        String::from_utf8_lossy(&v)
    );

    // Unique values are stored individually, of course.
    kv.put("config:hostname", b"nvmm-node-17.example.com")?;
    assert_eq!(
        kv.get("config:hostname")?.expect("stored"),
        b"nvmm-node-17.example.com"
    );

    let m = kv.mem.base_metrics();
    println!(
        "\ncontroller: {} writes total, {} eliminated ({:.1}%), {} reads",
        m.writes,
        m.writes_eliminated,
        m.writes_eliminated as f64 / m.writes as f64 * 100.0,
        m.reads
    );
    println!("energy: {}", kv.mem.device().energy());
    Ok(())
}
