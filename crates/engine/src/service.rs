//! A long-running submission service over the shard controllers: the
//! engine surface the network frontend plugs into.
//!
//! [`run`](crate::run) drives one fixed trace through the shards and
//! returns; a served system instead needs an engine that outlives any one
//! client, accepts work from *many* concurrent submitters, and sheds load
//! instead of blocking the caller. [`EngineService`] provides exactly
//! that:
//!
//! * [`EngineService::try_submit`] is **non-blocking**: a full shard queue
//!   hands the request straight back ([`Err`]) so an event loop can park
//!   the connection instead of itself — the back-pressure signal the
//!   in-process producer path never needed.
//! * Completions come back on per-*lane* bounded queues (one lane per
//!   event-loop thread), carrying the submitter's `(conn, conn_seq)`
//!   correlation tags so responses can be re-ordered per connection.
//! * Control operations (scrub / flush-checkpoint / report) ride the same
//!   queues with [`CONTROL_SEQ`], one per shard, and are aggregated by the
//!   caller.
//!
//! # Determinism under concurrent submitters
//!
//! The in-process engine keeps the merged simulated [`RunReport`]
//! bit-identical by feeding each shard its subsequence of the trace in
//! order. A network frontend multiplexing thousands of sockets cannot
//! guarantee arrival order, so the service moves the invariant into the
//! protocol: every data request carries a **per-shard sequence number**
//! (`seq` = the record's index within its shard's subsequence of the
//! trace), and each shard worker holds a bounded reorder buffer, applying
//! requests strictly in `seq` order. Any interleaving of connections,
//! lanes, and scheduling therefore replays each shard's exact trace
//! subsequence — the merged report is a pure function of the trace again,
//! no matter how the records travelled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_queue::ArrayQueue;
use dewrite_core::RunReport;
use dewrite_mem::LatencyHistogram;
use dewrite_nvm::LineAddr;

use crate::engine::{Backoff, EngineConfig, EngineRun, ShardSummary};
use crate::shard::ShardController;

/// The `seq` value marking a control operation: applied at its queue
/// position on arrival instead of passing through the reorder buffer.
pub const CONTROL_SEQ: u64 = u64::MAX;

/// One operation submitted to the service.
#[derive(Debug, Clone)]
pub enum ServiceOp {
    /// Store `data` at `addr` (dedup path).
    Write {
        /// Target line.
        addr: LineAddr,
        /// Line content; must be exactly the configured line size.
        data: Vec<u8>,
        /// Instruction gap since the previous record (simulated time).
        gap: u32,
    },
    /// Read the line at `addr`.
    Read {
        /// Target line.
        addr: LineAddr,
        /// Instruction gap since the previous record (simulated time).
        gap: u32,
    },
    /// Cross-table consistency scrub (control; flushes the WAL first).
    Scrub,
    /// Flush the open WAL epoch and checkpoint (control).
    Flush,
    /// This shard's simulated [`RunReport`] as JSON (control).
    Report,
}

/// A routed request: the operation plus its delivery coordinates.
#[derive(Debug)]
pub struct ServiceRequest {
    /// Owning shard (`addr mod shards` for data operations).
    pub shard: usize,
    /// Position within the shard's subsequence of the trace, or
    /// [`CONTROL_SEQ`] for control operations.
    pub seq: u64,
    /// Completion lane the response should come back on.
    pub lane: usize,
    /// Submitter's connection tag, echoed in the completion.
    pub conn: u64,
    /// Submitter's per-connection sequence tag, echoed in the completion.
    pub conn_seq: u64,
    /// Nanoseconds since service start when the request was accepted
    /// (host-latency accounting; quarantined from the simulated report).
    pub issued_ns: u64,
    /// The operation.
    pub op: ServiceOp,
}

/// What a completed operation produced.
#[derive(Debug)]
pub enum CompletionBody {
    /// A write completed.
    Write {
        /// Whether the NVM array write was eliminated (confirmed dup).
        eliminated: bool,
        /// Simulated write latency, ns.
        sim_ns: u64,
    },
    /// A read completed.
    Read {
        /// Simulated read latency, ns.
        sim_ns: u64,
    },
    /// Scrub outcome: resident lines checked.
    Scrub(Result<u64, String>),
    /// Flush + checkpoint outcome.
    Flush(Result<(), String>),
    /// This shard's report as a JSON string.
    Report(String),
    /// The request was not applied (reorder-window overflow, a sequence
    /// gap at shutdown, or a malformed submission).
    Rejected(String),
}

/// One completion, tagged for response routing.
#[derive(Debug)]
pub struct Completion {
    /// Shard that produced it (aggregation key for control broadcasts).
    pub shard: usize,
    /// Echo of [`ServiceRequest::conn`].
    pub conn: u64,
    /// Echo of [`ServiceRequest::conn_seq`].
    pub conn_seq: u64,
    /// The result.
    pub body: CompletionBody,
}

/// How many out-of-order requests a shard worker will hold before
/// rejecting new ones, as a multiple of the queue depth.
const REORDER_WINDOW_FACTOR: usize = 4;

/// The long-running sharded engine service. See the module docs.
#[derive(Debug)]
pub struct EngineService {
    queues: Vec<Arc<ArrayQueue<ServiceRequest>>>,
    lanes: Vec<Arc<ArrayQueue<Completion>>>,
    stop: Arc<AtomicBool>,
    hard: Arc<AtomicBool>,
    workers: Vec<JoinHandle<ShardSummary>>,
    start: Instant,
    shards: usize,
}

impl EngineService {
    /// Start one worker thread per shard, plus `lanes` bounded completion
    /// queues of `lane_capacity` entries each.
    ///
    /// # Panics
    ///
    /// Panics on an invalid config: zero shards/lanes/capacities, or a
    /// non-zero coalescing window (the service path needs an immediate
    /// completion per operation).
    pub fn start(config: &EngineConfig, app: &str, lanes: usize, lane_capacity: usize) -> Self {
        let shards = config.shards;
        assert!(shards > 0, "need at least one shard");
        assert!(lanes > 0, "need at least one completion lane");
        assert!(config.queue_depth > 0, "queues must hold a request");
        assert!(config.batch > 0, "workers must drain a request");
        assert!(lane_capacity > 0, "completion lanes must hold an entry");
        assert_eq!(
            config.coalesce, 0,
            "the service path requires per-operation completions; \
             coalescing parks writes without one"
        );

        let queues: Vec<Arc<ArrayQueue<ServiceRequest>>> = (0..shards)
            .map(|_| Arc::new(ArrayQueue::new(config.queue_depth)))
            .collect();
        let lane_queues: Vec<Arc<ArrayQueue<Completion>>> = (0..lanes)
            .map(|_| Arc::new(ArrayQueue::new(lane_capacity)))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let hard = Arc::new(AtomicBool::new(false));
        let start = Instant::now();

        let workers = (0..shards)
            .map(|id| {
                let queue = Arc::clone(&queues[id]);
                let lanes: Vec<Arc<ArrayQueue<Completion>>> =
                    lane_queues.iter().map(Arc::clone).collect();
                let stop = Arc::clone(&stop);
                let hard = Arc::clone(&hard);
                let mut ctrl = ShardController::new(
                    id,
                    shards,
                    config.slots_per_shard,
                    config.line_size,
                    &config.key,
                );
                ctrl.set_fsm_policy(config.fsm);
                ctrl.set_cache_policy(config.cache_policy);
                ctrl.set_digest_mode(config.digest_mode);
                if let Some(root) = &config.persist_dir {
                    let opts = dewrite_persist::DurableOptions {
                        epoch_writes: config.persist_epoch,
                        checkpoint_epochs: 8,
                        sync: config.persist_sync,
                    };
                    ctrl.attach_persistence(&root.join(format!("shard-{id:02}")), opts)
                        .expect("attach shard metadata persistence");
                }
                let app = app.to_string();
                let batch = config.batch;
                let reorder_cap = config.queue_depth * REORDER_WINDOW_FACTOR;
                std::thread::spawn(move || {
                    worker(
                        id,
                        ctrl,
                        &app,
                        &queue,
                        &lanes,
                        &stop,
                        &hard,
                        batch,
                        reorder_cap,
                        start,
                    )
                })
            })
            .collect();

        EngineService {
            queues,
            lanes: lane_queues,
            stop,
            hard,
            workers,
            start,
            shards,
        }
    }

    /// Number of shards (and of control completions per broadcast).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of completion lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Nanoseconds since the service started (issue-stamp clock).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Submit without blocking. A full shard queue returns the request
    /// back as `Err` — the caller's back-pressure signal: hold the
    /// request, stop reading that submitter, retry on the next sweep.
    ///
    /// # Errors
    ///
    /// Returns `Err(request)` when shard `request.shard`'s queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `request.shard` or `request.lane` is out of range.
    pub fn try_submit(&self, request: ServiceRequest) -> Result<(), ServiceRequest> {
        assert!(request.shard < self.shards, "shard out of range");
        assert!(request.lane < self.lanes.len(), "lane out of range");
        self.queues[request.shard].push(request)
    }

    /// Pop one completion from `lane`, if any is ready.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn try_complete(&self, lane: usize) -> Option<Completion> {
        self.lanes[lane].pop()
    }

    #[cfg(test)]
    fn lane_arc(&self, lane: usize) -> Arc<ArrayQueue<Completion>> {
        Arc::clone(&self.lanes[lane])
    }

    /// Graceful shutdown: drain every shard queue, flush parked writes,
    /// flush the open WAL epoch, checkpoint, and sync the stores (when
    /// persistence is attached), then fold the per-shard reports in shard
    /// order — the same deterministic merge as [`run`](crate::run).
    ///
    /// The caller must have collected all outstanding completions first;
    /// any left in the lanes are dropped with the service.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn shutdown(self) -> EngineRun {
        self.stop.store(true, Ordering::Release);
        let mut summaries: Vec<ShardSummary> = self
            .workers
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        let wall_ns = self.start.elapsed().as_nanos() as u64;
        summaries.sort_by_key(|s| s.shard);
        let merged =
            RunReport::merge_all(summaries.iter().map(|s| &s.report)).expect("at least one shard");
        let ops = summaries.iter().map(|s| s.ops).sum();
        EngineRun {
            merged,
            shards: summaries,
            wall_ns,
            ops,
        }
    }

    /// Hard abort: workers stop at the next batch boundary **without**
    /// flushing parked writes, the open WAL epoch, or a checkpoint — the
    /// crash-recovery path's "kill" switch. On-disk state is whatever the
    /// epoch log had already flushed.
    pub fn abort(self) {
        self.hard.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        for h in self.workers {
            let _ = h.join();
        }
    }
}

/// Push `completion` onto its lane, parking while the lane is full.
/// Returns `false` when a hard abort interrupted the wait.
fn emit(
    lanes: &[Arc<ArrayQueue<Completion>>],
    hard: &AtomicBool,
    mut completion: Completion,
    lane: usize,
) -> bool {
    let mut parker = Backoff::new();
    loop {
        if hard.load(Ordering::Acquire) {
            return false;
        }
        match lanes[lane].push(completion) {
            Ok(()) => return true,
            Err(back) => {
                completion = back;
                parker.wait();
            }
        }
    }
}

/// Apply one in-order data operation.
fn apply_data(ctrl: &mut ShardController, op: ServiceOp) -> CompletionBody {
    match op {
        ServiceOp::Write { addr, data, gap } => {
            let w = ctrl
                .submit_write(addr, &data, gap)
                .expect("service runs without coalescing");
            CompletionBody::Write {
                eliminated: w.eliminated,
                sim_ns: w.sim_ns,
            }
        }
        ServiceOp::Read { addr, gap } => CompletionBody::Read {
            sim_ns: ctrl.read(addr, gap),
        },
        ServiceOp::Scrub | ServiceOp::Flush | ServiceOp::Report => {
            CompletionBody::Rejected("control operation carried a data sequence number".into())
        }
    }
}

/// Apply one control operation at its queue position.
fn apply_control(ctrl: &mut ShardController, app: &str, op: &ServiceOp) -> CompletionBody {
    match op {
        ServiceOp::Scrub => {
            ctrl.flush_writes();
            match ctrl.flush_wal() {
                Err(e) => CompletionBody::Scrub(Err(format!("wal flush before scrub: {e}"))),
                Ok(()) => CompletionBody::Scrub(ctrl.scrub()),
            }
        }
        ServiceOp::Flush => {
            ctrl.flush_writes();
            CompletionBody::Flush(ctrl.persist_checkpoint().map_err(|e| e.to_string()))
        }
        ServiceOp::Report => {
            ctrl.flush_writes();
            CompletionBody::Report(ctrl.report(app).to_json().to_string())
        }
        ServiceOp::Write { .. } | ServiceOp::Read { .. } => {
            CompletionBody::Rejected("data operation carried the control sequence number".into())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker(
    id: usize,
    mut ctrl: ShardController,
    app: &str,
    queue: &ArrayQueue<ServiceRequest>,
    lanes: &[Arc<ArrayQueue<Completion>>],
    stop: &AtomicBool,
    hard: &AtomicBool,
    batch: usize,
    reorder_cap: usize,
    start: Instant,
) -> ShardSummary {
    let mut host = LatencyHistogram::new();
    let mut reorder: BTreeMap<u64, ServiceRequest> = BTreeMap::new();
    let mut next_seq = 0u64;
    let mut peak = 0usize;
    let mut depth_sum = 0u64;
    let mut samples = 0u64;
    let mut parker = Backoff::new();
    let mut buf: Vec<ServiceRequest> = Vec::with_capacity(batch);
    let mut aborted = false;

    'outer: loop {
        if hard.load(Ordering::Acquire) {
            aborted = true;
            break;
        }
        let n = queue.pop_batch(&mut buf, batch);
        if n == 0 {
            if stop.load(Ordering::Acquire) && queue.is_empty() {
                break;
            }
            parker.wait();
            continue;
        }
        parker.reset();
        let residual = queue.len();
        peak = peak.max((residual + n).min(queue.capacity()));
        depth_sum += residual as u64;
        samples += 1;
        for req in buf.drain(..) {
            let (lane, conn, conn_seq) = (req.lane, req.conn, req.conn_seq);
            let body = if req.seq == CONTROL_SEQ {
                apply_control(&mut ctrl, app, &req.op)
            } else if req.seq < next_seq {
                CompletionBody::Rejected(format!(
                    "duplicate sequence {} (shard already at {next_seq})",
                    req.seq
                ))
            } else if req.seq > next_seq && reorder.len() >= reorder_cap {
                CompletionBody::Rejected(format!(
                    "reorder window overflow holding {} requests waiting for sequence {next_seq}",
                    reorder.len()
                ))
            } else {
                // In order or buffered: apply every request that is now
                // ready, strictly in per-shard sequence order.
                if let Some(old) = reorder.insert(req.seq, req) {
                    let done = Completion {
                        shard: id,
                        conn: old.conn,
                        conn_seq: old.conn_seq,
                        body: CompletionBody::Rejected(format!(
                            "sequence {} resubmitted before it applied",
                            old.seq
                        )),
                    };
                    if !emit(lanes, hard, done, old.lane) {
                        aborted = true;
                        break 'outer;
                    }
                }
                while let Some(ready) = reorder.remove(&next_seq) {
                    next_seq += 1;
                    let (lane, conn, conn_seq) = (ready.lane, ready.conn, ready.conn_seq);
                    let issued = ready.issued_ns;
                    let body = apply_data(&mut ctrl, ready.op);
                    let now = start.elapsed().as_nanos() as u64;
                    host.record(now.saturating_sub(issued));
                    let done = Completion {
                        shard: id,
                        conn,
                        conn_seq,
                        body,
                    };
                    if !emit(lanes, hard, done, lane) {
                        aborted = true;
                        break 'outer;
                    }
                }
                continue;
            };
            let done = Completion {
                shard: id,
                conn,
                conn_seq,
                body,
            };
            if !emit(lanes, hard, done, lane) {
                aborted = true;
                break 'outer;
            }
        }
    }

    if !aborted {
        // A populated reorder buffer at graceful shutdown is a submitter
        // that left a sequence gap; its requests can never legally apply.
        for (_, req) in std::mem::take(&mut reorder) {
            let done = Completion {
                shard: id,
                conn: req.conn,
                conn_seq: req.conn_seq,
                body: CompletionBody::Rejected(format!(
                    "sequence gap at shutdown: shard waited for {next_seq}, held {}",
                    req.seq
                )),
            };
            if !emit(lanes, hard, done, req.lane) {
                break;
            }
        }
        ctrl.flush_writes();
        // End-of-service durability point: flush the open WAL epoch,
        // checkpoint, and force the store to stable storage even when the
        // run logged with `sync: false`.
        ctrl.persist_shutdown()
            .expect("shard metadata checkpoint at shutdown");
    }

    ShardSummary {
        shard: id,
        fsm: ctrl.fsm_stats(),
        cache: ctrl.cache_stats(),
        ops: ctrl.ops(),
        dedup_rate: ctrl.dedup_rate(),
        report: ctrl.report(app),
        host_latency: host,
        queue_depth_peak: peak,
        queue_depth_mean: if samples == 0 {
            0.0
        } else {
            depth_sum as f64 / samples as f64
        },
        producer_stall_ns: 0,
        scrub: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use dewrite_trace::{app_by_name, shard_of_line, TraceGenerator, TraceOp, TraceRecord};

    fn trace(ops: usize, ws_lines: u64, seed: u64) -> (Vec<TraceRecord>, u64) {
        let mut profile = app_by_name("mcf").expect("known app");
        profile.working_set_lines = ws_lines;
        profile.content_pool_size = 64;
        let mut gen = TraceGenerator::new(profile, 256, seed);
        let lines = gen.required_lines();
        let mut records = gen.warmup_records();
        records.extend(gen.by_ref().take(ops));
        (records, lines)
    }

    /// Feed `records` through the service as one submitter, in an order
    /// perturbed by `rotate` (simulating cross-connection interleaving),
    /// stamping correct per-shard sequence numbers.
    fn drive(config: &EngineConfig, records: &[TraceRecord], rotate: usize) -> EngineRun {
        let svc = EngineService::start(config, "mcf", 1, 1024);
        let shards = svc.shards();
        let mut seqs = vec![0u64; shards];
        let mut reqs: Vec<ServiceRequest> = records
            .iter()
            .map(|rec| {
                let shard = shard_of_line(rec.op.addr(), shards);
                let seq = seqs[shard];
                seqs[shard] += 1;
                let op = match &rec.op {
                    TraceOp::Write { addr, data } => ServiceOp::Write {
                        addr: *addr,
                        data: data.clone(),
                        gap: rec.gap_instructions,
                    },
                    TraceOp::Read { addr } => ServiceOp::Read {
                        addr: *addr,
                        gap: rec.gap_instructions,
                    },
                };
                ServiceRequest {
                    shard,
                    seq,
                    lane: 0,
                    conn: 1,
                    conn_seq: 0,
                    issued_ns: 0,
                    op,
                }
            })
            .collect();
        // Perturb global submission order in bounded windows; per-shard
        // seq numbers let the workers reassemble the exact subsequence.
        // (Windows must stay well under the reorder capacity.)
        if rotate > 1 {
            for window in reqs.chunks_mut(rotate) {
                window.rotate_left(1);
            }
        }
        let total = reqs.len() as u64;
        let mut pending = 0u64;
        let mut completed = 0u64;
        let mut it = reqs.into_iter();
        let mut held: Option<ServiceRequest> = None;
        while completed < total {
            if held.is_none() {
                held = it.next();
            }
            if let Some(req) = held.take() {
                if let Err(back) = svc.try_submit(req) {
                    held = Some(back);
                } else {
                    pending += 1;
                }
            }
            while let Some(c) = svc.try_complete(0) {
                match c.body {
                    CompletionBody::Write { .. } | CompletionBody::Read { .. } => {}
                    other => panic!("unexpected completion {other:?}"),
                }
                completed += 1;
                pending -= 1;
            }
        }
        assert_eq!(pending, 0);
        svc.shutdown()
    }

    #[test]
    fn service_merge_matches_in_process_run() {
        let (records, lines) = trace(2_000, 512, 7);
        let config = EngineConfig::for_workload(4, 256, lines, records.len() as u64);
        let baseline = run(&config, "mcf", records.clone());
        for rotate in [1, 7] {
            let served = drive(&config, &records, rotate);
            assert_eq!(served.ops, baseline.ops);
            assert_eq!(
                baseline.merged.to_json().to_string(),
                served.merged.to_json().to_string(),
                "rotate {rotate}: out-of-order submission changed the merged report"
            );
        }
    }

    #[test]
    fn control_ops_broadcast_and_aggregate() {
        let (records, lines) = trace(800, 256, 9);
        let config = EngineConfig::for_workload(2, 256, lines, records.len() as u64);
        let baseline = run(&config, "mcf", records.clone());

        let svc = EngineService::start(&config, "mcf", 1, 1024);
        let shards = svc.shards();
        let mut seqs = vec![0u64; shards];
        let mut outstanding = 0u64;
        for rec in &records {
            let shard = shard_of_line(rec.op.addr(), shards);
            let op = match &rec.op {
                TraceOp::Write { addr, data } => ServiceOp::Write {
                    addr: *addr,
                    data: data.clone(),
                    gap: rec.gap_instructions,
                },
                TraceOp::Read { addr } => ServiceOp::Read {
                    addr: *addr,
                    gap: rec.gap_instructions,
                },
            };
            let mut req = ServiceRequest {
                shard,
                seq: seqs[shard],
                lane: 0,
                conn: 0,
                conn_seq: 0,
                issued_ns: svc.elapsed_ns(),
                op,
            };
            seqs[shard] += 1;
            loop {
                match svc.try_submit(req) {
                    Ok(()) => break,
                    Err(back) => req = back,
                }
                while svc.try_complete(0).is_some() {
                    outstanding -= 1;
                }
            }
            outstanding += 1;
        }
        while outstanding > 0 {
            if svc.try_complete(0).is_some() {
                outstanding -= 1;
            }
        }

        // Broadcast scrub + report, one control request per shard.
        for op in [ServiceOp::Scrub, ServiceOp::Report] {
            for shard in 0..shards {
                let mut req = ServiceRequest {
                    shard,
                    seq: CONTROL_SEQ,
                    lane: 0,
                    conn: 0,
                    conn_seq: 1,
                    issued_ns: svc.elapsed_ns(),
                    op: op.clone(),
                };
                while let Err(back) = svc.try_submit(req) {
                    req = back;
                }
            }
            let mut reports: Vec<Option<String>> = vec![None; shards];
            let mut seen = 0;
            while seen < shards {
                let Some(c) = svc.try_complete(0) else {
                    continue;
                };
                seen += 1;
                match c.body {
                    CompletionBody::Scrub(Ok(n)) => assert!(n > 0, "shard {} scrub", c.shard),
                    CompletionBody::Report(json) => reports[c.shard] = Some(json),
                    other => panic!("unexpected control completion {other:?}"),
                }
            }
            if matches!(op, ServiceOp::Report) {
                let served: Vec<String> = reports.into_iter().map(Option::unwrap).collect();
                let local: Vec<String> = baseline
                    .shards
                    .iter()
                    .map(|s| s.report.to_json().to_string())
                    .collect();
                assert_eq!(served, local, "per-shard reports must match in-process");
            }
        }
        let run = svc.shutdown();
        assert_eq!(
            run.merged.to_json().to_string(),
            baseline.merged.to_json().to_string()
        );
    }

    #[test]
    fn sequence_gap_is_rejected_at_shutdown_and_overflow_sheds() {
        let (records, lines) = trace(200, 128, 3);
        let mut config = EngineConfig::for_workload(1, 256, lines, records.len() as u64);
        config.queue_depth = 8;
        let svc = EngineService::start(&config, "mcf", 1, 1024);
        // Sequence 5 with 0..5 never submitted: parked, then rejected at
        // graceful shutdown.
        let rec = records
            .iter()
            .find(|r| r.op.is_write())
            .expect("trace has writes");
        let TraceOp::Write { data, .. } = &rec.op else {
            unreachable!()
        };
        let req = ServiceRequest {
            shard: 0,
            seq: 5,
            lane: 0,
            conn: 9,
            conn_seq: 42,
            issued_ns: 0,
            op: ServiceOp::Write {
                addr: rec.op.addr(),
                data: data.clone(),
                gap: 0,
            },
        };
        svc.try_submit(req).expect("queue has room");
        // Give the worker time to park it. The rejection is emitted during
        // shutdown's drain, so poll the lane from a side thread.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let lane = svc.lane_arc(0);
        let poller = std::thread::spawn(move || {
            for _ in 0..5_000 {
                if let Some(c) = lane.pop() {
                    return Some(c);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            None
        });
        let run = svc.shutdown();
        assert_eq!(run.ops, 0, "the gapped request must never apply");
        let c = poller
            .join()
            .expect("poller panicked")
            .expect("gap rejection arrives during the shutdown drain");
        assert_eq!((c.conn, c.conn_seq), (9, 42));
        assert!(
            matches!(c.body, CompletionBody::Rejected(ref m) if m.contains("sequence gap")),
            "got {:?}",
            c.body
        );
    }
}
