//! Latency experiments: Table I, Fig. 14 (write speedup), Fig. 15 (write
//! latency by mode), Fig. 16 (read speedup), Fig. 18 (worst case).

use dewrite_core::WriteMode;
use dewrite_hashes::HashAlgorithm;
use dewrite_trace::{all_apps, app_by_name, worst_case};

use crate::experiments::{mean, Ctx};
use crate::runner::{par_map_apps, run_scheme, SchemeKind, Workload};
use crate::table::{bar, f3, Table};

/// Table I: hash costs and duplication-detection latency, traditional
/// (SHA-1, trusted fingerprint) vs DeWrite (CRC-32 + confirm read).
pub fn tab1(ctx: &mut Ctx) {
    let mut a = Table::new(
        "Table I(a) — hash computation latency and digest size",
        &["hash", "latency (ns)", "size (bits)"],
    );
    for alg in [
        HashAlgorithm::Sha1,
        HashAlgorithm::Md5,
        HashAlgorithm::Crc32,
    ] {
        let c = alg.cost();
        a.row(vec![
            alg.to_string(),
            c.latency_ns.to_string(),
            c.digest_bits.to_string(),
        ]);
    }
    ctx.emit(&a, "tab1a");

    // Measure detection latencies on a duplicate-heavy workload so both
    // schemes face warm caches and real dup/non-dup mixes.
    let profile = app_by_name("mcf").expect("known app");
    let w = Workload::generate(&profile, ctx.scale, 42);

    let dewrite = run_scheme(SchemeKind::DeWrite, &w);
    let traditional = run_scheme(SchemeKind::Traditional(HashAlgorithm::Sha1), &w);

    // Duplicate-path latency ≈ mean critical latency of eliminated writes,
    // non-duplicate ≈ detection part of stored writes. We report the mean
    // critical-path latency for each scheme as measured.
    let mut b = Table::new(
        "Table I(b) — detection/critical latency (measured; paper: trad ≥312+tQ, DeWrite 91/15+tQ')",
        &["scheme", "mean critical (ns)", "mean write latency (ns)", "write reduction"],
    );
    for (name, r) in [
        ("traditional SHA-1 dedup", &traditional),
        ("DeWrite", &dewrite),
    ] {
        b.row(vec![
            name.into(),
            f3(r.write_critical.mean_ns()),
            f3(r.write_latency.mean_ns()),
            crate::table::pct(r.write_reduction()),
        ]);
    }
    ctx.emit(&b, "tab1b");
}

/// Fig. 14: memory-write speedup of DeWrite over the traditional secure
/// NVM (paper: avg 4.2×, up to 8× for cactusADM/lbm).
pub fn fig14(ctx: &mut Ctx) {
    let mut t = Table::new(
        "Fig. 14 — write speedup vs traditional secure NVM (paper: avg 4.2x)",
        &[
            "app",
            "baseline write (ns)",
            "dewrite write (ns)",
            "speedup",
            "",
        ],
    );
    let comparisons = ctx.comparisons().to_vec();
    let max = comparisons
        .iter()
        .map(|c| c.dewrite.write_speedup_vs(&c.baseline))
        .fold(1.0f64, f64::max);
    let mut speedups = Vec::new();
    for c in comparisons {
        let s = c.dewrite.write_speedup_vs(&c.baseline);
        speedups.push(s);
        t.row(vec![
            c.app.clone(),
            f3(c.baseline.write_latency.mean_ns()),
            f3(c.dewrite.write_latency.mean_ns()),
            format!("{s:.2}x"),
            bar(s, max, 25),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        format!("{:.2}x", mean(speedups)),
        String::new(),
    ]);
    ctx.emit(&t, "fig14");
}

/// Fig. 15: write latency of the direct way, the parallel way, and DeWrite
/// (predictive), normalized to direct (paper: DeWrite ≈ parallel, −27% vs
/// direct on average).
pub fn fig15(ctx: &mut Ctx) {
    let apps = all_apps();
    let scale = ctx.scale;
    let rows = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let direct = run_scheme(SchemeKind::DeWriteMode(WriteMode::Direct), &w);
        let parallel = run_scheme(SchemeKind::DeWriteMode(WriteMode::Parallel), &w);
        let predictive = run_scheme(SchemeKind::DeWrite, &w);
        let d = direct.write_critical.mean_ns();
        (
            profile.name.to_string(),
            1.0,
            parallel.write_critical.mean_ns() / d,
            predictive.write_critical.mean_ns() / d,
        )
    });

    let mut t = Table::new(
        "Fig. 15 — write (critical) latency normalized to the direct way (paper: DeWrite ≈ parallel, −27% vs direct)",
        &["app", "direct", "parallel", "DeWrite"],
    );
    for (name, d, p, dw) in &rows {
        t.row(vec![name.clone(), f3(*d), f3(*p), f3(*dw)]);
    }
    t.row(vec![
        "AVERAGE".into(),
        f3(1.0),
        f3(mean(rows.iter().map(|r| r.2))),
        f3(mean(rows.iter().map(|r| r.3))),
    ]);
    ctx.emit(&t, "fig15");
}

/// Fig. 16: memory-read speedup (paper: avg 3.1×).
pub fn fig16(ctx: &mut Ctx) {
    let mut t = Table::new(
        "Fig. 16 — read speedup vs traditional secure NVM (paper: avg 3.1x)",
        &["app", "baseline read (ns)", "dewrite read (ns)", "speedup"],
    );
    let mut speedups = Vec::new();
    for c in ctx.comparisons().to_vec() {
        let s = c.dewrite.read_speedup_vs(&c.baseline);
        speedups.push(s);
        t.row(vec![
            c.app.clone(),
            f3(c.baseline.read_latency.mean_ns()),
            f3(c.dewrite.read_latency.mean_ns()),
            format!("{s:.2}x"),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        format!("{:.2}x", mean(speedups)),
    ]);
    ctx.emit(&t, "fig16");
}

/// Fig. 18: the worst case — a benchmark with zero duplicate writes
/// (paper: <3% IPC degradation, slight write/read latency increase).
pub fn fig18(ctx: &mut Ctx) {
    let profile = worst_case();
    let w = Workload::generate(&profile, ctx.scale, 7);
    let dewrite = run_scheme(SchemeKind::DeWrite, &w);
    let baseline = run_scheme(SchemeKind::Baseline, &w);

    let mut t = Table::new(
        "Fig. 18 — worst case (no duplicates), DeWrite normalized to traditional secure NVM (paper: <3% IPC loss)",
        &["metric", "baseline", "DeWrite", "normalized"],
    );
    t.row(vec![
        "write latency (ns)".into(),
        f3(baseline.write_latency.mean_ns()),
        f3(dewrite.write_latency.mean_ns()),
        f3(dewrite.write_latency.mean_ns() / baseline.write_latency.mean_ns()),
    ]);
    t.row(vec![
        "read latency (ns)".into(),
        f3(baseline.read_latency.mean_ns()),
        f3(dewrite.read_latency.mean_ns()),
        f3(dewrite.read_latency.mean_ns() / baseline.read_latency.mean_ns()),
    ]);
    t.row(vec![
        "IPC".into(),
        f3(baseline.ipc),
        f3(dewrite.ipc),
        f3(dewrite.ipc / baseline.ipc),
    ]);
    let dm = dewrite.dewrite.expect("dewrite metrics");
    t.row(vec![
        "write reduction".into(),
        crate::table::pct(baseline.write_reduction()),
        crate::table::pct(dewrite.write_reduction()),
        format!("pna skips: {}", dm.pna_skips),
    ]);
    ctx.emit(&t, "fig18");
}
