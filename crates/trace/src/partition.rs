//! Partitioned workload feeds for sharded (multi-controller) execution.
//!
//! The engine partitions the physical line space across N controller
//! shards by **address interleaving**: line `a` belongs to shard
//! `a mod N`. Interleaving (rather than contiguous slicing) spreads the
//! generators' sequential-address bursts evenly across shards, so a
//! closed-loop client keeps every shard busy.
//!
//! [`partition_records`] splits one trace into N per-shard feeds while
//! preserving each shard's relative operation order — the property that
//! makes sharded runs deterministic: shard `s`'s controller state is a
//! pure function of feed `s`, independent of thread scheduling.

use dewrite_nvm::LineAddr;

use crate::record::TraceRecord;

/// The shard that owns `addr` under `shards`-way address interleaving.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn shard_of_line(addr: LineAddr, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be non-zero");
    (addr.index() % shards as u64) as usize
}

/// Split `records` into `shards` per-shard feeds, routing every record by
/// [`shard_of_line`] on its target address and preserving relative order
/// within each feed.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn partition_records(records: &[TraceRecord], shards: usize) -> Vec<Vec<TraceRecord>> {
    assert!(shards > 0, "shard count must be non-zero");
    let mut feeds: Vec<Vec<TraceRecord>> = vec![Vec::new(); shards];
    // Pre-size: an even split is the common case under interleaving.
    let hint = records.len() / shards + 1;
    for feed in &mut feeds {
        feed.reserve(hint);
    }
    for rec in records {
        feeds[shard_of_line(rec.op.addr(), shards)].push(rec.clone());
    }
    feeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceOp;

    fn rec(addr: u64) -> TraceRecord {
        TraceRecord {
            gap_instructions: addr as u32,
            op: if addr.is_multiple_of(3) {
                TraceOp::Read {
                    addr: LineAddr::new(addr),
                }
            } else {
                TraceOp::Write {
                    addr: LineAddr::new(addr),
                    data: vec![addr as u8; 16],
                }
            },
        }
    }

    #[test]
    fn routing_is_address_interleaved() {
        assert_eq!(shard_of_line(LineAddr::new(0), 4), 0);
        assert_eq!(shard_of_line(LineAddr::new(7), 4), 3);
        assert_eq!(shard_of_line(LineAddr::new(8), 4), 0);
        assert_eq!(shard_of_line(LineAddr::new(5), 1), 0);
    }

    #[test]
    fn feeds_preserve_order_and_lose_nothing() {
        let trace: Vec<TraceRecord> = [5u64, 0, 1, 9, 4, 13, 2, 8, 0, 5].map(rec).to_vec();
        let feeds = partition_records(&trace, 4);
        assert_eq!(feeds.iter().map(Vec::len).sum::<usize>(), trace.len());
        for (s, feed) in feeds.iter().enumerate() {
            // Every record landed on its owner...
            assert!(feed.iter().all(|r| shard_of_line(r.op.addr(), 4) == s));
            // ...in original relative order.
            let expect: Vec<&TraceRecord> = trace
                .iter()
                .filter(|r| shard_of_line(r.op.addr(), 4) == s)
                .collect();
            assert_eq!(feed.iter().collect::<Vec<_>>(), expect);
        }
    }

    #[test]
    fn single_shard_is_the_identity() {
        let trace: Vec<TraceRecord> = (0..10u64).map(rec).collect();
        let feeds = partition_records(&trace, 1);
        assert_eq!(feeds.len(), 1);
        assert_eq!(feeds[0], trace);
    }
}
