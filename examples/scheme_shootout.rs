//! Scheme shootout: run the same workload through every secure-NVMM design
//! in the crate — traditional CME, SHA-1 in-line dedup, and DeWrite in all
//! three write modes — and print a comparison table.
//!
//! Run with: `cargo run --release --example scheme_shootout [app]`
//! (default app: `mcf`).

use dewrite::core::{
    CmeBaseline, DeWrite, DeWriteConfig, RunReport, SecureMemory, SilentShredder, Simulator,
    SystemConfig, TraditionalDedup, WriteMode,
};
use dewrite::hashes::HashAlgorithm;
use dewrite::trace::{app_by_name, TraceGenerator, TraceRecord};

const KEY: &[u8; 16] = b"shootout key 16!";

fn run(
    mem: &mut dyn SecureMemory,
    sim: &Simulator,
    app: &str,
    warmup: &[TraceRecord],
    trace: &[TraceRecord],
) -> RunReport {
    sim.run(mem, app, warmup, trace.iter().cloned())
        .expect("trace fits the configuration")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = std::env::args().nth(1).unwrap_or_else(|| "mcf".into());
    let mut profile = app_by_name(&app).ok_or_else(|| format!("unknown application {app:?}"))?;
    profile.working_set_lines = 1 << 13;
    profile.content_pool_size = 512;

    let mut gen = TraceGenerator::new(profile.clone(), 256, 7);
    let warmup = gen.warmup_records();
    let trace: Vec<_> = gen.by_ref().take(25_000).collect();
    let config =
        SystemConfig::for_lines(profile.working_set_lines + profile.content_pool_size as u64 + 64);
    let sim = Simulator::new(&config);

    let mut reports = Vec::new();

    let mut baseline = CmeBaseline::new(config.clone(), KEY);
    reports.push(run(&mut baseline, &sim, &app, &warmup, &trace));

    let mut shredder = SilentShredder::new(config.clone(), KEY);
    reports.push(run(&mut shredder, &sim, &app, &warmup, &trace));

    let mut trad = TraditionalDedup::new(config.clone(), HashAlgorithm::Sha1, KEY);
    reports.push(run(&mut trad, &sim, &app, &warmup, &trace));

    for mode in [
        WriteMode::Direct,
        WriteMode::Parallel,
        WriteMode::Predictive,
    ] {
        let mut dw_cfg = DeWriteConfig::paper();
        dw_cfg.mode = mode;
        let mut dw = DeWrite::new(config.clone(), dw_cfg, KEY);
        reports.push(run(&mut dw, &sim, &app, &warmup, &trace));
    }

    println!(
        "workload: {} — {:.0}% duplicate lines\n",
        profile.name,
        profile.dup_ratio * 100.0
    );
    println!(
        "{:<36} {:>10} {:>10} {:>8} {:>9} {:>12}",
        "scheme", "write(ns)", "read(ns)", "IPC", "reduced", "energy(µJ)"
    );
    let base_energy = reports[0].energy.total_pj() as f64;
    for r in &reports {
        println!(
            "{:<36} {:>10.0} {:>10.0} {:>8.3} {:>8.1}% {:>9.2} ({:>4.2}x)",
            r.scheme,
            r.write_latency.mean_ns(),
            r.read_latency.mean_ns(),
            r.ipc,
            r.write_reduction() * 100.0,
            r.energy.total_pj() as f64 / 1e6,
            r.energy.total_pj() as f64 / base_energy,
        );
    }
    println!("\n(relative to the first row — the traditional secure NVM)");
    Ok(())
}
