//! Synthetic trace generation calibrated to an [`AppProfile`].
//!
//! The generator models the statistics the paper's results depend on:
//!
//! * a two-state Markov chain over the duplicate/non-duplicate write state,
//!   parameterized so its stationary distribution matches the app's
//!   duplication ratio and its persistence matches Fig. 4's ≈92%;
//! * a Zipf-skewed pool of recurring contents (plus the zero line), so
//!   reference counts are heavy-tailed as in Fig. 7;
//! * unique, never-repeating contents for non-duplicate writes;
//! * a mixture of sequential and uniform address selection over the
//!   working set, and instruction gaps matching the write density.

use std::collections::VecDeque;

use dewrite_nvm::LineAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::AppProfile;
use crate::record::{TraceOp, TraceRecord};
use crate::zipf::Zipf;

/// Fraction of write addresses chosen sequentially (vs uniformly).
const SEQUENTIAL_FRACTION: f64 = 0.7;
/// Zipf exponent over the duplicate-content pool.
const POOL_ZIPF_ALPHA: f64 = 1.1;

/// A deterministic, seeded workload generator for one application.
///
/// ```
/// use dewrite_trace::{app_by_name, TraceGenerator};
///
/// let profile = app_by_name("cactusADM").expect("known app");
/// let mut gen = TraceGenerator::new(profile, 256, 42);
/// let warmup = gen.warmup_records();
/// assert!(!warmup.is_empty());
/// let trace: Vec<_> = gen.by_ref().take(100).collect();
/// assert_eq!(trace.iter().filter(|r| r.op.is_write()).count() +
///            trace.iter().filter(|r| !r.op.is_write()).count(), 100);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    profile: AppProfile,
    line_size: usize,
    rng: StdRng,
    pool: Vec<Vec<u8>>,
    pool_zipf: Zipf,
    stay_dup: f64,
    stay_nondup: f64,
    noise_rate: f64,
    phase_dup: bool,
    last_dup: bool,
    unique_counter: u64,
    seed_tag: u64,
    read_credit: f64,
    mean_gap: f64,
    addr_cursor: u64,
    pending: VecDeque<TraceRecord>,
    writes_emitted: u64,
    dup_writes_intended: u64,
}

impl TraceGenerator {
    /// Create a generator for `profile` with `line_size`-byte lines and a
    /// deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation or `line_size < 16`.
    pub fn new(profile: AppProfile, line_size: usize, seed: u64) -> Self {
        profile.validate().expect("invalid profile");
        assert!(line_size >= 16, "line size too small for unique stamping");
        let mut rng = StdRng::seed_from_u64(seed);

        // Pool slot 0 is the zero line; the rest are random recurring
        // contents generated up front.
        let mut pool = Vec::with_capacity(profile.content_pool_size + 1);
        pool.push(vec![0u8; line_size]);
        for _ in 0..profile.content_pool_size {
            let mut content = vec![0u8; line_size];
            rng.fill(&mut content[..]);
            // Avoid the (astronomically unlikely) all-zero draw so the pool
            // has exactly one zero line.
            if content.iter().all(|&b| b == 0) {
                content[0] = 1;
            }
            pool.push(content);
        }
        let pool_zipf = Zipf::new(profile.content_pool_size.max(1), POOL_ZIPF_ALPHA);
        let (stay_dup, stay_nondup) = profile.phase_params();
        let noise_rate = profile.noise_rate();

        let ops_per_write = 1.0 + profile.reads_per_write;
        let mean_gap = 1000.0 / profile.writes_per_kilo_instr / ops_per_write;
        let last_dup = rng.gen_bool(profile.dup_ratio.clamp(0.0, 1.0));

        TraceGenerator {
            profile,
            line_size,
            rng,
            pool,
            pool_zipf,
            stay_dup,
            stay_nondup,
            noise_rate,
            phase_dup: last_dup,
            last_dup,
            unique_counter: 0,
            seed_tag: seed,
            read_credit: 0.0,
            mean_gap,
            addr_cursor: 0,
            pending: VecDeque::new(),
            writes_emitted: 0,
            dup_writes_intended: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Total line-address span this generator may touch (working set plus
    /// the pool-seeding region). Devices must have at least this many lines.
    pub fn required_lines(&self) -> u64 {
        self.profile.working_set_lines + self.pool.len() as u64
    }

    /// Records that seed every pool content into memory (one write each, to
    /// reserved addresses just above the working set). Running these before
    /// the main trace makes the generator's *intended* duplicates actual
    /// duplicates of resident lines.
    pub fn warmup_records(&self) -> Vec<TraceRecord> {
        let base = self.profile.working_set_lines;
        self.pool
            .iter()
            .enumerate()
            .map(|(i, content)| TraceRecord {
                gap_instructions: 1,
                op: TraceOp::Write {
                    addr: LineAddr::new(base + i as u64),
                    data: content.clone(),
                },
            })
            .collect()
    }

    /// Writes emitted so far (excluding warmup).
    pub fn writes_emitted(&self) -> u64 {
        self.writes_emitted
    }

    /// Writes the Markov chain *intended* to be duplicates so far — ground
    /// truth for calibration tests.
    pub fn dup_writes_intended(&self) -> u64 {
        self.dup_writes_intended
    }

    fn sample_gap(&mut self) -> u32 {
        let jitter = self.rng.gen_range(0.5..1.5);
        (self.mean_gap * jitter).round().max(1.0) as u32
    }

    fn sample_addr(&mut self) -> LineAddr {
        let ws = self.profile.working_set_lines;
        let idx = if self.rng.gen_bool(SEQUENTIAL_FRACTION) {
            self.addr_cursor = (self.addr_cursor + 1) % ws;
            self.addr_cursor
        } else {
            self.rng.gen_range(0..ws)
        };
        LineAddr::new(idx)
    }

    fn next_state(&mut self) -> bool {
        // Degenerate profiles bypass the state process entirely.
        if self.profile.dup_ratio <= 0.0 {
            self.last_dup = false;
            return false;
        }
        if self.profile.dup_ratio >= 1.0 {
            self.last_dup = true;
            return true;
        }
        // Slow phase layer (long runs) plus isolated single-write noise
        // flips — the structure that makes a 3-bit majority window beat a
        // 1-bit one (Fig. 4); see `AppProfile::noise_rate`.
        self.phase_dup = if self.phase_dup {
            self.rng.gen_bool(self.stay_dup)
        } else {
            !self.rng.gen_bool(self.stay_nondup)
        };
        let dup = self.phase_dup ^ self.rng.gen_bool(self.noise_rate);
        self.last_dup = dup;
        dup
    }

    fn duplicate_content(&mut self) -> Vec<u8> {
        // Zero lines are a `zero_share / dup_ratio` fraction of duplicates.
        let zero_prob = if self.profile.dup_ratio > 0.0 {
            (self.profile.zero_share / self.profile.dup_ratio).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if self.rng.gen_bool(zero_prob) {
            self.pool[0].clone()
        } else if self.pool.len() > 1 {
            let k = self.pool_zipf.sample(&mut self.rng);
            self.pool[1 + k].clone()
        } else {
            self.pool[0].clone()
        }
    }

    fn unique_content(&mut self) -> Vec<u8> {
        let mut content = vec![0u8; self.line_size];
        self.rng.fill(&mut content[..]);
        // Stamp a monotone counter + seed so the content can never collide
        // with pool contents or earlier unique lines.
        content[0..8].copy_from_slice(&self.unique_counter.to_le_bytes());
        content[8..16].copy_from_slice(&self.seed_tag.to_le_bytes());
        self.unique_counter += 1;
        content
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if let Some(rec) = self.pending.pop_front() {
            return Some(rec);
        }

        // Emit any reads owed before the next write.
        self.read_credit += self.profile.reads_per_write;
        while self.read_credit >= 1.0 {
            self.read_credit -= 1.0;
            let gap = self.sample_gap();
            let addr = self.sample_addr();
            self.pending.push_back(TraceRecord {
                gap_instructions: gap,
                op: TraceOp::Read { addr },
            });
        }

        let dup = self.next_state();
        if dup {
            self.dup_writes_intended += 1;
        }
        let data = if dup {
            self.duplicate_content()
        } else {
            self.unique_content()
        };
        let gap = self.sample_gap();
        let addr = self.sample_addr();
        self.writes_emitted += 1;
        self.pending.push_back(TraceRecord {
            gap_instructions: gap,
            op: TraceOp::Write { addr, data },
        });

        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{all_apps, app_by_name, worst_case};

    fn take_writes(gen: &mut TraceGenerator, n: usize) -> Vec<TraceRecord> {
        gen.filter(|r| r.op.is_write()).take(n).collect()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = app_by_name("mcf").unwrap();
        let a: Vec<_> = TraceGenerator::new(p.clone(), 256, 7).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(p, 256, 7).take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = app_by_name("mcf").unwrap();
        let a: Vec<_> = TraceGenerator::new(p.clone(), 256, 1).take(500).collect();
        let b: Vec<_> = TraceGenerator::new(p, 256, 2).take(500).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn intended_dup_fraction_tracks_profile() {
        for name in ["vips", "mcf", "lbm"] {
            let p = app_by_name(name).unwrap();
            let mut gen = TraceGenerator::new(p.clone(), 256, 11);
            let _ = take_writes(&mut gen, 20_000);
            let ratio = gen.dup_writes_intended() as f64 / gen.writes_emitted() as f64;
            assert!(
                (ratio - p.dup_ratio).abs() < 0.05,
                "{name}: intended {ratio} vs target {}",
                p.dup_ratio
            );
        }
    }

    #[test]
    fn read_write_mix_tracks_profile() {
        let p = app_by_name("canneal").unwrap(); // 3.2 reads/write
        let gen = TraceGenerator::new(p.clone(), 256, 3);
        let recs: Vec<_> = gen.take(42_000).collect();
        let writes = recs.iter().filter(|r| r.op.is_write()).count() as f64;
        let reads = recs.len() as f64 - writes;
        let ratio = reads / writes;
        assert!((ratio - p.reads_per_write).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn addresses_stay_in_working_set() {
        let p = app_by_name("gcc").unwrap();
        let ws = p.working_set_lines;
        let gen = TraceGenerator::new(p, 256, 5);
        for rec in gen.take(5_000) {
            assert!(rec.op.addr().index() < ws);
        }
    }

    #[test]
    fn warmup_covers_pool_and_uses_reserved_region() {
        let p = app_by_name("gcc").unwrap();
        let ws = p.working_set_lines;
        let gen = TraceGenerator::new(p.clone(), 256, 5);
        let warmup = gen.warmup_records();
        assert_eq!(warmup.len(), p.content_pool_size + 1);
        for rec in &warmup {
            assert!(rec.op.addr().index() >= ws);
            assert!(rec.op.addr().index() < gen.required_lines());
            assert!(rec.op.is_write());
        }
        // First warmup record seeds the zero line.
        if let TraceOp::Write { data, .. } = &warmup[0].op {
            assert!(data.iter().all(|&b| b == 0));
        } else {
            panic!("warmup must write");
        }
    }

    #[test]
    fn worst_case_emits_no_duplicates() {
        let mut gen = TraceGenerator::new(worst_case(), 256, 9);
        let writes = take_writes(&mut gen, 5_000);
        assert_eq!(gen.dup_writes_intended(), 0);
        // All contents unique.
        let mut seen = std::collections::HashSet::new();
        for w in &writes {
            if let TraceOp::Write { data, .. } = &w.op {
                assert!(seen.insert(data.clone()), "duplicate content in worst case");
            }
        }
    }

    #[test]
    fn gaps_are_positive_and_sane() {
        let p = app_by_name("lbm").unwrap();
        let gen = TraceGenerator::new(p, 256, 13);
        for rec in gen.take(2_000) {
            assert!(rec.gap_instructions >= 1);
            assert!(rec.gap_instructions < 10_000);
        }
    }

    #[test]
    fn all_profiles_generate_without_panic() {
        for p in all_apps() {
            let gen = TraceGenerator::new(p, 256, 1);
            assert_eq!(gen.take(200).count(), 200);
        }
    }

    #[test]
    #[should_panic(expected = "line size too small")]
    fn tiny_lines_rejected() {
        let _ = TraceGenerator::new(worst_case(), 8, 0);
    }
}
