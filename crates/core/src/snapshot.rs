//! Controller-state snapshot: serialize the durable metadata (dedup tables
//! and per-line counters) so a DeWrite memory can power-cycle.
//!
//! In hardware, this state lives in the encrypted NVM metadata region and
//! survives power loss by construction (given one of the §V persistence
//! schemes for the *cached* portion). In the simulator, the authoritative
//! copies are in-controller structures, so a restart needs an explicit
//! snapshot: [`DeWrite::snapshot`](crate::DeWrite::snapshot) captures it,
//! [`DeWrite::restore`](crate::DeWrite::restore) rebuilds a controller over
//! the same device, and [`DeWrite::scrub`](crate::DeWrite::scrub) verifies
//! the result.
//!
//! The format is a small length-checked binary codec (magic `DWSS`,
//! version, then the mapping/residency/counter records).

use std::collections::HashMap;
use std::io::{self, Read, Write};

use dewrite_crypto::LineCounter;
use dewrite_nvm::LineAddr;

use crate::dedup::DedupIndex;

/// Magic bytes of a snapshot stream.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DWSS";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// The durable controller state of a DeWrite memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of data lines the index covers.
    pub lines: u64,
    /// `initAddr → realAddr` for every written address (identity entries
    /// included, so residency can be rebuilt).
    pub mappings: Vec<(u64, u64)>,
    /// `realAddr → digest` for every resident line.
    pub residents: Vec<(u64, u32)>,
    /// `line → counter` for every line ever encrypted.
    pub counters: Vec<(u64, u32)>,
}

impl Snapshot {
    /// Capture the durable state from an index and counter map.
    pub fn capture(index: &DedupIndex, counters: &HashMap<u64, LineCounter>) -> Self {
        let mut mappings = Vec::new();
        let mut residents = Vec::new();
        for i in 0..index.lines() {
            let init = LineAddr::new(i);
            if let Some(real) = index.resolve(init) {
                mappings.push((i, real.index()));
            }
            if let Some(digest) = index.digest_of(init) {
                residents.push((i, digest));
            }
        }
        let mut counters: Vec<(u64, u32)> = counters.iter().map(|(&l, c)| (l, c.value())).collect();
        counters.sort_unstable();
        mappings.sort_unstable();
        residents.sort_unstable();
        Snapshot {
            lines: index.lines(),
            mappings,
            residents,
            counters,
        }
    }

    /// Rebuild the dedup index and counter map.
    ///
    /// The hash table is reconstructed from the resident set: one entry per
    /// resident line, with reference counts recomputed from the mappings —
    /// exactly what a recovery scan of the inverted table would produce.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (mapping to a
    /// non-resident line, out-of-range address).
    pub fn rebuild(&self) -> Result<(DedupIndex, HashMap<u64, LineCounter>), String> {
        let mut index = DedupIndex::new(self.lines);
        let resident: HashMap<u64, u32> = self.residents.iter().copied().collect();

        // Install every resident line first (owner stores)…
        for &(line, digest) in &self.residents {
            if line >= self.lines {
                return Err(format!("resident line {line} out of range"));
            }
            index.restore_resident(LineAddr::new(line), digest);
        }
        // …then re-link every written address.
        for &(init, real) in &self.mappings {
            if init >= self.lines || real >= self.lines {
                return Err(format!("mapping {init}->{real} out of range"));
            }
            if !resident.contains_key(&real) {
                return Err(format!(
                    "mapping {init}->{real} targets a non-resident line"
                ));
            }
            index.restore_mapping(LineAddr::new(init), LineAddr::new(real));
        }
        index
            .check_invariants()
            .map_err(|e| format!("rebuilt index is inconsistent: {e}"))?;

        let mut counters = HashMap::new();
        for &(line, value) in &self.counters {
            counters.insert(line, LineCounter::from_value(value));
        }
        Ok((index, counters))
    }

    /// Serialize to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&SNAPSHOT_MAGIC)?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&self.lines.to_le_bytes())?;
        let write_u64_pairs = |w: &mut W, items: &[(u64, u64)]| -> io::Result<()> {
            w.write_all(&(items.len() as u64).to_le_bytes())?;
            for &(a, b) in items {
                w.write_all(&a.to_le_bytes())?;
                w.write_all(&b.to_le_bytes())?;
            }
            Ok(())
        };
        write_u64_pairs(&mut w, &self.mappings)?;
        w.write_all(&(self.residents.len() as u64).to_le_bytes())?;
        for &(line, digest) in &self.residents {
            w.write_all(&line.to_le_bytes())?;
            w.write_all(&digest.to_le_bytes())?;
        }
        w.write_all(&(self.counters.len() as u64).to_le_bytes())?;
        for &(line, ctr) in &self.counters {
            w.write_all(&line.to_le_bytes())?;
            w.write_all(&ctr.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialize from a reader.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on bad magic/version or a
    /// truncated stream.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DeWrite snapshot",
            ));
        }
        let mut ver = [0u8; 2];
        r.read_exact(&mut ver)?;
        if u16::from_le_bytes(ver) != SNAPSHOT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported snapshot version",
            ));
        }
        let mut u64buf = [0u8; 8];
        let mut read_u64 = |r: &mut R| -> io::Result<u64> {
            r.read_exact(&mut u64buf)?;
            Ok(u64::from_le_bytes(u64buf))
        };
        let lines = read_u64(&mut r)?;
        let n = read_u64(&mut r)? as usize;
        let mut mappings = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let a = read_u64(&mut r)?;
            let b = read_u64(&mut r)?;
            mappings.push((a, b));
        }
        let n = read_u64(&mut r)? as usize;
        let mut residents = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let line = read_u64(&mut r)?;
            let mut d = [0u8; 4];
            r.read_exact(&mut d)?;
            residents.push((line, u32::from_le_bytes(d)));
        }
        let n = read_u64(&mut r)? as usize;
        let mut counters = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let line = read_u64(&mut r)?;
            let mut c = [0u8; 4];
            r.read_exact(&mut c)?;
            counters.push((line, u32::from_le_bytes(c)));
        }
        Ok(Snapshot {
            lines,
            mappings,
            residents,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> (DedupIndex, HashMap<u64, LineCounter>) {
        let mut idx = DedupIndex::new(16);
        // line 0 stores content A (digest 10), lines 1 and 2 dedup to it;
        // line 3 stores content B (digest 20).
        idx.apply_store(LineAddr::new(0), 10);
        idx.apply_duplicate(LineAddr::new(1), LineAddr::new(0));
        idx.apply_duplicate(LineAddr::new(2), LineAddr::new(0));
        idx.apply_store(LineAddr::new(3), 20);
        let mut counters = HashMap::new();
        counters.insert(0u64, LineCounter::from_value(5));
        counters.insert(3u64, LineCounter::from_value(2));
        (idx, counters)
    }

    #[test]
    fn capture_rebuild_roundtrip() {
        let (idx, counters) = sample_index();
        let snap = Snapshot::capture(&idx, &counters);
        let (rebuilt, rcounters) = snap.rebuild().expect("rebuild");
        assert_eq!(rebuilt.resolve(LineAddr::new(1)), Some(LineAddr::new(0)));
        assert_eq!(rebuilt.resolve(LineAddr::new(2)), Some(LineAddr::new(0)));
        assert_eq!(rebuilt.resolve(LineAddr::new(3)), Some(LineAddr::new(3)));
        assert_eq!(rebuilt.reference_of(LineAddr::new(0)), Some(3));
        assert_eq!(rebuilt.digest_of(LineAddr::new(3)), Some(20));
        assert_eq!(rcounters[&0].value(), 5);
        rebuilt.check_invariants().expect("invariants");
    }

    #[test]
    fn serialization_roundtrip() {
        let (idx, counters) = sample_index();
        let snap = Snapshot::capture(&idx, &counters);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        let decoded = Snapshot::read_from(buf.as_slice()).expect("decode");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(Snapshot::read_from(&b"NOPE"[..]).is_err());
        let (idx, counters) = sample_index();
        let snap = Snapshot::capture(&idx, &counters);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        buf.truncate(buf.len() - 3);
        assert!(Snapshot::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn rebuild_rejects_dangling_mapping() {
        let snap = Snapshot {
            lines: 8,
            mappings: vec![(1, 5)],
            residents: vec![], // line 5 is not resident
            counters: vec![],
        };
        let err = snap.rebuild().expect_err("dangling mapping");
        assert!(err.contains("non-resident"), "{err}");
    }

    #[test]
    fn rebuild_rejects_out_of_range() {
        let snap = Snapshot {
            lines: 4,
            mappings: vec![],
            residents: vec![(9, 1)],
            counters: vec![],
        };
        assert!(snap.rebuild().is_err());
    }
}
