//! Lock-free free-space bitmap: the concurrent sibling of the sequential
//! FSM table.
//!
//! One bit per line (`1` = free), packed into `AtomicU64` words. Allocation
//! claims a bit with a `fetch_and` word update and releasing returns it
//! with `fetch_or` — a word-granular scan in the spirit of llfree-rs, with
//! no mutex (and no CAS loop over the whole map) on the allocation hot
//! path. Losing a race on a bit costs one reload of the same word, not a
//! rescan.
//!
//! Like [`FreeSpaceTable`] in `dewrite-core`, allocation prefers a
//! caller-provided *home* line and scans outward (wrapping) from it, so
//! dedup relocation keeps its locality even under concurrency.
//!
//! The map is safe to share across threads (`&self` everywhere); exclusive
//! owners pay only uncontended atomic RMWs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits per bitmap word.
const WORD_BITS: u64 = 64;

/// A concurrent free-space bitmap over `lines` slots (`1` bit = free).
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Box<[AtomicU64]>,
    lines: u64,
    free_count: AtomicU64,
}

impl AtomicBitmap {
    /// All `lines` start free.
    pub fn new(lines: u64) -> Self {
        let nwords = lines.div_ceil(WORD_BITS).max(1) as usize;
        let words: Box<[AtomicU64]> = (0..nwords).map(|_| AtomicU64::new(!0u64)).collect();
        // Bits past `lines` must never be handed out: mark them occupied.
        let tail = lines % WORD_BITS;
        if tail != 0 {
            words[nwords - 1].store((1u64 << tail) - 1, Ordering::Relaxed);
        }
        if lines == 0 {
            words[0].store(0, Ordering::Relaxed);
        }
        AtomicBitmap {
            words,
            lines,
            free_count: AtomicU64::new(lines),
        }
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Number of free lines (exact once concurrent operations quiesce;
    /// a live lower/upper-bound gauge while they run).
    pub fn free_lines(&self) -> u64 {
        self.free_count.load(Ordering::Acquire)
    }

    /// Whether `line` is free right now (racy by nature under concurrency).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn is_free(&self, line: u64) -> bool {
        assert!(line < self.lines, "line {line} out of range {}", self.lines);
        let word = self.words[(line / WORD_BITS) as usize].load(Ordering::Acquire);
        word & (1u64 << (line % WORD_BITS)) != 0
    }

    /// Claim `line` specifically. Returns `false` if it was already
    /// occupied (possibly by a concurrent winner).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn occupy(&self, line: u64) -> bool {
        assert!(line < self.lines, "line {line} out of range {}", self.lines);
        let mask = 1u64 << (line % WORD_BITS);
        let prev = self.words[(line / WORD_BITS) as usize].fetch_and(!mask, Ordering::AcqRel);
        if prev & mask != 0 {
            self.free_count.fetch_sub(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// Return `line` to the free pool. Returns `false` (and changes
    /// nothing) if it was already free — callers treating that as a
    /// double-free bug should assert on the result.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn release(&self, line: u64) -> bool {
        assert!(line < self.lines, "line {line} out of range {}", self.lines);
        let mask = 1u64 << (line % WORD_BITS);
        let prev = self.words[(line / WORD_BITS) as usize].fetch_or(mask, Ordering::AcqRel);
        if prev & mask == 0 {
            self.free_count.fetch_add(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// Allocate a free line, preferring `home`, then scanning words outward
    /// from it with wrap-around. Returns `None` when no line is free.
    ///
    /// Lock-free: a claim is one `fetch_and`; a lost race reloads one word.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    pub fn allocate(&self, home: u64) -> Option<u64> {
        assert!(home < self.lines, "home {home} out of range {}", self.lines);
        let nwords = self.words.len();
        let home_word = (home / WORD_BITS) as usize;
        let home_bit = home % WORD_BITS;
        for step in 0..nwords {
            let wi = (home_word + step) % nwords;
            let mut word = self.words[wi].load(Ordering::Acquire);
            loop {
                if word == 0 {
                    break; // word exhausted; move on
                }
                // In the home word, prefer the home bit and its successors
                // so allocation stays near the requested line.
                let bit = if step == 0 {
                    let at_or_after = word & (!0u64 << home_bit);
                    if at_or_after != 0 {
                        at_or_after.trailing_zeros()
                    } else {
                        word.trailing_zeros()
                    }
                } else {
                    word.trailing_zeros()
                } as u64;
                let mask = 1u64 << bit;
                let prev = self.words[wi].fetch_and(!mask, Ordering::AcqRel);
                if prev & mask != 0 {
                    self.free_count.fetch_sub(1, Ordering::AcqRel);
                    return Some(wi as u64 * WORD_BITS + bit);
                }
                // Lost the race for this bit; retry on the fresh view.
                word = prev & !mask;
            }
        }
        None
    }

    /// Visit every occupied line, in ascending order, without allocating —
    /// the scrub path iterates millions of residents and must not build an
    /// unbounded `Vec` first. Meaningful once concurrent operations have
    /// quiesced (scrub, reporting).
    pub fn for_each_occupied<F: FnMut(u64)>(&self, mut f: F) {
        for (wi, w) in self.words.iter().enumerate() {
            let mut taken = !w.load(Ordering::Acquire);
            while taken != 0 {
                let bit = taken.trailing_zeros() as u64;
                let line = wi as u64 * WORD_BITS + bit;
                if line < self.lines {
                    f(line);
                }
                taken &= taken - 1;
            }
        }
    }

    /// Snapshot of every occupied line, in ascending order (a thin wrapper
    /// over [`AtomicBitmap::for_each_occupied`] for callers that want a
    /// `Vec`).
    pub fn occupied(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_occupied(|line| out.push(line));
        out
    }
}

impl Clone for AtomicBitmap {
    fn clone(&self) -> Self {
        AtomicBitmap {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Acquire)))
                .collect(),
            lines: self.lines,
            free_count: AtomicU64::new(self.free_count.load(Ordering::Acquire)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_home_first() {
        let b = AtomicBitmap::new(8);
        assert_eq!(b.free_lines(), 8);
        assert_eq!(b.allocate(3), Some(3));
        assert!(!b.is_free(3));
        assert_eq!(b.free_lines(), 7);
    }

    #[test]
    fn scans_forward_then_wraps() {
        let b = AtomicBitmap::new(4);
        assert!(b.occupy(1));
        assert_eq!(b.allocate(1), Some(2));
        let b = AtomicBitmap::new(4);
        assert!(b.occupy(3));
        assert!(b.occupy(0));
        // Home word exhausted at/after 3 → falls back to lowest free bit.
        assert_eq!(b.allocate(3), Some(1));
    }

    #[test]
    fn crosses_word_boundaries() {
        let b = AtomicBitmap::new(130);
        for i in 0..64 {
            assert!(b.occupy(i));
        }
        assert_eq!(b.allocate(0), Some(64));
        for i in 64..130 {
            b.occupy(i);
        }
        assert_eq!(b.free_lines(), 0);
        assert_eq!(b.allocate(129), None);
        assert!(b.release(127));
        assert_eq!(b.allocate(0), Some(127));
    }

    #[test]
    fn exhaustion_and_release() {
        let b = AtomicBitmap::new(2);
        assert!(b.allocate(0).is_some());
        assert!(b.allocate(0).is_some());
        assert_eq!(b.allocate(0), None);
        assert_eq!(b.free_lines(), 0);
        assert!(b.release(1));
        assert!(!b.release(1), "double release must report");
        assert_eq!(b.free_lines(), 1);
        assert!(!b.occupy(0), "already occupied");
    }

    #[test]
    fn tail_bits_are_never_allocated() {
        let b = AtomicBitmap::new(3);
        let got: Vec<_> = (0..3).map(|_| b.allocate(0).unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(b.allocate(2), None);
    }

    #[test]
    fn occupied_snapshot() {
        let b = AtomicBitmap::new(70);
        b.occupy(0);
        b.occupy(65);
        assert_eq!(b.occupied(), vec![0, 65]);
    }

    #[test]
    fn concurrent_allocations_are_unique() {
        use std::sync::atomic::AtomicUsize;
        const LINES: u64 = 4096;
        let b = AtomicBitmap::new(LINES);
        let claimed: Vec<AtomicUsize> = (0..LINES).map(|_| AtomicUsize::new(0)).collect();
        let threads = 8;
        std::thread::scope(|s| {
            for t in 0..threads {
                let b = &b;
                let claimed = &claimed;
                s.spawn(move || {
                    // Each thread hammers from its own home region.
                    let home = (t as u64 * LINES / threads as u64) % LINES;
                    while let Some(line) = b.allocate(home) {
                        let prev = claimed[line as usize].fetch_add(1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "line {line} double-allocated");
                    }
                });
            }
        });
        assert_eq!(b.free_lines(), 0);
        assert!(claimed.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn concurrent_churn_preserves_free_count() {
        const LINES: u64 = 512;
        let b = AtomicBitmap::new(LINES);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let b = &b;
                s.spawn(move || {
                    for round in 0..2_000u64 {
                        if let Some(line) = b.allocate((t * 128 + round) % LINES) {
                            assert!(b.release(line), "we owned it");
                        }
                    }
                });
            }
        });
        assert_eq!(b.free_lines(), LINES);
        assert!(b.occupied().is_empty());
    }
}
