//! Energy parameters and accounting.
//!
//! All energies are in picojoules. PCM array energies follow the common
//! modeling in the literature the paper builds on (Lee et al., Xu et al.):
//! writes are several times more expensive than reads and scale with the
//! number of programmed (flipped) bits; reads scale with the line size.

/// Energy parameters of the simulated NVM plus controller logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy to read one line from the array, in pJ.
    pub read_line_pj: u64,
    /// Energy of a read served from the open row buffer, in pJ.
    pub row_hit_read_pj: u64,
    /// Fixed overhead energy per line write (drivers, decode), in pJ.
    pub write_base_pj: u64,
    /// Energy per programmed (flipped) bit on a write, in pJ.
    pub write_bit_pj: u64,
    /// Energy of one hardware line comparison, in pJ.
    pub compare_pj: u64,
}

impl EnergyParams {
    /// PCM-like defaults: 2 pJ/bit read (≈4.1 nJ / 256 B line), 13.5 pJ per
    /// programmed bit plus a fixed write overhead.
    pub const PCM: EnergyParams = EnergyParams {
        read_line_pj: 4_100,
        row_hit_read_pj: 1_000,
        write_base_pj: 2_000,
        write_bit_pj: 14,
        compare_pj: 30,
    };

    /// Energy of a write that programs `bits_flipped` bits.
    pub fn write_energy_pj(&self, bits_flipped: u64) -> u64 {
        self.write_base_pj + self.write_bit_pj * bits_flipped
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::PCM
    }
}

/// Running energy totals, bucketed by consumer so experiments can report the
/// breakdown in Fig. 19/20 style (NVM array vs AES circuit vs dedup logic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyBreakdown {
    /// Energy spent in NVM array reads, pJ.
    pub nvm_read_pj: u64,
    /// Energy spent in NVM array writes, pJ.
    pub nvm_write_pj: u64,
    /// Energy spent in the AES circuit, pJ.
    pub aes_pj: u64,
    /// Energy spent in the dedup logic (hashing + comparison), pJ.
    pub dedup_pj: u64,
}

impl EnergyBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy across all buckets, pJ.
    pub fn total_pj(&self) -> u64 {
        self.nvm_read_pj + self.nvm_write_pj + self.aes_pj + self.dedup_pj
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.nvm_read_pj += other.nvm_read_pj;
        self.nvm_write_pj += other.nvm_write_pj;
        self.aes_pj += other.aes_pj;
        self.dedup_pj += other.dedup_pj;
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {:.3} µJ (nvm-read {:.3}, nvm-write {:.3}, aes {:.3}, dedup {:.3})",
            self.total_pj() as f64 / 1e6,
            self.nvm_read_pj as f64 / 1e6,
            self.nvm_write_pj as f64 / 1e6,
            self.aes_pj as f64 / 1e6,
            self.dedup_pj as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_energy_scales_with_bits() {
        let p = EnergyParams::PCM;
        assert_eq!(p.write_energy_pj(0), p.write_base_pj);
        assert!(p.write_energy_pj(2048) > p.write_energy_pj(1024));
        assert_eq!(
            p.write_energy_pj(100) - p.write_energy_pj(0),
            100 * p.write_bit_pj
        );
    }

    #[test]
    fn writes_cost_more_than_reads_at_full_flip() {
        let p = EnergyParams::PCM;
        // A full 256 B line rewrite with ~50% of 2048 bits flipped must cost
        // several times a read — the asymmetry the endurance results rely on.
        assert!(p.write_energy_pj(1024) > 3 * p.read_line_pj);
    }

    #[test]
    fn breakdown_merge_and_total() {
        let mut a = EnergyBreakdown {
            nvm_read_pj: 1,
            nvm_write_pj: 2,
            aes_pj: 3,
            dedup_pj: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_pj(), 20);
        assert_eq!(a.nvm_write_pj, 4);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!EnergyBreakdown::new().to_string().is_empty());
    }
}
