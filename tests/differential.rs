//! Differential property testing: every scheme is, functionally, the same
//! memory. Random operation sequences — duplicate-heavy by construction —
//! must produce byte-identical user-visible contents across all of them.

use dewrite::core::{
    CmeBaseline, DeWrite, DeWriteConfig, MetadataPersistence, SecureMemory, SilentShredder,
    SystemConfig, TraditionalDedup, WriteMode,
};
use dewrite::hashes::HashAlgorithm;
use dewrite::nvm::LineAddr;
use proptest::prelude::*;

const KEY: &[u8; 16] = b"differential key";
const LINES: u64 = 256;

/// An abstract operation: write one of a few contents (small tag space
/// forces duplicates, tag 0 is the zero line) or read.
#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, tag: u8 },
    Read { addr: u64 },
}

fn content(tag: u8) -> Vec<u8> {
    if tag == 0 {
        vec![0u8; 256]
    } else {
        (0..256)
            .map(|i| tag.wrapping_mul(31).wrapping_add(i as u8))
            .collect()
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..LINES, 0u8..6).prop_map(|(addr, tag)| Op::Write { addr, tag }),
        (0..LINES).prop_map(|addr| Op::Read { addr }),
    ]
}

fn schemes() -> Vec<Box<dyn SecureMemory>> {
    let config = SystemConfig::for_lines(LINES);
    let mut out: Vec<Box<dyn SecureMemory>> = vec![
        Box::new(CmeBaseline::new(config.clone(), KEY)),
        Box::new(SilentShredder::new(config.clone(), KEY)),
        Box::new(TraditionalDedup::new(
            config.clone(),
            HashAlgorithm::Sha1,
            KEY,
        )),
    ];
    for mode in [
        WriteMode::Direct,
        WriteMode::Parallel,
        WriteMode::Predictive,
    ] {
        let mut dw = DeWriteConfig::paper();
        dw.mode = mode;
        out.push(Box::new(DeWrite::new(config.clone(), dw, KEY)));
    }
    // One more with aggressive persistence to cover that code path too.
    let mut dw = DeWriteConfig::paper();
    dw.persistence = MetadataPersistence::EpochFlush { interval: 16 };
    out.push(Box::new(DeWrite::new(config, dw, KEY)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn all_schemes_expose_identical_memory(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut mems = schemes();
        let mut t = 0u64;
        for op in &ops {
            match op {
                Op::Write { addr, tag } => {
                    let data = content(*tag);
                    for mem in mems.iter_mut() {
                        mem.write(LineAddr::new(*addr), &data, t).expect("write");
                    }
                }
                Op::Read { addr } => {
                    let mut results: Vec<Vec<u8>> = Vec::new();
                    for mem in mems.iter_mut() {
                        results.push(mem.read(LineAddr::new(*addr), t).expect("read").data);
                    }
                    for (i, r) in results.iter().enumerate().skip(1) {
                        prop_assert_eq!(
                            r, &results[0],
                            "scheme {} disagrees with baseline at line {}", i, addr
                        );
                    }
                }
            }
            t += 1_000;
        }

        // Final sweep over every line.
        for addr in 0..LINES {
            let mut results: Vec<Vec<u8>> = Vec::new();
            for mem in mems.iter_mut() {
                results.push(mem.read(LineAddr::new(addr), t).expect("read").data);
            }
            for r in results.iter().skip(1) {
                prop_assert_eq!(r, &results[0]);
            }
            t += 100;
        }
    }
}
