//! Per-test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// How many cases each [`proptest!`](crate::proptest) test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so every run
/// explores the same cases (failures reproduce without a persistence file).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        lo + ((u128::from(self.next_u64()) * span) >> 64) as usize
    }
}
