//! Start-Gap wear leveling (Qureshi et al., MICRO'09).
//!
//! Deduplication changes the write distribution: shared lines are written
//! once and read forever, while the free-space allocator recycles a subset
//! of lines for the non-duplicate stream. Production NVMMs pair any such
//! scheme with address-space wear leveling; Start-Gap is the classic
//! low-cost design and composes with DeWrite exactly as it does with a
//! plain memory — it sits *below* the controller, remapping physical lines.
//!
//! Mechanics: the physical space has one spare line (the *gap*). Every
//! `gap_interval` writes, the line just above the gap moves into the gap
//! and the gap advances by one; after `lines + 1` movements every line has
//! shifted by one slot (tracked by `start`). The mapping needs only two
//! registers and moves one line per interval — <1% write overhead at the
//! paper-recommended interval of 100.

use crate::line::LineAddr;

/// Start-Gap address remapper over `lines` logical lines
/// (`lines + 1` physical slots).
///
/// ```
/// use dewrite_nvm::{LineAddr, StartGap};
///
/// let mut sg = StartGap::new(8, 4);
/// let before = sg.remap(LineAddr::new(3));
/// for _ in 0..40 { sg.note_write(); } // several gap movements
/// let after = sg.remap(LineAddr::new(3));
/// assert_ne!(before, after, "line 3 now lives elsewhere");
/// ```
#[derive(Debug, Clone)]
pub struct StartGap {
    lines: u64,
    gap: u64,
    start: u64,
    interval: u32,
    writes_since_move: u32,
    moves: u64,
}

impl StartGap {
    /// Create a leveler for `lines` logical lines, moving the gap every
    /// `interval` writes (the original paper suggests 100).
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `interval` is zero.
    pub fn new(lines: u64, interval: u32) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(interval > 0, "gap interval must be nonzero");
        StartGap {
            lines,
            gap: lines, // the spare slot starts at the top
            start: 0,
            interval,
            writes_since_move: 0,
            moves: 0,
        }
    }

    /// Number of logical lines covered.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Physical slot currently holding logical `addr`
    /// (`PA = (LA + Start) mod N`, plus one to skip the gap slot).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn remap(&self, addr: LineAddr) -> LineAddr {
        assert!(addr.index() < self.lines, "logical address out of range");
        let rotated = (addr.index() + self.start) % self.lines;
        let physical = if rotated >= self.gap {
            rotated + 1
        } else {
            rotated
        };
        LineAddr::new(physical)
    }

    /// Record one write; every `interval` writes the gap advances (moving
    /// down one slot). Returns `Some((from, to))` — the line the caller
    /// must physically copy (one read + one write).
    pub fn note_write(&mut self) -> Option<(LineAddr, LineAddr)> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.interval {
            return None;
        }
        self.writes_since_move = 0;
        self.moves += 1;

        if self.gap == 0 {
            // Wrap: the top slot's content moves into slot 0, the gap
            // returns to the top, and the rotation advances by one —
            // after N+1 movements every logical line has shifted.
            self.gap = self.lines;
            self.start = (self.start + 1) % self.lines;
            Some((LineAddr::new(self.lines), LineAddr::new(0)))
        } else {
            let dst = self.gap;
            self.gap -= 1;
            Some((LineAddr::new(self.gap), LineAddr::new(dst)))
        }
    }

    /// Gap movements performed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Write overhead of the leveler: extra writes per program write.
    pub fn overhead(&self) -> f64 {
        1.0 / f64::from(self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn remap_is_injective_at_all_times() {
        let mut sg = StartGap::new(16, 2);
        for step in 0..200 {
            let mut seen = HashSet::new();
            for i in 0..16 {
                let p = sg.remap(LineAddr::new(i));
                assert!(p.index() <= 16, "physical slot within lines+1");
                assert!(seen.insert(p), "collision at step {step} line {i}");
                assert_ne!(p.index(), sg.gap, "mapped into the gap");
            }
            sg.note_write();
        }
    }

    #[test]
    fn gap_moves_every_interval() {
        let mut sg = StartGap::new(8, 4);
        let mut moves = 0;
        for _ in 0..40 {
            if sg.note_write().is_some() {
                moves += 1;
            }
        }
        assert_eq!(moves, 10);
        assert_eq!(sg.moves(), 10);
    }

    #[test]
    fn movement_pair_is_adjacent_to_gap() {
        let mut sg = StartGap::new(8, 1);
        let gap_before = sg.gap;
        let (src, dst) = sg.note_write().expect("interval 1 always moves");
        assert_eq!(dst.index(), gap_before);
        assert_eq!(src.index(), gap_before - 1);
    }

    #[test]
    fn contents_follow_the_remapping() {
        // Simulate the physical copies the controller performs and check
        // that every logical line always reads back its own content.
        let lines = 6u64;
        let mut sg = StartGap::new(lines, 1);
        let mut physical = vec![u64::MAX; lines as usize + 1];
        for l in 0..lines {
            physical[sg.remap(LineAddr::new(l)).index() as usize] = l;
        }
        for step in 0..100 {
            if let Some((src, dst)) = sg.note_write() {
                physical[dst.index() as usize] = physical[src.index() as usize];
                physical[src.index() as usize] = u64::MAX;
            }
            for l in 0..lines {
                let p = sg.remap(LineAddr::new(l));
                assert_eq!(
                    physical[p.index() as usize],
                    l,
                    "step {step}: logical {l} lost its data"
                );
            }
        }
    }

    #[test]
    fn full_rotation_shifts_start() {
        let lines = 4u64;
        let mut sg = StartGap::new(lines, 1);
        let orig: Vec<_> = (0..lines).map(|i| sg.remap(LineAddr::new(i))).collect();
        // lines+1 movements complete one rotation.
        for _ in 0..=lines {
            sg.note_write();
        }
        let rotated: Vec<_> = (0..lines).map(|i| sg.remap(LineAddr::new(i))).collect();
        assert_ne!(orig, rotated, "every line must have shifted");
    }

    #[test]
    fn overhead_matches_interval() {
        assert!((StartGap::new(8, 100).overhead() - 0.01).abs() < 1e-12);
        assert!((StartGap::new(8, 4).overhead() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remap_rejects_out_of_range() {
        let sg = StartGap::new(4, 1);
        let _ = sg.remap(LineAddr::new(4));
    }

    #[test]
    fn writes_spread_over_all_physical_slots() {
        // Hammering one logical line must, over time, touch every physical
        // slot — the whole point of wear leveling.
        let lines = 8u64;
        let mut sg = StartGap::new(lines, 1);
        let mut touched = HashSet::new();
        for _ in 0..((lines + 1) * (lines + 1) * 2) {
            touched.insert(sg.remap(LineAddr::new(3)));
            sg.note_write();
        }
        assert_eq!(touched.len() as u64, lines + 1, "{touched:?}");
    }

    proptest! {
        #[test]
        fn remap_stays_injective(lines in 2u64..32, interval in 1u32..8, steps in 0usize..300) {
            let mut sg = StartGap::new(lines, interval);
            for _ in 0..steps {
                sg.note_write();
            }
            let mut seen = HashSet::new();
            for i in 0..lines {
                prop_assert!(seen.insert(sg.remap(LineAddr::new(i))));
            }
        }
    }
}
