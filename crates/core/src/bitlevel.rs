//! Bit-level write-reduction baselines for encrypted NVM (Fig. 13).
//!
//! These schemes reduce the number of *programmed bits* per line write:
//!
//! * **DCW** (Data Comparison Write) — program only the bits that differ
//!   from the cell contents. On encrypted lines, diffusion makes ~50% of
//!   bits differ, so DCW saves almost nothing — the paper's motivation.
//! * **FNW** (Flip-N-Write) — per n-bit group, write the data or its
//!   complement (plus a flag bit), whichever flips fewer cells; bounds the
//!   flip ratio at 50% and achieves ≈43% on encrypted data.
//! * **DEUCE** — dual-counter partial re-encryption: only words (2 B)
//!   modified since the current epoch began are re-encrypted with the fresh
//!   counter; untouched words keep their previous ciphertext, cutting flips
//!   to ≈24% on real write streams.
//! * **Silent Shredder** — eliminates full-zero line writes entirely (data
//!   shredding); a *line-level* scheme like DeWrite, combinable with all of
//!   the above.
//!
//! All schemes here compute flips from **real ciphertext bytes** produced by
//! the [`CounterModeEngine`], so the diffusion behaviour is measured, not
//! assumed.

use dewrite_crypto::{CounterModeEngine, LineCounter};
use dewrite_nvm::bit_flips;

/// FNW group width in bits (a 32-bit group + 1 flag is the classic layout).
pub const FNW_GROUP_BITS: usize = 32;

/// DEUCE word size in bytes (§V: "modified words (i.e., 2 bytes)").
pub const DEUCE_WORD_BYTES: usize = 2;

/// DEUCE epoch length in writes: a full-line re-encryption happens every
/// `DEUCE_EPOCH` writes to a line, resetting the modified-word set.
pub const DEUCE_EPOCH: u32 = 32;

/// Programmed-bit count under DCW: exactly the differing bits.
///
/// ```
/// use dewrite_core::dcw_flips;
/// assert_eq!(dcw_flips(&[0xFF], &[0x0F]), 4);
/// ```
pub fn dcw_flips(old_ct: &[u8], new_ct: &[u8]) -> u64 {
    bit_flips(old_ct, new_ct)
}

/// Programmed-bit count under FNW with [`FNW_GROUP_BITS`]-bit groups: per
/// group, `min(flips, group_bits − flips)` data-bit programs plus one flag
/// program when the inversion choice changes.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn fnw_flips(old_ct: &[u8], new_ct: &[u8]) -> u64 {
    assert_eq!(
        old_ct.len(),
        new_ct.len(),
        "fnw_flips requires equal lengths"
    );
    let group_bytes = FNW_GROUP_BITS / 8;
    let mut total = 0u64;
    for (o, n) in old_ct.chunks(group_bytes).zip(new_ct.chunks(group_bytes)) {
        let f = bit_flips(o, n);
        let group_bits = (o.len() * 8) as u64;
        let direct = f;
        let inverted = group_bits - f + 1; // +1 for the flag-bit program
        total += direct.min(inverted);
    }
    total
}

/// A line under full-line counter-mode re-encryption, tracking ciphertext
/// evolution so DCW/FNW flip counts can be measured per write.
#[derive(Debug, Clone)]
pub struct CmeLine {
    addr: u64,
    counter: LineCounter,
    ciphertext: Vec<u8>,
    /// Scratch for the next ciphertext, swapped in after each write.
    scratch: Vec<u8>,
}

impl CmeLine {
    /// A fresh (all-zero-cell) line at `addr`.
    pub fn new(addr: u64, line_size: usize) -> Self {
        CmeLine {
            addr,
            counter: LineCounter::new(),
            ciphertext: vec![0u8; line_size],
            scratch: vec![0u8; line_size],
        }
    }

    /// Write `plaintext`, re-encrypting the whole line with a bumped
    /// counter. Returns `(dcw_flips, fnw_flips)` against the previous
    /// ciphertext.
    pub fn write(&mut self, engine: &CounterModeEngine, plaintext: &[u8]) -> (u64, u64) {
        let _ = self.counter.increment();
        self.scratch.resize(plaintext.len(), 0);
        engine.encrypt_line_into(plaintext, self.addr, self.counter, &mut self.scratch);
        let dcw = dcw_flips(&self.ciphertext, &self.scratch);
        let fnw = fnw_flips(&self.ciphertext, &self.scratch);
        std::mem::swap(&mut self.ciphertext, &mut self.scratch);
        (dcw, fnw)
    }

    /// Current ciphertext (for inspection).
    pub fn ciphertext(&self) -> &[u8] {
        &self.ciphertext
    }
}

/// A line under DEUCE dual-counter partial re-encryption.
#[derive(Debug, Clone)]
pub struct DeuceLine {
    addr: u64,
    counter: LineCounter,
    epoch_plain: Vec<u8>,
    plain: Vec<u8>,
    ciphertext: Vec<u8>,
    /// Scratch pad buffer reused across writes (no per-write alloc).
    pad_buf: Vec<u8>,
    /// Scratch for the next ciphertext, swapped in after each write.
    ct_buf: Vec<u8>,
    writes_since_epoch: u32,
}

impl DeuceLine {
    /// A fresh line at `addr` (all-zero plaintext and cells).
    pub fn new(addr: u64, line_size: usize) -> Self {
        DeuceLine {
            addr,
            counter: LineCounter::new(),
            epoch_plain: vec![0u8; line_size],
            plain: vec![0u8; line_size],
            ciphertext: vec![0u8; line_size],
            pad_buf: vec![0u8; line_size],
            ct_buf: vec![0u8; line_size],
            // The first write to a line starts its first epoch with a full
            // encryption.
            writes_since_epoch: DEUCE_EPOCH,
        }
    }

    /// Write `plaintext`, re-encrypting only the words modified since the
    /// epoch began (or the whole line at an epoch boundary). Returns the
    /// programmed-bit count (DCW applied on top, as in the paper's
    /// DEUCE configuration).
    ///
    /// # Panics
    ///
    /// Panics if `plaintext` length differs from the line size.
    pub fn write(&mut self, engine: &CounterModeEngine, plaintext: &[u8]) -> u64 {
        assert_eq!(plaintext.len(), self.plain.len(), "line size mismatch");
        let _ = self.counter.increment();
        self.writes_since_epoch += 1;

        self.pad_buf.resize(plaintext.len(), 0);
        engine.one_time_pad_into(self.addr, self.counter, &mut self.pad_buf);
        self.ct_buf.clear();
        self.ct_buf.extend_from_slice(&self.ciphertext);

        if self.writes_since_epoch >= DEUCE_EPOCH {
            // Epoch boundary: full re-encryption, reset the modified set.
            for ((c, p), k) in self.ct_buf.iter_mut().zip(plaintext).zip(&self.pad_buf) {
                *c = p ^ k;
            }
            self.epoch_plain.copy_from_slice(plaintext);
            self.writes_since_epoch = 0;
        } else {
            // Re-encrypt exactly the words whose plaintext differs from the
            // epoch-start plaintext (the cumulative modified set).
            for w in 0..plaintext.len() / DEUCE_WORD_BYTES {
                let lo = w * DEUCE_WORD_BYTES;
                let hi = lo + DEUCE_WORD_BYTES;
                if plaintext[lo..hi] != self.epoch_plain[lo..hi] {
                    for ((c, p), k) in self.ct_buf[lo..hi]
                        .iter_mut()
                        .zip(&plaintext[lo..hi])
                        .zip(&self.pad_buf[lo..hi])
                    {
                        *c = p ^ k;
                    }
                }
            }
        }

        let flips = dcw_flips(&self.ciphertext, &self.ct_buf);
        std::mem::swap(&mut self.ciphertext, &mut self.ct_buf);
        self.plain.copy_from_slice(plaintext);
        flips
    }

    /// Current ciphertext (for inspection).
    pub fn ciphertext(&self) -> &[u8] {
        &self.ciphertext
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewrite_nvm::is_zero_line;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine() -> CounterModeEngine {
        CounterModeEngine::new(b"fig13 key bytes!")
    }

    #[test]
    fn dcw_on_encrypted_rewrites_is_about_half() {
        let e = engine();
        let mut line = CmeLine::new(0x100, 256);
        let plain = vec![7u8; 256];
        line.write(&e, &plain); // initial fill
        let mut total = 0u64;
        const N: u64 = 200;
        for _ in 0..N {
            // Rewrite the *same* plaintext: diffusion still flips ~50%.
            let (dcw, _) = line.write(&e, &plain);
            total += dcw;
        }
        let ratio = total as f64 / (N * 2048) as f64;
        assert!((0.47..0.53).contains(&ratio), "DCW ratio {ratio}");
    }

    #[test]
    fn fnw_on_encrypted_rewrites_is_about_43_percent() {
        let e = engine();
        let mut line = CmeLine::new(0x200, 256);
        let plain = vec![9u8; 256];
        line.write(&e, &plain);
        let mut total = 0u64;
        const N: u64 = 200;
        for _ in 0..N {
            let (_, fnw) = line.write(&e, &plain);
            total += fnw;
        }
        let ratio = total as f64 / (N * 2048) as f64;
        assert!((0.40..0.46).contains(&ratio), "FNW ratio {ratio}");
    }

    #[test]
    fn fnw_never_exceeds_dcw_or_half_plus_flags() {
        let e = engine();
        let mut line = CmeLine::new(0x300, 256);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let mut plain = vec![0u8; 256];
            rng.fill(&mut plain[..]);
            let (dcw, fnw) = line.write(&e, &plain);
            assert!(fnw <= dcw);
            // Upper bound: half the data bits + one flag per group.
            assert!(fnw <= 1024 + 64);
        }
    }

    #[test]
    fn deuce_flips_scale_with_modified_words() {
        let e = engine();
        let mut line = DeuceLine::new(0x400, 256);
        let base = vec![3u8; 256];
        line.write(&e, &base);

        // Modify a single word: far fewer flips than a full re-encrypt.
        let mut one_word = base.clone();
        one_word[0] ^= 0xFF;
        let flips = line.write(&e, &one_word);
        assert!(flips <= DEUCE_WORD_BYTES as u64 * 8, "flips {flips}");
        assert!(flips > 0);
    }

    #[test]
    fn deuce_reencrypts_cumulative_modified_set() {
        let e = engine();
        let mut line = DeuceLine::new(0x500, 256);
        let base = vec![1u8; 256];
        line.write(&e, &base);
        let mut v1 = base.clone();
        v1[0] ^= 0xFF; // word 0 modified
        line.write(&e, &v1);
        let mut v2 = v1.clone();
        v2[10] ^= 0xFF; // word 5 modified too
        let flips = line.write(&e, &v2);
        // Both word 0 and word 5 re-encrypt (cumulative set) — but nothing
        // else.
        assert!(flips <= 2 * DEUCE_WORD_BYTES as u64 * 8, "flips {flips}");
    }

    #[test]
    fn deuce_epoch_boundary_reencrypts_everything() {
        let e = engine();
        let mut line = DeuceLine::new(0x600, 256);
        let base = vec![2u8; 256];
        let mut saw_large = false;
        for _ in 0..(DEUCE_EPOCH + 2) {
            let flips = line.write(&e, &base);
            if flips > 512 {
                saw_large = true; // the epoch's full re-encryption
            }
        }
        assert!(saw_large, "no epoch re-encryption observed");
    }

    #[test]
    fn deuce_average_is_well_below_dcw_for_sparse_writes() {
        // The Fig. 13 relationship: DEUCE ≪ FNW < DCW for write streams
        // that modify a few words per write.
        let e = engine();
        let mut deuce = DeuceLine::new(0x700, 256);
        let mut cme = CmeLine::new(0x700, 256);
        let mut rng = StdRng::seed_from_u64(11);
        let mut plain = vec![0u8; 256];
        rng.fill(&mut plain[..]);
        deuce.write(&e, &plain);
        cme.write(&e, &plain);

        let (mut d_total, mut dcw_total) = (0u64, 0u64);
        const N: u64 = 300;
        for _ in 0..N {
            // Modify ~4 random words per write.
            for _ in 0..4 {
                let w = rng.gen_range(0..128);
                plain[w * 2] ^= rng.gen::<u8>() | 1;
            }
            d_total += deuce.write(&e, &plain);
            let (dcw, _) = cme.write(&e, &plain);
            dcw_total += dcw;
        }
        let d_ratio = d_total as f64 / (N * 2048) as f64;
        let dcw_ratio = dcw_total as f64 / (N * 2048) as f64;
        assert!(
            d_ratio < dcw_ratio * 0.7,
            "DEUCE {d_ratio} vs DCW {dcw_ratio}"
        );
    }

    #[test]
    fn silent_shredder_predicate() {
        // Silent Shredder's eliminable writes are exactly the zero lines.
        assert!(is_zero_line(&[0u8; 256]));
        assert!(!is_zero_line(&[0, 0, 1]));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn fnw_rejects_ragged_input() {
        let _ = fnw_flips(&[0u8; 4], &[0u8; 8]);
    }
}
