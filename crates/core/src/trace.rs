//! Write-path observability: per-write events and per-stage latency
//! collection.
//!
//! Schemes that support tracing ([`DeWrite`](crate::DeWrite),
//! [`CmeBaseline`](crate::CmeBaseline)) carry an optional [`EventSink`].
//! When one is installed, every accepted write emits a [`WriteEvent`] — a
//! plain stack struct carrying the path taken (duplicate / stored), the
//! prediction and PNA decisions, and the nanoseconds each pipeline
//! [`Stage`] contributed. When no sink is installed the hot path pays one
//! branch and no allocation.
//!
//! The [`Simulator`](crate::Simulator) installs a [`StageCollector`] for
//! the measured window and folds the resulting [`StageBreakdown`] —
//! per-stage latency histograms with p50/p95/p99 — into the
//! [`RunReport`](crate::RunReport).

use dewrite_mem::LatencyHistogram;

/// One stage of the secure-memory write pipeline.
///
/// Stage times are wall-clock contributions as the controller experienced
/// them: overlapped work (speculative encryption racing detection) reports
/// its own duration, so stage sums can exceed the write's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Fingerprint computation (CRC-32 or ablation hash).
    Digest,
    /// Hash-store probe / in-NVM hash-table query.
    HashProbe,
    /// Candidate-line verify reads from the array.
    VerifyRead,
    /// Byte comparison of candidates against the incoming line.
    Compare,
    /// Counter fetch + AES pad generation / line encryption.
    Encrypt,
    /// The NVM array data write (issue → durable).
    ArrayWrite,
    /// Post-commit metadata-table updates.
    Metadata,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 7;

    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Digest,
        Stage::HashProbe,
        Stage::VerifyRead,
        Stage::Compare,
        Stage::Encrypt,
        Stage::ArrayWrite,
        Stage::Metadata,
    ];

    /// Stable snake_case identifier (JSON keys, report labels).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Digest => "digest",
            Stage::HashProbe => "hash_probe",
            Stage::VerifyRead => "verify_read",
            Stage::Compare => "compare",
            Stage::Encrypt => "encrypt",
            Stage::ArrayWrite => "array_write",
            Stage::Metadata => "metadata",
        }
    }

    /// Parse a [`name`](Self::name) back to the stage.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Which way a write left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePath {
    /// Confirmed duplicate; the array write was eliminated.
    Duplicate,
    /// Stored to the array (non-duplicate or dedup declined).
    Stored,
}

/// One write's trace record. Built on the stack by the scheme; stages that
/// did not occur on this write stay unset (distinct from a 0 ns stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEvent {
    /// The path taken.
    pub path: WritePath,
    /// Whether the predictor forecast a duplicate.
    pub predicted_dup: bool,
    /// Whether PNA declined the in-NVM hash-table query.
    pub pna_skip: bool,
    /// Full write latency (issue → durable / detection-complete).
    pub total_ns: u64,
    stage_ns: [u64; Stage::COUNT],
    set: u8,
}

impl WriteEvent {
    /// A fresh event for a write taking `path`, with no stages set.
    pub fn new(path: WritePath) -> Self {
        WriteEvent {
            path,
            predicted_dup: false,
            pna_skip: false,
            total_ns: 0,
            stage_ns: [0; Stage::COUNT],
            set: 0,
        }
    }

    /// Record that `stage` took `ns` on this write.
    pub fn set_stage(&mut self, stage: Stage, ns: u64) {
        self.stage_ns[stage as usize] = ns;
        self.set |= 1 << stage as usize;
    }

    /// The duration of `stage`, if it occurred on this write.
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        if self.set & (1 << stage as usize) != 0 {
            Some(self.stage_ns[stage as usize])
        } else {
            None
        }
    }
}

/// Receiver for [`WriteEvent`]s, installed on a scheme via
/// [`SecureMemory::set_event_sink`](crate::SecureMemory::set_event_sink).
///
/// `Send` is a supertrait so schemes carrying a boxed sink stay `Send` and
/// can be moved onto engine shard threads.
pub trait EventSink: Send {
    /// Observe one write.
    fn record(&mut self, event: &WriteEvent);

    /// Downcast support, so callers that installed a concrete sink can get
    /// it back out of the `Box<dyn EventSink>`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Aggregated per-stage latency distributions over a window of writes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    stages: [LatencyHistogram; Stage::COUNT],
    /// Writes that left as confirmed duplicates.
    pub duplicate_writes: u64,
    /// Writes that reached the array.
    pub stored_writes: u64,
    /// Writes the predictor forecast as duplicates.
    pub predicted_dup: u64,
    /// Writes where PNA declined the in-NVM hash query.
    pub pna_skips: u64,
}

impl StageBreakdown {
    /// The latency histogram of one stage (over the writes where the stage
    /// occurred).
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage as usize]
    }

    /// Mutable access for imports (JSON) and custom aggregation.
    pub fn stage_mut(&mut self, stage: Stage) -> &mut LatencyHistogram {
        &mut self.stages[stage as usize]
    }

    /// Total writes observed.
    pub fn writes(&self) -> u64 {
        self.duplicate_writes + self.stored_writes
    }

    /// Fold one event in.
    pub fn observe(&mut self, event: &WriteEvent) {
        match event.path {
            WritePath::Duplicate => self.duplicate_writes += 1,
            WritePath::Stored => self.stored_writes += 1,
        }
        self.predicted_dup += u64::from(event.predicted_dup);
        self.pna_skips += u64::from(event.pna_skip);
        for stage in Stage::ALL {
            if let Some(ns) = event.stage_ns(stage) {
                self.stages[stage as usize].record(ns);
            }
        }
    }

    /// Render the breakdown as collapsed-stack ("folded") text, the input
    /// format of `inferno` / `flamegraph.pl`: one line per
    /// `root;stage count`, where the sample count is the stage's **total
    /// nanoseconds**, so frame widths are proportional to time spent.
    /// Stages that never occurred are omitted; stages appear in pipeline
    /// order. Deterministic for deterministic runs (simulated ns), so the
    /// output is golden-file testable.
    pub fn folded(&self, root: &str) -> String {
        let mut out = String::new();
        for stage in Stage::ALL {
            let hist = self.stage(stage);
            if hist.count() == 0 {
                continue;
            }
            out.push_str(root);
            out.push(';');
            out.push_str(stage.name());
            out.push(' ');
            out.push_str(&hist.stats().total_ns().to_string());
            out.push('\n');
        }
        out
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for stage in Stage::ALL {
            self.stages[stage as usize].merge(other.stage(stage));
        }
        self.duplicate_writes += other.duplicate_writes;
        self.stored_writes += other.stored_writes;
        self.predicted_dup += other.predicted_dup;
        self.pna_skips += other.pna_skips;
    }
}

/// The standard [`EventSink`]: aggregates events into a [`StageBreakdown`].
#[derive(Debug, Default)]
pub struct StageCollector {
    /// The aggregate so far.
    pub breakdown: StageBreakdown,
}

impl EventSink for StageCollector {
    fn record(&mut self, event: &WriteEvent) {
        self.breakdown.observe(event);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_stages_stay_unset() {
        let mut e = WriteEvent::new(WritePath::Duplicate);
        e.set_stage(Stage::Digest, 15);
        e.set_stage(Stage::Compare, 0); // a real 0 ns observation
        assert_eq!(e.stage_ns(Stage::Digest), Some(15));
        assert_eq!(e.stage_ns(Stage::Compare), Some(0));
        assert_eq!(e.stage_ns(Stage::ArrayWrite), None);
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
        }
        assert_eq!(Stage::from_name("bogus"), None);
    }

    #[test]
    fn collector_aggregates_paths_and_stages() {
        let mut c = StageCollector::default();
        let mut dup = WriteEvent::new(WritePath::Duplicate);
        dup.predicted_dup = true;
        dup.set_stage(Stage::Digest, 15);
        dup.set_stage(Stage::VerifyRead, 75);
        let mut stored = WriteEvent::new(WritePath::Stored);
        stored.pna_skip = true;
        stored.set_stage(Stage::Digest, 15);
        stored.set_stage(Stage::ArrayWrite, 300);
        c.record(&dup);
        c.record(&stored);
        c.record(&stored);

        let b = &c.breakdown;
        assert_eq!(b.writes(), 3);
        assert_eq!(b.duplicate_writes, 1);
        assert_eq!(b.stored_writes, 2);
        assert_eq!(b.predicted_dup, 1);
        assert_eq!(b.pna_skips, 2);
        assert_eq!(b.stage(Stage::Digest).count(), 3);
        assert_eq!(b.stage(Stage::VerifyRead).count(), 1);
        assert_eq!(b.stage(Stage::ArrayWrite).count(), 2);
        assert_eq!(b.stage(Stage::Encrypt).count(), 0);
    }

    #[test]
    fn breakdown_merge_matches_sequential() {
        let mut e = WriteEvent::new(WritePath::Stored);
        e.set_stage(Stage::Encrypt, 97);
        let mut a = StageBreakdown::default();
        let mut b = StageBreakdown::default();
        let mut c = StageBreakdown::default();
        a.observe(&e);
        b.observe(&e);
        c.observe(&e);
        c.observe(&e);
        a.merge(&b);
        assert_eq!(a, c);
    }
}
