//! DeWrite: deduplicating writes for encrypted non-volatile main memory.
//!
//! This crate is the primary contribution of the reproduction — a faithful
//! implementation of the MICRO'18 DeWrite design plus every baseline it is
//! evaluated against:
//!
//! | Component | Paper section | Module |
//! |-----------|---------------|--------|
//! | 3-bit history predictor | §III-A | [`HistoryPredictor`] |
//! | Hash / address-mapping / inverted / FSM tables | §III-B2 | [`tables`], [`DedupIndex`] |
//! | DeWrite controller (parallelism, PNA, colocation) | §III | [`DeWrite`] |
//! | Traditional secure NVM (CME, no dedup) | §IV-A | [`CmeBaseline`] |
//! | Traditional crypto-fingerprint dedup | §III-B1 | [`TraditionalDedup`] |
//! | DCW / FNW / DEUCE / Silent Shredder | §IV-B | [`bitlevel`] |
//! | Trace-driven simulator + reports | §IV | [`Simulator`], [`RunReport`] |
//!
//! # Quick start
//!
//! ```
//! use dewrite_core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
//! use dewrite_nvm::LineAddr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = DeWrite::new(
//!     SystemConfig::for_lines(4096),
//!     DeWriteConfig::paper(),
//!     b"a 16-byte secret",
//! );
//! let page = vec![0xCD; 256];
//! mem.write(LineAddr::new(10), &page, 0)?;
//! let dup = mem.write(LineAddr::new(11), &page, 1_000)?; // same content
//! assert!(dup.eliminated); // the NVM write never happened
//! assert_eq!(mem.read(LineAddr::new(11), 2_000)?.data, page);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitlevel;
pub mod colocate;
mod compare;
mod config;
mod dedup;
pub mod journal;
pub mod json;
mod metrics;
mod predictor;
mod schemes;
#[doc(hidden)]
pub mod seed;
mod sim;
mod snapshot;
pub mod tables;
pub mod trace;

pub use bitlevel::{
    dcw_flips, fnw_flips, CmeLine, DeuceLine, DEUCE_EPOCH, DEUCE_WORD_BYTES, FNW_GROUP_BITS,
};
pub use colocate::{ColocatedStore, ColocationStats};
pub use compare::{lines_equal, lines_equal_chunked, lines_equal_portable};
pub use config::{
    BitEncoding, DeWriteConfig, DigestMode, MetaCacheConfig, MetadataPersistence, SystemConfig,
    WriteMode,
};
pub use dedup::{DedupIndex, DupLookup, WriteOutcome};
pub use dewrite_mem::Replacement;
pub use journal::MetaOp;
pub use json::Json;
pub use metrics::RunReport;
pub use predictor::HistoryPredictor;
pub use schemes::{
    BaseMetrics, CmeBaseline, DeWrite, DeWriteCacheStats, DeWriteMetrics, ReadResult, SecureMemory,
    SilentShredder, TraditionalDedup, WriteResult,
};
pub use sim::Simulator;
pub use snapshot::{Snapshot, MAX_SNAPSHOT_LINES, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use trace::{EventSink, Stage, StageBreakdown, StageCollector, WriteEvent, WritePath};
