//! Hot data-structure microbenchmarks: the dedup index, the history
//! predictor, the metadata cache, and trace generation.

use criterion::{criterion_group, criterion_main, Criterion};
use dewrite_core::{DedupIndex, HistoryPredictor};
use dewrite_mem::{CacheConfig, MetadataCache};
use dewrite_nvm::LineAddr;
use dewrite_trace::{app_by_name, TraceGenerator};

fn bench_dedup_index(c: &mut Criterion) {
    c.bench_function("dedup_index_store_and_lookup", |b| {
        let mut idx = DedupIndex::new(1 << 16);
        let mut i = 0u64;
        b.iter(|| {
            let digest = i % 4096;
            let addr = LineAddr::new(i % (1 << 16));
            let hit = idx
                .candidates(digest)
                .first()
                .map(|e| e.real)
                .filter(|_| i.is_multiple_of(2));
            match hit {
                Some(real) if idx.reference_of(real).is_some_and(|r| r < 255) => {
                    idx.apply_duplicate(addr, real);
                }
                _ => match idx.resolve(addr) {
                    None => {
                        idx.apply_store(addr, digest);
                    }
                    Some(real) if idx.reference_of(real).is_some() => {
                        idx.apply_store(addr, digest);
                    }
                    Some(_) => {}
                },
            }
            i += 1;
        });
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("history_predictor_record", |b| {
        let mut p = HistoryPredictor::new(3);
        let mut i = 0u64;
        b.iter(|| {
            p.record(i % 13 < 7);
            i += 1;
            p.predict_duplicate()
        });
    });
}

fn bench_metadata_cache(c: &mut Criterion) {
    c.bench_function("metadata_cache_access", |b| {
        let mut cache = MetadataCache::new(CacheConfig::with_capacity(64 * 1024));
        let mut i = 0u64;
        b.iter(|| {
            let key = (i * 2_654_435_761) % 100_000;
            if !cache.access(key, i.is_multiple_of(3)) {
                cache.insert(key, i.is_multiple_of(3));
            }
            i += 1;
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_generation_per_record", |b| {
        let profile = app_by_name("mcf").expect("known app");
        let mut gen = TraceGenerator::new(profile, 256, 1);
        b.iter(|| gen.next().expect("infinite generator"));
    });
}

criterion_group!(
    benches,
    bench_dedup_index,
    bench_predictor,
    bench_metadata_cache,
    bench_trace_generation
);
criterion_main!(benches);
