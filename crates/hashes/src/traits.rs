//! The [`LineHasher`] abstraction and per-algorithm hardware cost model.

use crate::{Crc32, Crc32c, Md5, Sha1, StrongKeyed};

/// Hardware cost of computing one cache-line fingerprint.
///
/// Latencies follow Table I(a) of the paper; the CRC-32C entry reuses the
/// CRC-32 figure (same circuit structure, different polynomial). Energy
/// figures are rough per-line estimates used by the energy accounting: the
/// paper states that CRC + byte-compare energy is negligible next to AES
/// (5.9 nJ per 128-bit block, i.e. ~94 nJ per 256 B line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashCost {
    /// Latency of fingerprinting one 256 B line, in nanoseconds.
    pub latency_ns: u64,
    /// Width of the digest in bits.
    pub digest_bits: u32,
    /// Energy of fingerprinting one 256 B line, in picojoules.
    pub energy_pj: u64,
}

/// The fingerprinting functions evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HashAlgorithm {
    /// CRC-32 (IEEE 802.3, reflected) — DeWrite's light-weight hash.
    Crc32,
    /// CRC-32C (Castagnoli) — ablation alternative with the same cost.
    Crc32c,
    /// MD5 — traditional deduplication fingerprint (128-bit).
    Md5,
    /// SHA-1 — traditional deduplication fingerprint (160-bit).
    Sha1,
    /// BLAKE3-style keyed compression — the strong-digest mode's kernel.
    /// The index stores its 64-bit truncated tag and treats a tag match as
    /// a duplicate without a verify-read.
    StrongKeyed,
}

impl HashAlgorithm {
    /// The paper's Table I(a) algorithms, in display order. [`StrongKeyed`]
    /// (this reproduction's extension) is deliberately excluded: generic
    /// unkeyed hash-ablation sweeps iterate `ALL`, and the keyed digest is
    /// only meaningful with the verify-free commit path it enables.
    ///
    /// [`StrongKeyed`]: HashAlgorithm::StrongKeyed
    pub const ALL: [HashAlgorithm; 4] = [
        HashAlgorithm::Crc32,
        HashAlgorithm::Crc32c,
        HashAlgorithm::Md5,
        HashAlgorithm::Sha1,
    ];

    /// The hardware cost model for this algorithm (Table I(a); the
    /// strong-keyed entry is this reproduction's estimate for a pipelined
    /// ChaCha-round circuit — 7 rounds over six 64 B compressions, slower
    /// than a CRC tree but an order of magnitude cheaper than the iterated
    /// MD5/SHA-1 cores, and its 64-bit tag is what the dedup index stores).
    pub fn cost(self) -> HashCost {
        match self {
            HashAlgorithm::Crc32 | HashAlgorithm::Crc32c => HashCost {
                latency_ns: 15,
                digest_bits: 32,
                energy_pj: 50,
            },
            HashAlgorithm::Md5 => HashCost {
                latency_ns: 312,
                digest_bits: 128,
                energy_pj: 4_000,
            },
            HashAlgorithm::Sha1 => HashCost {
                latency_ns: 321,
                digest_bits: 160,
                energy_pj: 5_000,
            },
            HashAlgorithm::StrongKeyed => HashCost {
                latency_ns: 40,
                digest_bits: 64,
                energy_pj: 200,
            },
        }
    }

    /// Construct a boxed hasher for this algorithm.
    ///
    /// ```
    /// use dewrite_hashes::HashAlgorithm;
    /// let h = HashAlgorithm::Crc32.hasher();
    /// assert_eq!(h.digest(b"hello"), h.digest(b"hello"));
    /// ```
    pub fn hasher(self) -> Box<dyn LineHasher> {
        match self {
            HashAlgorithm::Crc32 => Box::new(Crc32::new()),
            HashAlgorithm::Crc32c => Box::new(Crc32c::new()),
            HashAlgorithm::Md5 => Box::new(Md5::new()),
            HashAlgorithm::Sha1 => Box::new(Sha1::new()),
            HashAlgorithm::StrongKeyed => Box::new(StrongKeyed::new()),
        }
    }
}

impl std::fmt::Display for HashAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            HashAlgorithm::Crc32 => "CRC-32",
            HashAlgorithm::Crc32c => "CRC-32C",
            HashAlgorithm::Md5 => "MD5",
            HashAlgorithm::Sha1 => "SHA-1",
            HashAlgorithm::StrongKeyed => "Strong-Keyed",
        };
        f.write_str(name)
    }
}

/// A fingerprinting function over cache-line contents.
///
/// Implementations compute real digests; for digests wider than 64 bits
/// ([`Md5`], [`Sha1`]) the value returned by [`digest`](Self::digest) is the
/// leading 64 bits of the full digest, which is what a hash-table index would
/// consume. Full digests remain available from the concrete types.
///
/// The trait is object-safe so heterogeneous experiment sweeps can hold
/// `Box<dyn LineHasher>`.
pub trait LineHasher: Send + Sync {
    /// Which algorithm this hasher implements.
    fn algorithm(&self) -> HashAlgorithm;

    /// Fingerprint `data`, returning (up to) the leading 64 bits of the
    /// digest.
    fn digest(&self, data: &[u8]) -> u64;

    /// The hardware cost of one invocation.
    fn cost(&self) -> HashCost {
        self.algorithm().cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(HashAlgorithm::Crc32.to_string(), "CRC-32");
        assert_eq!(HashAlgorithm::Sha1.to_string(), "SHA-1");
        assert_eq!(HashAlgorithm::Md5.to_string(), "MD5");
        assert_eq!(HashAlgorithm::Crc32c.to_string(), "CRC-32C");
    }

    #[test]
    fn boxed_hashers_disagree_on_same_input() {
        // Different algorithms should (virtually always) produce different
        // digests for the same input; use a fixed input to keep this
        // deterministic.
        let input = b"the quick brown fox jumps over the lazy dog";
        let digests: Vec<u64> = HashAlgorithm::ALL
            .iter()
            .map(|a| a.hasher().digest(input))
            .collect();
        for i in 0..digests.len() {
            for j in (i + 1)..digests.len() {
                assert_ne!(digests[i], digests[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn trait_objects_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn LineHasher>();
    }
}
