//! Offline drop-in subset of the `crossbeam-queue` API.
//!
//! The build environment has no registry access, so this shim vendors the
//! one type the workspace needs: [`ArrayQueue`], a bounded multi-producer
//! multi-consumer queue based on Dmitry Vyukov's bounded MPMC algorithm
//! (the same design the real crate uses). Push and pop are lock-free: each
//! is a CAS on a position counter plus one release-store on the slot's
//! sequence stamp; a full or empty queue is detected without blocking.
//!
//! Slot protocol: slot `i` carries a sequence stamp. A stamp equal to the
//! producer's position means "empty, claim me by CAS-ing the position";
//! after writing the value the producer stores `pos + 1` ("full"). A
//! consumer at position `pos` expects stamp `pos + 1`, takes the value and
//! stores `pos + cap` — the stamp the slot must show for the producer that
//! will next wrap around to it.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pad the head and tail counters to separate cache lines so producers and
/// consumers do not false-share.
#[repr(align(128))]
struct CachePadded<T>(T);

struct Slot<T> {
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC queue.
pub struct ArrayQueue<T> {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    buffer: Box<[Slot<T>]>,
    cap: usize,
}

// Values move through `UnsafeCell`s guarded by the slot stamps, so the
// queue is as thread-safe as the element type allows.
unsafe impl<T: Send> Send for ArrayQueue<T> {}
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// A queue holding at most `cap` elements.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ArrayQueue capacity must be non-zero");
        let buffer: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                stamp: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        ArrayQueue {
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            buffer,
            cap,
        }
    }

    /// Maximum number of elements the queue holds.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Attempt to push, returning the value back if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[tail % self.cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot until the stamp is published.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if stamp.wrapping_add(self.cap) == tail.wrapping_add(1) {
                // One full lap behind: the slot still holds an unconsumed
                // value, i.e. the queue is full.
                return Err(value);
            } else {
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempt to pop; `None` when the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[head % self.cap];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == head.wrapping_add(1) {
                match self.head.0.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.stamp
                            .store(head.wrapping_add(self.cap), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => head = current,
                }
            } else if stamp == head {
                // The producer for this slot has not finished (or the queue
                // is empty).
                return None;
            } else {
                head = self.head.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Push up to `buf.len()` elements from the front of `buf` in FIFO
    /// order, reserving each contiguous free run with a **single tail CAS**
    /// instead of one CAS per element. Pushed elements are drained from
    /// `buf`; the count pushed is returned (`0` when the queue is full).
    ///
    /// The Vyukov slot protocol is preserved exactly: the scan only trusts
    /// a slot whose stamp equals its position (free for this lap), and the
    /// tail CAS claims the whole run atomically — positions past the
    /// current tail cannot have been claimed by any other producer, and a
    /// successful CAS makes the run exclusively ours before any value is
    /// written. Each slot's stamp is still published individually with a
    /// release store, so consumers observe values in order as they land.
    pub fn push_batch(&self, buf: &mut Vec<T>) -> usize {
        let mut pushed_total = 0;
        while !buf.is_empty() {
            let tail = self.tail.0.load(Ordering::Relaxed);
            // Length of the free run starting at `tail`, capped by the
            // remaining input and the queue capacity.
            let want = buf.len().min(self.cap);
            let mut n = 0;
            while n < want {
                let pos = tail.wrapping_add(n);
                let stamp = self.buffer[pos % self.cap].stamp.load(Ordering::Acquire);
                if stamp == pos {
                    n += 1;
                } else {
                    break;
                }
            }
            if n == 0 {
                // Full (or a consumer is mid-pop on the next slot): report
                // what we managed; the caller backs off and retries.
                return pushed_total;
            }
            match self.tail.0.compare_exchange(
                tail,
                tail.wrapping_add(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    for (k, value) in buf.drain(..n).enumerate() {
                        let pos = tail.wrapping_add(k);
                        let slot = &self.buffer[pos % self.cap];
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(pos.wrapping_add(1), Ordering::Release);
                    }
                    pushed_total += n;
                }
                // Another producer moved the tail; rescan from the new one.
                Err(_) => continue,
            }
        }
        pushed_total
    }

    /// Pop up to `max` elements into `out` in FIFO order, reserving the
    /// ready run with a **single head CAS** instead of one CAS per element.
    /// Returns the count popped (`0` when the queue is empty).
    ///
    /// The scan only trusts slots whose stamp equals `pos + 1` (value
    /// published); the head CAS claims the whole run atomically, after
    /// which no other consumer can reach those positions, so the values
    /// read are exactly the ones whose publication the acquiring stamp
    /// loads observed.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        loop {
            let head = self.head.0.load(Ordering::Relaxed);
            let want = max.min(self.cap);
            let mut n = 0;
            while n < want {
                let pos = head.wrapping_add(n);
                let stamp = self.buffer[pos % self.cap].stamp.load(Ordering::Acquire);
                if stamp == pos.wrapping_add(1) {
                    n += 1;
                } else {
                    break;
                }
            }
            if n == 0 {
                return 0;
            }
            match self.head.0.compare_exchange(
                head,
                head.wrapping_add(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    out.reserve(n);
                    for k in 0..n {
                        let pos = head.wrapping_add(k);
                        let slot = &self.buffer[pos % self.cap];
                        out.push(unsafe { (*slot.value.get()).assume_init_read() });
                        slot.stamp
                            .store(pos.wrapping_add(self.cap), Ordering::Release);
                    }
                    return n;
                }
                // Another consumer moved the head; rescan from the new one.
                Err(_) => continue,
            }
        }
    }

    /// Number of elements currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        loop {
            let tail = self.tail.0.load(Ordering::SeqCst);
            let head = self.head.0.load(Ordering::SeqCst);
            // Consistent only if tail did not move while we read head.
            if self.tail.0.load(Ordering::SeqCst) == tail {
                return tail.wrapping_sub(head).min(self.cap);
            }
        }
    }

    /// Whether the queue is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is full (racy snapshot).
    pub fn is_full(&self) -> bool {
        self.len() == self.cap
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("capacity", &self.cap)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let q = ArrayQueue::new(4);
        assert!(q.is_empty());
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wraps_many_laps() {
        let q = ArrayQueue::new(3);
        for i in 0..1000 {
            q.push(i).unwrap();
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drops_unconsumed_elements() {
        // The queue owns in-flight elements; dropping it must drop them
        // (the Rc strong count is the drop counter).
        let counted = std::rc::Rc::new(());
        struct Holder(#[allow(dead_code)] std::rc::Rc<()>);
        let q = ArrayQueue::new(4);
        q.push(Holder(counted.clone())).ok();
        q.push(Holder(counted.clone())).ok();
        drop(q);
        assert_eq!(std::rc::Rc::strong_count(&counted), 1);
    }

    #[test]
    fn mpmc_conserves_elements() {
        const PER_PRODUCER: u64 = 20_000;
        const PRODUCERS: u64 = 4;
        let q = ArrayQueue::new(64);
        let sum = AtomicUsize::new(0);
        let received = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let sum = &sum;
                let received = &received;
                s.spawn(move || loop {
                    match q.pop() {
                        Some(v) => {
                            sum.fetch_add(v as usize, Ordering::Relaxed);
                            if received.fetch_add(1, Ordering::Relaxed) + 1
                                == (PRODUCERS * PER_PRODUCER) as usize
                            {
                                break;
                            }
                        }
                        None => {
                            if received.load(Ordering::Relaxed)
                                >= (PRODUCERS * PER_PRODUCER) as usize
                            {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(received.load(Ordering::Relaxed) as u64, n);
        assert_eq!(sum.load(Ordering::Relaxed) as u64, n * (n - 1) / 2);
    }

    #[test]
    fn batch_ops_are_fifo_and_partial_on_full() {
        let q = ArrayQueue::new(4);
        let mut input: Vec<u32> = (0..6).collect();
        // Only 4 fit; the rest stay in the input buffer.
        assert_eq!(q.push_batch(&mut input), 4);
        assert_eq!(input, vec![4, 5]);
        assert!(q.is_full());
        assert_eq!(q.push_batch(&mut input), 0);

        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        // Space freed: the remaining input now fits.
        assert_eq!(q.push_batch(&mut input), 2);
        assert!(input.is_empty());
        assert_eq!(q.pop_batch(&mut out, 100), 3);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.pop_batch(&mut out, 100), 0);
    }

    #[test]
    fn batch_ops_wrap_many_laps() {
        let q = ArrayQueue::new(3);
        let mut expect = 0u64;
        for round in 0..500u64 {
            let mut input: Vec<u64> = (0..=(round % 3)).map(|k| round * 10 + k).collect();
            let n = input.len();
            assert_eq!(q.push_batch(&mut input), n);
            let mut out = Vec::new();
            assert_eq!(q.pop_batch(&mut out, n), n);
            for v in out {
                assert!(v >= expect);
                expect = v;
            }
        }
    }

    #[test]
    fn batch_and_single_ops_interleave() {
        let q = ArrayQueue::new(8);
        q.push(0).unwrap();
        let mut input = vec![1, 2, 3];
        assert_eq!(q.push_batch(&mut input), 3);
        q.push(4).unwrap();
        assert_eq!(q.pop(), Some(0));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 2), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn mpmc_batch_conserves_elements() {
        const PER_PRODUCER: u64 = 12_000;
        const PRODUCERS: u64 = 3;
        const CHUNK: u64 = 7;
        let q = ArrayQueue::new(32);
        let sum = AtomicUsize::new(0);
        let received = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    let mut staged = Vec::new();
                    for i in 0..PER_PRODUCER {
                        staged.push(p * PER_PRODUCER + i);
                        if staged.len() as u64 == CHUNK || i + 1 == PER_PRODUCER {
                            while !staged.is_empty() {
                                if q.push_batch(&mut staged) == 0 {
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let sum = &sum;
                let received = &received;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        out.clear();
                        let n = q.pop_batch(&mut out, 5);
                        if n == 0 {
                            if received.load(Ordering::Relaxed)
                                >= (PRODUCERS * PER_PRODUCER) as usize
                            {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        }
                        for &v in &out {
                            sum.fetch_add(v as usize, Ordering::Relaxed);
                        }
                        received.fetch_add(n, Ordering::Relaxed);
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(received.load(Ordering::Relaxed) as u64, n);
        assert_eq!(sum.load(Ordering::Relaxed) as u64, n * (n - 1) / 2);
    }

    #[test]
    fn spsc_batch_preserves_order_across_threads() {
        const N: u32 = 30_000;
        let q = ArrayQueue::new(16);
        std::thread::scope(|s| {
            let q = &q;
            s.spawn(move || {
                let mut staged = Vec::new();
                for i in 0..N {
                    staged.push(i);
                    if staged.len() == 6 || i + 1 == N {
                        while !staged.is_empty() {
                            if q.push_batch(&mut staged) == 0 {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            s.spawn(move || {
                let mut expect = 0;
                let mut out = Vec::new();
                while expect < N {
                    out.clear();
                    if q.pop_batch(&mut out, 4) == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    for &v in &out {
                        assert_eq!(v, expect);
                        expect += 1;
                    }
                }
            });
        });
    }

    #[test]
    fn spsc_preserves_order_across_threads() {
        const N: u32 = 50_000;
        let q = ArrayQueue::new(16);
        std::thread::scope(|s| {
            let q = &q;
            s.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    while let Err(back) = q.push(v) {
                        v = back;
                        std::hint::spin_loop();
                    }
                }
            });
            s.spawn(move || {
                let mut expect = 0;
                while expect < N {
                    if let Some(v) = q.pop() {
                        assert_eq!(v, expect);
                        expect += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        });
    }
}
