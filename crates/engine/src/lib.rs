//! `dewrite-engine`: a sharded, multi-threaded memory-controller service
//! over the DeWrite dedup pipeline.
//!
//! The paper models one memory controller; production-scale encrypted NVMM
//! needs several operating concurrently. This crate partitions the line
//! space across N controller shards by address interleaving. Each
//! [`ShardController`] exclusively owns its slice's dedup state — hash +
//! inverted-hash tables (implicitly sharded by digest, since a digest only
//! lands where its address routed), address map + colocated CME counters
//! (sharded by line address), a metadata cache, a 3-bit predictor, and a
//! lock-free atomic-bitmap free-space map — so shards never share mutable
//! state and never take a lock.
//!
//! Work arrives through bounded per-shard MPSC queues with back-pressure
//! ([`run`]); per-shard simulated reports fold into one deterministic
//! aggregate via `RunReport::merge_all`. The `loadgen` binary drives
//! closed- and open-loop clients against 1..=16 shards and emits
//! `BENCH_engine.json`, including the **digest-sharding cost**: a shard
//! only dedups against content written through it, so the sharded dedup
//! rate trails the global (1-shard) rate; the delta is reported per app.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod shard;

pub use engine::{run, EngineConfig, EngineRun, Pacing, Request, ShardSummary};
pub use shard::{FsmPolicy, ShardController, ShardWrite, MAX_CANDIDATE_COMPARES};
