//! A simple in-order core model for IPC accounting.
//!
//! The paper's premise (§III) is that in *persistent* memory, writes sit on
//! the critical path: ordering is enforced with cache-line flushes and
//! fences, so the processor stalls until each memory write completes, and
//! reads stall the pipeline as demand misses always have. This model charges
//! one base cycle per instruction plus the full memory latency (converted to
//! cycles) for every stalling access, which is exactly the mechanism that
//! turns DeWrite's latency savings into the IPC gains of Fig. 17.

/// Core clock and pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Core frequency in GHz (cycles per nanosecond).
    pub freq_ghz: f64,
    /// Base cycles per instruction when not stalled on memory.
    pub base_cpi: f64,
}

impl CoreConfig {
    /// The paper-style configuration: 2 GHz, CPI 1.
    pub fn paper() -> Self {
        CoreConfig {
            freq_ghz: 2.0,
            base_cpi: 1.0,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper()
    }
}

/// Running instruction/cycle totals for one simulated core.
///
/// ```
/// use dewrite_mem::{CoreConfig, CoreModel};
///
/// let mut core = CoreModel::new(CoreConfig::paper());
/// core.execute(1_000);
/// core.stall_ns(500); // a persist-ordered write completing in 500 ns
/// assert!(core.ipc() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    config: CoreConfig,
    instructions: u64,
    cycles: f64,
    stall_cycles: f64,
}

impl CoreModel {
    /// A fresh core at cycle zero.
    pub fn new(config: CoreConfig) -> Self {
        assert!(config.freq_ghz > 0.0, "frequency must be positive");
        assert!(config.base_cpi > 0.0, "base CPI must be positive");
        CoreModel {
            config,
            instructions: 0,
            cycles: 0.0,
            stall_cycles: 0.0,
        }
    }

    /// Retire `n` instructions at the base CPI.
    pub fn execute(&mut self, n: u32) {
        self.instructions += u64::from(n);
        self.cycles += f64::from(n) * self.config.base_cpi;
    }

    /// Stall the pipeline for a memory access taking `ns` nanoseconds.
    pub fn stall_ns(&mut self, ns: u64) {
        let cycles = ns as f64 * self.config.freq_ghz;
        self.cycles += cycles;
        self.stall_cycles += cycles;
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total elapsed cycles.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Cycles spent stalled on memory.
    pub fn stall_cycles(&self) -> f64 {
        self.stall_cycles
    }

    /// Elapsed wall-clock time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.cycles / self.config.freq_ghz
    }

    /// Instructions per cycle; zero before any work.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_compute_hits_base_ipc() {
        let mut c = CoreModel::new(CoreConfig::paper());
        c.execute(10_000);
        assert!((c.ipc() - 1.0).abs() < 1e-12);
        assert_eq!(c.instructions(), 10_000);
        assert_eq!(c.stall_cycles(), 0.0);
    }

    #[test]
    fn stalls_reduce_ipc() {
        let mut c = CoreModel::new(CoreConfig::paper());
        c.execute(1_000);
        let ipc_before = c.ipc();
        c.stall_ns(300);
        assert!(c.ipc() < ipc_before);
        // 300 ns at 2 GHz = 600 cycles.
        assert!((c.stall_cycles() - 600.0).abs() < 1e-9);
        assert!((c.cycles() - 1_600.0).abs() < 1e-9);
    }

    #[test]
    fn elapsed_time_follows_frequency() {
        let mut c = CoreModel::new(CoreConfig {
            freq_ghz: 4.0,
            base_cpi: 1.0,
        });
        c.execute(4_000);
        assert!((c.elapsed_ns() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_core_reports_zero_ipc() {
        let c = CoreModel::new(CoreConfig::paper());
        assert_eq!(c.ipc(), 0.0);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_rejected() {
        let _ = CoreModel::new(CoreConfig {
            freq_ghz: 0.0,
            base_cpi: 1.0,
        });
    }

    #[test]
    fn lower_memory_latency_means_higher_ipc() {
        // The Fig. 17 mechanism in miniature.
        let run = |write_ns: u64| {
            let mut c = CoreModel::new(CoreConfig::paper());
            for _ in 0..100 {
                c.execute(50);
                c.stall_ns(write_ns);
            }
            c.ipc()
        };
        let dedup = run(75); // duplicate writes cost ~a read
        let baseline = run(300 + 96); // encrypt + write serially
        assert!(dedup > baseline * 2.0, "dedup {dedup} baseline {baseline}");
    }
}
