//! The sharded memory-controller service: request routing, bounded
//! per-shard queues with back-pressure, worker lifecycle, and the
//! deterministic report merge.
//!
//! # Concurrency model
//!
//! One or more producer threads route trace records to their owning
//! shards (`addr mod shards`) and push them onto the shards' bounded
//! [`ArrayQueue`]s in amortized batches ([`ArrayQueue::push_batch`]: one
//! reserve CAS per batch, not per request); a full queue exerts
//! **back-pressure** (the producer spins, yields, then sleep-parks with an
//! exponentially growing pause, and the blocked time is surfaced as
//! [`ShardSummary::producer_stall_ns`]). One worker thread per shard owns
//! its [`ShardController`] exclusively and drains up to
//! [`EngineConfig::batch`] requests per wakeup ([`ArrayQueue::pop_batch`]).
//! Queue claims are lock-free CAS operations and FSM allocation inside the
//! controller is an atomic-bitmap word scan — no mutex anywhere on the
//! hot path.
//!
//! # Determinism
//!
//! Each shard is fed by exactly one producer (shard `s` belongs to
//! producer `s mod producers`), each producer walks its slice of the trace
//! in order, and per-shard staging buffers are flushed FIFO — so every
//! shard receives its subsequence of the trace in order regardless of
//! producer count, batch size, or scheduling; each shard's simulated
//! [`RunReport`] is therefore a pure function of `(trace, seed, shard
//! count, coalescing window)`. Folding the per-shard reports **in shard
//! order** ([`RunReport::merge_all`]) yields a bit-identical merged
//! report across repeated multi-threaded runs. Host-side measurements
//! (wall clock, queue depths, host latency percentiles, producer stalls)
//! are inherently non-deterministic and are kept in [`ShardSummary`] /
//! [`EngineRun`] fields separate from the merged simulated report.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam_queue::ArrayQueue;
use dewrite_core::tables::MAX_REFERENCE;
use dewrite_core::{DigestMode, RunReport};
use dewrite_mem::{CacheStats, LatencyHistogram, Replacement};
use dewrite_trace::{shard_of_line, TraceOp, TraceRecord};

use dewrite_nvm::FsmStats;

use crate::shard::{FsmPolicy, ShardController};

/// How the producer issues requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Closed loop: issue as fast as the queues accept (back-pressure
    /// bounds the in-flight window to the queue depth).
    Closed,
    /// Open loop: issue on a fixed schedule of `ops_per_sec`, independent
    /// of service rate (queue back-pressure still blocks when full).
    Open {
        /// Target issue rate, operations per second.
        ops_per_sec: f64,
    },
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of controller shards (and worker threads).
    pub shards: usize,
    /// Line size in bytes.
    pub line_size: usize,
    /// Global workload-visible line space.
    pub lines: u64,
    /// Arena slots per shard (owned lines + saturated-residue slack).
    pub slots_per_shard: u64,
    /// Bounded request-queue capacity per shard.
    pub queue_depth: usize,
    /// Memory-encryption key.
    pub key: [u8; 16],
    /// Producer pacing mode.
    pub pacing: Pacing,
    /// Run a full cross-table [`ShardController::scrub`] on every shard
    /// after the drain.
    pub scrub: bool,
    /// Requests a worker drains per wakeup, and the producers' staging
    /// chunk (clamped to `queue_depth`). 1 reproduces the one-at-a-time
    /// seed behavior.
    pub batch: usize,
    /// Per-shard write-coalescing window
    /// ([`ShardController::set_coalesce_window`]); 0 (the default)
    /// disables coalescing and keeps reports bit-identical to the
    /// unbuffered controller.
    pub coalesce: usize,
    /// Submission threads; 0 picks one per two shards. Clamped to
    /// `1..=shards` (a shard is always fed by exactly one producer).
    pub producers: usize,
    /// Root directory for crash-consistent metadata persistence; each
    /// shard logs to `shard-<id>/` under it (epoch-batched WAL +
    /// checkpoints, flushed and checkpointed at drain). `None` (the
    /// default) disables persistence. Host-side only — the merged
    /// simulated report is bit-identical either way.
    pub persist_dir: Option<std::path::PathBuf>,
    /// Data writes per WAL epoch record when persistence is on.
    pub persist_epoch: u32,
    /// `fsync` the WAL on every epoch flush. Off by default: the engine is
    /// a measurement harness, and syncing per epoch would serialize the
    /// drain on the host disk.
    pub persist_sync: bool,
    /// Per-shard free-space-manager policy
    /// ([`ShardController::set_fsm_policy`]). The default
    /// [`FsmPolicy::Tree`] is placement-identical to [`FsmPolicy::Flat`],
    /// so the merged simulated report is bit-identical between the two;
    /// [`FsmPolicy::TreeWear`] trades that identity for reservation-local
    /// claims and wear rotation.
    pub fsm: FsmPolicy,
    /// Per-shard metadata-cache eviction policy
    /// ([`ShardController::set_cache_policy`]). The merged simulated
    /// report is bit-identical across shard/batch/producer counts for any
    /// fixed policy, but policies differ from each other: they change
    /// which digest lookups hit and therefore simulated latency.
    pub cache_policy: Replacement,
    /// Per-shard digest mode ([`ShardController::set_digest_mode`]):
    /// CRC-32 with verify-reads (the default, bit-identical to the seed)
    /// or the 64-bit strong keyed tag with verify-free commits. The merged
    /// simulated report is bit-identical across shard/batch/producer counts
    /// for any fixed mode.
    pub digest_mode: DigestMode,
}

impl EngineConfig {
    /// A closed-loop config sized for a workload of `lines` addressable
    /// lines and about `expected_writes` writes: each shard gets its share
    /// of the line space plus slack for copies stranded by reference
    /// saturation.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `lines` is zero.
    pub fn for_workload(shards: usize, line_size: usize, lines: u64, expected_writes: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(lines > 0, "need a non-empty line space");
        let owned = lines / shards as u64 + 1;
        // Saturated entries strand one extra copy per MAX_REFERENCE dups;
        // double the even-split estimate to absorb content skew.
        let slack = 2 * expected_writes / (u64::from(MAX_REFERENCE) * shards as u64) + 64;
        EngineConfig {
            shards,
            line_size,
            lines,
            slots_per_shard: owned + slack,
            queue_depth: 1024,
            key: *b"dewrite-repro-16",
            pacing: Pacing::Closed,
            scrub: false,
            batch: 64,
            coalesce: 0,
            producers: 0,
            persist_dir: None,
            persist_epoch: 64,
            persist_sync: false,
            fsm: FsmPolicy::default(),
            cache_policy: Replacement::default(),
            digest_mode: DigestMode::default(),
        }
    }

    /// The number of submission threads a run will actually use.
    pub fn effective_producers(&self) -> usize {
        let requested = if self.producers == 0 {
            self.shards.div_ceil(2)
        } else {
            self.producers
        };
        requested.clamp(1, self.shards)
    }
}

/// One queued request: a trace record plus its issue timestamp (ns since
/// run start) for host-latency accounting.
#[derive(Debug)]
pub struct Request {
    /// The operation.
    pub rec: TraceRecord,
    /// Nanoseconds since run start when the producer issued it.
    pub issued_ns: u64,
}

/// Everything one shard produced.
#[derive(Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: usize,
    /// Operations this shard processed.
    pub ops: u64,
    /// This shard's local dedup rate (eliminated / writes).
    pub dedup_rate: f64,
    /// The shard's simulated report (deterministic).
    pub report: RunReport,
    /// Host-side issue → completion latency (non-deterministic).
    pub host_latency: LatencyHistogram,
    /// Peak observed queue depth, including the popped request.
    pub queue_depth_peak: usize,
    /// Mean residual queue depth observed at each pop.
    pub queue_depth_mean: f64,
    /// Host nanoseconds the feeding producer spent blocked on this shard's
    /// full queue (non-deterministic).
    pub producer_stall_ns: u64,
    /// Allocator counters — claims, reservation refills, steals, scan
    /// steps (all-zero under [`FsmPolicy::Flat`]).
    pub fsm: FsmStats,
    /// Metadata-cache counters (deterministic: the cache sees the shard's
    /// digest stream in trace order). The small/main/ghost/scan fields
    /// stay zero except under [`Replacement::S3Fifo`].
    pub cache: CacheStats,
    /// Post-run scrub outcome, when requested: resident lines checked.
    pub scrub: Option<Result<u64, String>>,
}

/// The result of one engine run.
#[derive(Debug)]
pub struct EngineRun {
    /// Per-shard reports folded in shard order (deterministic).
    pub merged: RunReport,
    /// Per-shard detail, in shard order.
    pub shards: Vec<ShardSummary>,
    /// Wall-clock duration of the run, ns (non-deterministic).
    pub wall_ns: u64,
    /// Total operations processed.
    pub ops: u64,
}

impl EngineRun {
    /// Host throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.ops as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// The merged dedup rate (eliminated / writes) across all shards.
    pub fn dedup_rate(&self) -> f64 {
        self.merged.write_reduction()
    }

    /// Host latency across all shards (issue → completion).
    pub fn host_latency(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for s in &self.shards {
            all.merge(&s.host_latency);
        }
        all
    }
}

/// Spin briefly, then yield: progress even on a single hardware thread.
fn backoff(spins: &mut u32) {
    if *spins < 64 {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Spin → yield → sleep-park back-off with an exponentially growing pause
/// capped at 256 µs. A thread blocked on a full (or empty) lock-free queue
/// is waiting on whichever peer is the actual bottleneck — parking gets it
/// off the core so that peer can have it. Used by the engine producers,
/// the [`EngineService`](crate::EngineService) shard workers, and the
/// `dewrite-net` event loops.
#[derive(Debug, Default)]
pub struct Backoff {
    rounds: u32,
}

impl Backoff {
    const SPIN: u32 = 64;
    const YIELD: u32 = 16;
    const MAX_SLEEP_EXP: u32 = 8; // 2^8 µs = 256 µs

    /// A fresh back-off in the spinning stage.
    pub fn new() -> Self {
        Backoff { rounds: 0 }
    }

    /// Progress was made: restart from the spinning stage.
    pub fn reset(&mut self) {
        self.rounds = 0;
    }

    /// No progress: spin, then yield, then sleep with exponential pause.
    pub fn wait(&mut self) {
        if self.rounds < Self::SPIN {
            std::hint::spin_loop();
        } else if self.rounds < Self::SPIN + Self::YIELD {
            std::thread::yield_now();
        } else {
            let exp = (self.rounds - Self::SPIN - Self::YIELD).min(Self::MAX_SLEEP_EXP);
            std::thread::sleep(std::time::Duration::from_micros(1 << exp));
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Whether the back-off has escalated past spinning (it would yield or
    /// sleep on the next [`wait`](Self::wait)).
    pub fn is_parked(&self) -> bool {
        self.rounds >= Self::SPIN
    }
}

/// Push every staged request, in order, blocking while the queue is full.
/// Time spent blocked accrues to `stall_ns`.
fn flush_to_queue(queue: &ArrayQueue<Request>, staged: &mut Vec<Request>, stall_ns: &mut u64) {
    let mut parker = Backoff::new();
    while !staged.is_empty() {
        if queue.push_batch(staged) == 0 {
            let blocked = Instant::now();
            parker.wait();
            *stall_ns += blocked.elapsed().as_nanos() as u64;
        } else {
            parker.reset();
        }
    }
}

/// Run `records` through `config.shards` controller shards and fold the
/// results.
///
/// # Panics
///
/// Panics if a shard worker panics (e.g. arena exhaustion) or the config
/// is invalid.
pub fn run(config: &EngineConfig, app: &str, records: Vec<TraceRecord>) -> EngineRun {
    let shards = config.shards;
    assert!(shards > 0, "need at least one shard");
    assert!(
        config.queue_depth > 0,
        "queues must hold at least one request"
    );
    assert!(config.batch > 0, "workers must drain at least one request");
    let producers = config.effective_producers();
    let batch = config.batch;

    let queues: Vec<Arc<ArrayQueue<Request>>> = (0..shards)
        .map(|_| Arc::new(ArrayQueue::new(config.queue_depth)))
        .collect();
    let done = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let total_ops = records.len() as u64;

    // Partition the trace by owning producer (shard mod producers),
    // preserving trace order within each slice; records keep their global
    // trace index so open-loop pacing stays on the trace-wide schedule.
    let mut feeds: Vec<Vec<(u64, TraceRecord)>> = (0..producers).map(|_| Vec::new()).collect();
    for (i, rec) in records.into_iter().enumerate() {
        let shard = shard_of_line(rec.op.addr(), shards);
        feeds[shard % producers].push((i as u64, rec));
    }

    let mut summaries: Vec<ShardSummary> = Vec::with_capacity(shards);
    let mut stalls_by_shard = vec![0u64; shards];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|id| {
                let queue = Arc::clone(&queues[id]);
                let done = Arc::clone(&done);
                let mut ctrl = ShardController::new(
                    id,
                    shards,
                    config.slots_per_shard,
                    config.line_size,
                    &config.key,
                );
                ctrl.set_fsm_policy(config.fsm);
                ctrl.set_cache_policy(config.cache_policy);
                ctrl.set_digest_mode(config.digest_mode);
                ctrl.set_coalesce_window(config.coalesce);
                if let Some(root) = &config.persist_dir {
                    let opts = dewrite_persist::DurableOptions {
                        epoch_writes: config.persist_epoch,
                        checkpoint_epochs: 8,
                        sync: config.persist_sync,
                    };
                    ctrl.attach_persistence(&root.join(format!("shard-{id:02}")), opts)
                        .expect("attach shard metadata persistence");
                }
                let want_scrub = config.scrub;
                let app = app.to_string();
                scope.spawn(move || {
                    let mut host = LatencyHistogram::new();
                    let mut peak = 0usize;
                    let mut depth_sum = 0u64;
                    let mut samples = 0u64;
                    let mut spins = 0u32;
                    let mut buf: Vec<Request> = Vec::with_capacity(batch);
                    loop {
                        // One reserve CAS claims up to `batch` requests.
                        let n = queue.pop_batch(&mut buf, batch);
                        if n == 0 {
                            if done.load(Ordering::Acquire) && queue.is_empty() {
                                break;
                            }
                            backoff(&mut spins);
                            continue;
                        }
                        spins = 0;
                        // `len()` races with producer refills of the slots
                        // this pop just freed; the instantaneous depth can
                        // never actually exceed capacity, so clamp.
                        let residual = queue.len();
                        peak = peak.max((residual + n).min(queue.capacity()));
                        depth_sum += residual as u64;
                        samples += 1;
                        for req in buf.drain(..) {
                            let gap = req.rec.gap_instructions;
                            match req.rec.op {
                                TraceOp::Write { addr, data } => {
                                    ctrl.submit_write(addr, &data, gap);
                                }
                                TraceOp::Read { addr } => {
                                    ctrl.read(addr, gap);
                                }
                            }
                            let now = start.elapsed().as_nanos() as u64;
                            host.record(now.saturating_sub(req.issued_ns));
                        }
                    }
                    ctrl.flush_writes();
                    // End-of-drain durability point: flush the open WAL
                    // epoch and checkpoint, so scrub sees no unflushed
                    // epochs and the store recovers to the final state.
                    ctrl.persist_checkpoint()
                        .expect("shard metadata checkpoint at drain");
                    let scrub = want_scrub.then(|| ctrl.scrub());
                    ShardSummary {
                        shard: id,
                        fsm: ctrl.fsm_stats(),
                        cache: ctrl.cache_stats(),
                        ops: ctrl.ops(),
                        dedup_rate: ctrl.dedup_rate(),
                        report: ctrl.report(&app),
                        host_latency: host,
                        queue_depth_peak: peak,
                        queue_depth_mean: if samples == 0 {
                            0.0
                        } else {
                            depth_sum as f64 / samples as f64
                        },
                        producer_stall_ns: 0,
                        scrub,
                    }
                })
            })
            .collect();

        // Producers: each walks its slice of the trace in order and stages
        // requests per shard, flushing `chunk` at a time — every shard
        // still sees its subsequence of the trace in order (the
        // determinism invariant), since a shard is fed by exactly one
        // producer and the staging buffers are FIFO.
        let producer_handles: Vec<_> = feeds
            .into_iter()
            .map(|feed| {
                let queues: Vec<Arc<ArrayQueue<Request>>> = queues.iter().map(Arc::clone).collect();
                let pacing = config.pacing;
                let queue_depth = config.queue_depth;
                scope.spawn(move || -> Vec<u64> {
                    let mut stalls = vec![0u64; shards];
                    let mut staged: Vec<Vec<Request>> = (0..shards).map(|_| Vec::new()).collect();
                    // Open loop must put each record in flight at its
                    // scheduled instant; only closed loop may amortize.
                    let chunk = match pacing {
                        Pacing::Open { .. } => 1,
                        Pacing::Closed => batch.min(queue_depth),
                    };
                    for (issued, rec) in feed {
                        if let Pacing::Open { ops_per_sec } = pacing {
                            let target_ns = (issued as f64 / ops_per_sec * 1e9) as u64;
                            let mut spins = 0u32;
                            while (start.elapsed().as_nanos() as u64) < target_ns {
                                backoff(&mut spins);
                            }
                        }
                        let shard = shard_of_line(rec.op.addr(), shards);
                        staged[shard].push(Request {
                            rec,
                            issued_ns: start.elapsed().as_nanos() as u64,
                        });
                        if staged[shard].len() >= chunk {
                            flush_to_queue(&queues[shard], &mut staged[shard], &mut stalls[shard]);
                        }
                    }
                    for shard in 0..shards {
                        flush_to_queue(&queues[shard], &mut staged[shard], &mut stalls[shard]);
                    }
                    stalls
                })
            })
            .collect();

        for h in producer_handles {
            let stalls = h.join().expect("producer panicked");
            for (shard, ns) in stalls.into_iter().enumerate() {
                stalls_by_shard[shard] += ns;
            }
        }
        done.store(true, Ordering::Release);

        for h in handles {
            summaries.push(h.join().expect("shard worker panicked"));
        }
    });
    let wall_ns = start.elapsed().as_nanos() as u64;

    // Fold in fixed shard order: bit-identical regardless of scheduling.
    summaries.sort_by_key(|s| s.shard);
    for s in &mut summaries {
        s.producer_stall_ns = stalls_by_shard[s.shard];
    }
    let merged =
        RunReport::merge_all(summaries.iter().map(|s| &s.report)).expect("at least one shard");
    let processed: u64 = summaries.iter().map(|s| s.ops).sum();
    assert_eq!(processed, total_ops, "no request may be lost");
    EngineRun {
        merged,
        shards: summaries,
        wall_ns,
        ops: total_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewrite_trace::{app_by_name, TraceGenerator};

    /// A small mcf-derived trace (warmup + `ops` records) and the line
    /// space it needs.
    fn trace(ops: usize, ws_lines: u64, seed: u64) -> (Vec<TraceRecord>, u64) {
        let mut profile = app_by_name("mcf").expect("known app");
        profile.working_set_lines = ws_lines;
        profile.content_pool_size = 64;
        let mut gen = TraceGenerator::new(profile, 256, seed);
        let lines = gen.required_lines();
        let mut records = gen.warmup_records();
        records.extend(gen.by_ref().take(ops));
        (records, lines)
    }

    fn config_for(shards: usize, lines: u64, total_ops: usize) -> EngineConfig {
        EngineConfig::for_workload(shards, 256, lines, total_ops as u64)
    }

    #[test]
    fn all_ops_are_processed_across_shards() {
        let (records, lines) = trace(2_000, 512, 7);
        let total = records.len();
        let mut config = config_for(4, lines, total);
        config.scrub = true;
        let run = run(&config, "mcf", records);
        assert_eq!(run.ops, total as u64);
        assert_eq!(run.shards.len(), 4);
        assert_eq!(run.merged.base.writes + run.merged.base.reads, total as u64);
        for s in &run.shards {
            assert!(s.queue_depth_peak <= config.queue_depth);
            match &s.scrub {
                Some(Ok(_)) => {}
                other => panic!("shard {} scrub: {other:?}", s.shard),
            }
        }
    }

    #[test]
    fn merged_report_is_deterministic_across_runs() {
        let (records, lines) = trace(1_500, 256, 11);
        let config = config_for(3, lines, records.len());
        let a = run(&config, "mcf", records.clone());
        let b = run(&config, "mcf", records);
        assert_eq!(a.merged, b.merged, "same seed + shards => identical merge");
        assert_eq!(
            a.merged.to_json().to_string(),
            b.merged.to_json().to_string()
        );
    }

    #[test]
    fn single_shard_matches_sequential_controller() {
        let (records, lines) = trace(1_000, 128, 3);
        let config = config_for(1, lines, records.len());
        let threaded = run(&config, "mcf", records.clone());

        let mut ctrl = ShardController::new(0, 1, config.slots_per_shard, 256, &config.key);
        for rec in &records {
            match &rec.op {
                TraceOp::Write { addr, data } => {
                    ctrl.write(*addr, data, rec.gap_instructions);
                }
                TraceOp::Read { addr } => {
                    ctrl.read(*addr, rec.gap_instructions);
                }
            }
        }
        assert_eq!(threaded.merged, ctrl.report("mcf"));
    }

    #[test]
    fn batch_size_and_producer_count_do_not_change_the_merge() {
        let (records, lines) = trace(1_500, 256, 13);
        let mut config = config_for(4, lines, records.len());
        config.batch = 1;
        config.producers = 1;
        let baseline = run(&config, "mcf", records.clone());
        for (batch, producers) in [(8, 2), (64, 4), (64, 0)] {
            config.batch = batch;
            config.producers = producers;
            let other = run(&config, "mcf", records.clone());
            assert_eq!(
                baseline.merged, other.merged,
                "batch {batch} x producers {producers} changed the simulated report"
            );
        }
    }

    #[test]
    fn effective_producers_clamps_sanely() {
        let mut c = config_for(4, 64, 100);
        assert_eq!(c.effective_producers(), 2, "auto: one per two shards");
        c.producers = 9;
        assert_eq!(c.effective_producers(), 4, "never more than shards");
        c.shards = 1;
        assert_eq!(c.effective_producers(), 1);
    }

    #[test]
    fn coalescing_run_scrubs_clean_and_accounts_every_write() {
        let (records, lines) = trace(2_000, 64, 17); // small ws => rewrites
        let total = records.len();
        let mut config = config_for(2, lines, total);
        config.coalesce = 16;
        config.scrub = true;
        let r = run(&config, "mcf", records);
        assert_eq!(r.ops, total as u64);
        for s in &r.shards {
            assert!(matches!(s.scrub, Some(Ok(_))), "shard {} scrub", s.shard);
        }
        let b = &r.merged.base;
        assert!(b.coalesced_writes > 0, "tight working set must coalesce");
        assert_eq!(
            b.writes_eliminated + b.coalesced_writes + r.merged.nvm_data_writes,
            b.writes,
            "every write dedups, coalesces, or stores"
        );
        assert_eq!(r.merged.write_latency.count(), b.writes);
    }

    #[test]
    fn persistence_keeps_the_merge_bit_identical_and_recovers() {
        let (records, lines) = trace(1_500, 256, 21);
        let config = config_for(2, lines, records.len());
        let baseline = run(&config, "mcf", records.clone());

        let dir =
            std::env::temp_dir().join(format!("dewrite-engine-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = config;
        config.persist_dir = Some(dir.clone());
        config.persist_epoch = 32;
        config.scrub = true;
        let persisted = run(&config, "mcf", records);

        assert_eq!(
            baseline.merged.to_json().to_string(),
            persisted.merged.to_json().to_string(),
            "persistence must not change the merged simulated report"
        );
        let max_lines = lines + config.slots_per_shard * 2 + 16;
        for s in &persisted.shards {
            assert!(matches!(s.scrub, Some(Ok(_))), "shard {} scrub", s.shard);
            let fp = ShardController::persist_fingerprint(
                s.shard,
                2,
                config.slots_per_shard,
                config.line_size,
                config.digest_mode,
            );
            let shard_dir = dir.join(format!("shard-{:02}", s.shard));
            let (snap, stats) = dewrite_persist::recover_state(&shard_dir, fp, max_lines)
                .expect("shard store recovers");
            assert!(!stats.torn_tail, "drain checkpoint leaves a clean tail");
            // Coalescing is off, so every trace write was applied and
            // covered by the final checkpoint.
            assert_eq!(stats.writes_covered, s.report.base.writes);
            let scrubbed = match s.scrub {
                Some(Ok(n)) => n,
                _ => unreachable!(),
            };
            assert_eq!(
                snap.residents.len() as u64,
                scrubbed,
                "recovered resident set matches the scrubbed line count"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tree_fsm_merge_is_bit_identical_to_flat_across_shard_counts() {
        let (records, lines) = trace(2_000, 256, 19);
        for shards in [1usize, 2, 4] {
            let mut config = config_for(shards, lines, records.len());
            config.scrub = true;
            config.fsm = FsmPolicy::Flat;
            let flat = run(&config, "mcf", records.clone());
            config.fsm = FsmPolicy::Tree;
            let tree = run(&config, "mcf", records.clone());
            assert_eq!(
                flat.merged.to_json().to_string(),
                tree.merged.to_json().to_string(),
                "{shards} shards: tree FSM changed the simulated report"
            );
            for s in &tree.shards {
                assert!(matches!(s.scrub, Some(Ok(_))), "shard {} scrub", s.shard);
                assert_eq!(
                    s.fsm.claims, s.report.nvm_data_writes,
                    "every stored write is exactly one claim"
                );
            }
            assert!(
                flat.shards.iter().all(|s| s.fsm == FsmStats::default()),
                "the flat oracle reports no allocator stats"
            );
        }
    }

    #[test]
    fn merge_is_bit_identical_per_cache_policy_across_batch_and_producers() {
        // Determinism is per-policy: for a fixed eviction policy and shard
        // count the merged simulated report must not depend on batching or
        // producer scheduling. Policies are allowed to (and do) differ
        // from each other because they change which metadata lookups hit,
        // and shard count still moves dedup via digest sharding.
        let (records, lines) = trace(2_000, 256, 31);
        for policy in Replacement::ALL {
            for shards in [1usize, 4] {
                let mut reference: Option<String> = None;
                for (batch, producers) in [(1usize, 1usize), (64, 4), (64, 0)] {
                    let mut config = config_for(shards, lines, records.len());
                    config.batch = batch;
                    config.producers = producers;
                    config.cache_policy = policy;
                    let run = run(&config, "mcf", records.clone());
                    let json = run.merged.to_json().to_string();
                    match &reference {
                        None => reference = Some(json),
                        Some(r) => assert_eq!(
                            r, &json,
                            "{policy}/{shards} shards: batch {batch} x producers \
                             {producers} changed the merged report"
                        ),
                    }
                    for s in &run.shards {
                        if policy == Replacement::S3Fifo {
                            assert_eq!(
                                s.cache.hits,
                                s.cache.small_hits + s.cache.main_hits,
                                "S3-FIFO queue-hit split must cover all hits"
                            );
                        } else {
                            assert_eq!(s.cache.small_hits, 0, "{policy}");
                            assert_eq!(s.cache.main_hits, 0, "{policy}");
                            assert_eq!(s.cache.ghost_hits, 0, "{policy}");
                            assert_eq!(s.cache.scan_evictions, 0, "{policy}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merge_is_bit_identical_per_digest_mode_across_batch_and_producers() {
        // Same determinism contract along the digest-mode axis: for a fixed
        // mode and shard count the merged simulated report must not depend
        // on batching or producer scheduling. The two modes legitimately
        // differ from each other (verify-free commits skip the verify-read,
        // changing both latency and energy).
        let (records, lines) = trace(2_000, 256, 31);
        for mode in DigestMode::ALL {
            for shards in [1usize, 4] {
                let mut reference: Option<String> = None;
                for (batch, producers) in [(1usize, 1usize), (64, 4), (64, 0)] {
                    let mut config = config_for(shards, lines, records.len());
                    config.batch = batch;
                    config.producers = producers;
                    config.digest_mode = mode;
                    config.scrub = true;
                    let run = run(&config, "mcf", records.clone());
                    for s in &run.shards {
                        assert!(matches!(s.scrub, Some(Ok(_))), "shard {} scrub", s.shard);
                    }
                    let json = run.merged.to_json().to_string();
                    match &reference {
                        None => reference = Some(json),
                        Some(r) => assert_eq!(
                            r, &json,
                            "{mode}/{shards} shards: batch {batch} x producers \
                             {producers} changed the merged report"
                        ),
                    }
                    let dw = run.merged.dewrite.expect("engine reports dewrite metrics");
                    match mode {
                        DigestMode::Crc32Verify => {
                            assert_eq!(dw.assumed_dups, 0, "verify mode never assumes");
                        }
                        DigestMode::StrongKeyed => {
                            assert_eq!(
                                run.merged.base.verify_reads, 0,
                                "verify-free mode never issues the verify-read"
                            );
                            assert_eq!(
                                dw.assumed_dups, dw.dup_eliminated,
                                "every strong-mode elimination is an assumed duplicate"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tree_wear_fsm_scrubs_clean_and_matches_dedup_counters() {
        // Wear-rotated placement changes which slot a store lands in — so
        // flip bits and write energy may differ — but dedup decisions and
        // simulated latencies are placement-independent.
        let (records, lines) = trace(2_000, 128, 23);
        let mut config = config_for(2, lines, records.len());
        config.scrub = true;
        config.fsm = FsmPolicy::Flat;
        let flat = run(&config, "mcf", records.clone());
        config.fsm = FsmPolicy::TreeWear;
        let wear = run(&config, "mcf", records);
        for s in &wear.shards {
            assert!(matches!(s.scrub, Some(Ok(_))), "shard {} scrub", s.shard);
        }
        assert_eq!(wear.merged.base, flat.merged.base);
        assert_eq!(wear.merged.dewrite, flat.merged.dewrite);
        assert_eq!(wear.merged.cycles, flat.merged.cycles);
        assert_eq!(wear.merged.nvm_data_writes, flat.merged.nvm_data_writes);
        let refills: u64 = wear.shards.iter().map(|s| s.fsm.refills).sum();
        assert!(
            refills >= 2,
            "each shard's reservation refills at least once"
        );
    }

    #[test]
    fn open_loop_pacing_completes() {
        let (records, lines) = trace(300, 128, 5);
        let total = records.len();
        let mut config = config_for(2, lines, total);
        config.pacing = Pacing::Open {
            ops_per_sec: 2_000_000.0,
        };
        let run = run(&config, "mcf", records);
        assert_eq!(run.ops, total as u64);
    }

    #[test]
    fn tiny_queue_exerts_back_pressure_without_loss() {
        let (records, lines) = trace(1_000, 128, 9);
        let total = records.len();
        let mut config = config_for(2, lines, total);
        config.queue_depth = 2;
        let run = run(&config, "mcf", records);
        assert_eq!(run.ops, total as u64);
        for s in &run.shards {
            assert!(s.queue_depth_peak <= 2);
        }
    }
}
