//! The deduplication index: the four tables composed with their invariants.
//!
//! This is the functional heart of DeWrite's dedup logic. It answers "is
//! this content resident?" and applies the metadata transitions of duplicate
//! and non-duplicate writes, maintaining the invariants:
//!
//! 1. a physical line is *resident* iff the inverted table knows its digest
//!    iff the free-space table marks it occupied;
//! 2. every resident line has a hash-table entry with reference ≥ 1;
//! 3. every written initial address resolves to exactly one resident line,
//!    and (unless saturated) a resident line's reference equals the number
//!    of initial addresses resolving to it.
//!
//! Timing is *not* modeled here — the scheme layer mirrors each table touch
//! with metadata-cache traffic.

use dewrite_nvm::LineAddr;

use crate::compare::lines_equal;
use crate::tables::{AddrMapTable, FreeSpaceTable, HashTable, InvertedTable, MAX_REFERENCE};

/// Outcome of applying a write to the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The content was already resident; the NVM write is eliminated.
    Duplicate {
        /// The line holding the content.
        real: LineAddr,
        /// `true` when the address already mapped to this content (a silent
        /// store) — no metadata changed.
        silent: bool,
        /// A line released because its last reference moved to `real`.
        freed: Option<LineAddr>,
    },
    /// The content is new and must be written to `target`.
    Stored {
        /// The physical line to write.
        target: LineAddr,
        /// A line released by this write (its last reference went away).
        freed: Option<LineAddr>,
        /// Whether the write reused the address's current line in place.
        in_place: bool,
    },
}

/// Result of a duplicate lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DupLookup {
    /// The matching resident line, if content-identical and not saturated.
    pub matched: Option<LineAddr>,
    /// How many candidate lines were byte-compared (collision accounting).
    pub comparisons: u32,
}

/// The composed deduplication index.
#[derive(Debug, Clone)]
pub struct DedupIndex {
    hash_table: HashTable,
    addr_map: AddrMapTable,
    inverted: InvertedTable,
    fsm: FreeSpaceTable,
    written: Vec<bool>,
    domains: u64,
    dup_writes: u64,
    stored_writes: u64,
    false_matches: u64,
}

impl DedupIndex {
    /// An index over `lines` physical lines, all initially free.
    pub fn new(lines: u64) -> Self {
        Self::with_domains(lines, 1)
    }

    /// An index partitioned into `domains` contiguous, equal dedup domains:
    /// content never deduplicates across a domain boundary, and relocated
    /// lines stay inside their domain — the standard mitigation for
    /// cross-tenant dedup side channels.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is zero or exceeds `lines`.
    pub fn with_domains(lines: u64, domains: u64) -> Self {
        assert!(domains >= 1 && domains <= lines.max(1), "bad domain count");
        DedupIndex {
            hash_table: HashTable::new(),
            addr_map: AddrMapTable::new(lines),
            inverted: InvertedTable::new(lines),
            fsm: FreeSpaceTable::new(lines),
            written: vec![false; lines as usize],
            domains,
            dup_writes: 0,
            stored_writes: 0,
            false_matches: 0,
        }
    }

    /// The dedup domain of a line.
    pub fn domain_of(&self, line: LineAddr) -> u64 {
        domain_of_line(line.index(), self.domains, self.lines())
    }

    /// The exact preimage of [`domain_of`](Self::domain_of): line `i` is in
    /// `domain` iff `lo <= i < hi`. Ceiling division keeps the two
    /// consistent for uneven splits (floor boundaries would let relocation
    /// pick a target just outside the source's domain).
    fn domain_range(&self, domain: u64) -> (u64, u64) {
        let lines = u128::from(self.lines());
        let domains = u128::from(self.domains);
        (
            (u128::from(domain) * lines).div_ceil(domains) as u64,
            (u128::from(domain + 1) * lines).div_ceil(domains) as u64,
        )
    }

    /// Number of physical lines managed.
    pub fn lines(&self) -> u64 {
        self.fsm.lines()
    }

    /// Whether `init` has ever been written.
    pub fn is_written(&self, init: LineAddr) -> bool {
        self.written[init.index() as usize]
    }

    /// The physical line holding `init`'s data, or `None` if never written.
    pub fn resolve(&self, init: LineAddr) -> Option<LineAddr> {
        if self.is_written(init) {
            Some(self.addr_map.resolve(init))
        } else {
            None
        }
    }

    /// Search for a resident line with content equal to `data` under
    /// `digest`. `content_of` supplies the (decrypted) bytes of a candidate
    /// line; the scheme layer charges one NVM read per invocation.
    ///
    /// Saturated entries are skipped (§III-B2: a line at reference 255 is
    /// "highly referenced" and further duplicates are not deduplicated).
    pub fn lookup(
        &mut self,
        digest: u64,
        data: &[u8],
        mut content_of: impl FnMut(LineAddr) -> Vec<u8>,
    ) -> DupLookup {
        let mut comparisons = 0;
        let candidates = self.hash_table.candidates(digest);
        for &entry in &candidates {
            if entry.reference == MAX_REFERENCE {
                // Saturated: visible in the entry itself, skipped without a
                // comparison (§III-B2).
                self.hash_table.note_saturated_hit();
                continue;
            }
            comparisons += 1;
            if lines_equal(&content_of(entry.real), data) {
                return DupLookup {
                    matched: Some(entry.real),
                    comparisons,
                };
            }
            self.false_matches += 1;
        }
        DupLookup {
            matched: None,
            comparisons,
        }
    }

    /// Resident candidate entries for `digest`, for callers that drive the
    /// byte comparison themselves (the scheme layer, which must charge a
    /// timed NVM read per comparison).
    pub fn candidates(&self, digest: u64) -> Vec<crate::tables::HashEntry> {
        self.hash_table.candidates(digest).to_vec()
    }

    /// Like [`candidates`](Self::candidates), filtered to `init`'s dedup
    /// domain — with multiple domains, content never matches across a
    /// boundary.
    pub fn candidates_for(&self, digest: u64, init: LineAddr) -> Vec<crate::tables::HashEntry> {
        let domain = self.domain_of(init);
        self.hash_table
            .candidates(digest)
            .iter()
            .filter(|e| self.domain_of(e.real) == domain)
            .copied()
            .collect()
    }

    /// Like [`lookup`](Self::lookup) but without mutating any statistics —
    /// used for ground-truth accounting (e.g. counting duplicates missed by
    /// PNA skips).
    pub fn lookup_readonly(
        &self,
        digest: u64,
        data: &[u8],
        mut content_of: impl FnMut(LineAddr) -> Vec<u8>,
    ) -> Option<LineAddr> {
        self.hash_table
            .candidates(digest)
            .iter()
            .find(|e| e.reference != MAX_REFERENCE && lines_equal(&content_of(e.real), data))
            .map(|e| e.real)
    }

    /// Record a digest match whose byte comparison failed (scheme-driven
    /// candidate loops).
    pub(crate) fn note_false_match(&mut self) {
        self.false_matches += 1;
    }

    /// Record a duplicate declined due to reference saturation
    /// (scheme-driven candidate loops).
    pub(crate) fn note_saturated_skip(&mut self) {
        self.hash_table.note_saturated_hit();
    }

    /// Digest of the content resident at `real`, if resident.
    pub fn digest_of(&self, real: LineAddr) -> Option<u64> {
        self.inverted.digest_of(real)
    }

    /// Reference count of the resident line `real`.
    pub fn reference_of(&self, real: LineAddr) -> Option<u8> {
        let digest = self.inverted.digest_of(real)?;
        self.hash_table.reference(digest, real)
    }

    /// Recovery: install a resident line with reference 0; references are
    /// re-added as mappings are restored via
    /// [`restore_mapping`](Self::restore_mapping).
    pub(crate) fn restore_resident(&mut self, real: LineAddr, digest: u64) {
        self.fsm.occupy(real);
        self.inverted.set(real, digest);
        self.hash_table.insert_with_reference(digest, real, 0);
    }

    /// Recovery: re-link a written address to its resident line.
    ///
    /// # Panics
    ///
    /// Panics if `real` is not resident (callers validate first).
    pub(crate) fn restore_mapping(&mut self, init: LineAddr, real: LineAddr) {
        self.written[init.index() as usize] = true;
        if real != init {
            self.addr_map.map_to(init, real);
        }
        let digest = self
            .inverted
            .digest_of(real)
            .expect("restore_mapping target must be resident");
        let _ = self.hash_table.add_reference(digest, real);
    }

    fn unlink(&mut self, old: LineAddr) -> Option<LineAddr> {
        let digest = self
            .inverted
            .digest_of(old)
            .expect("unlink target must be resident");
        let remaining = self.hash_table.release_reference(digest, old);
        if remaining == 0 {
            self.inverted.clear(old);
            self.fsm.release(old);
            Some(old)
        } else {
            None
        }
    }

    /// Apply a *duplicate* write of `init` to the content at `real`
    /// (as returned by [`lookup`](Self::lookup)).
    ///
    /// # Panics
    ///
    /// Panics if `real` is not resident or its reference is saturated —
    /// callers must pass a fresh `lookup` match.
    pub fn apply_duplicate(&mut self, init: LineAddr, real: LineAddr) -> WriteOutcome {
        let digest = self
            .inverted
            .digest_of(real)
            .expect("duplicate target must be resident");
        let old = self.resolve(init);
        if old == Some(real) {
            self.dup_writes += 1;
            return WriteOutcome::Duplicate {
                real,
                silent: true,
                freed: None,
            };
        }
        let added = self.hash_table.add_reference(digest, real);
        assert!(added, "apply_duplicate on a saturated entry");
        let mut freed = None;
        if let Some(o) = old {
            freed = self.unlink(o);
        }
        if real == init {
            self.addr_map.unmap(init);
        } else {
            self.addr_map.map_to(init, real);
        }
        self.written[init.index() as usize] = true;
        self.dup_writes += 1;
        WriteOutcome::Duplicate {
            real,
            silent: false,
            freed,
        }
    }

    /// Apply a *non-duplicate* write of `init` with content `digest`.
    /// Chooses the target line (in place when `init`'s current line is
    /// solely owned, else a free line near `init`'s home) and installs all
    /// metadata. The caller then writes the encrypted data to `target`.
    ///
    /// # Panics
    ///
    /// Panics if memory is exhausted (cannot happen while every initial
    /// address holds at most one reference, which the index guarantees).
    pub fn apply_store(&mut self, init: LineAddr, digest: u64) -> WriteOutcome {
        let old = self.resolve(init);
        let mut freed = None;
        let (target, in_place) = match old {
            Some(o) if self.reference_of(o) == Some(1) => {
                // Sole owner: overwrite in place after cleaning the stale
                // hash entry.
                let stale = self.inverted.digest_of(o).expect("resident");
                self.hash_table.remove(stale, o);
                self.inverted.clear(o);
                (o, true)
            }
            other => {
                if let Some(o) = other {
                    freed = self.unlink(o);
                }
                // Note: lines referenced by *saturated* entries can never be
                // freed (their true count is unknown, §III-B2), so a
                // pathological workload that saturates many contents can
                // exhaust free space — real deployments provision spare
                // capacity or garbage-collect saturated lines offline.
                let (lo, hi) = self.domain_range(self.domain_of(init));
                let target = self
                    .fsm
                    .allocate_within(init, lo, hi)
                    .expect("free space exhausted (saturated-entry leak)");
                (target, false)
            }
        };
        self.fsm.occupy(target);
        self.hash_table.insert(digest, target);
        self.inverted.set(target, digest);
        if target == init {
            self.addr_map.unmap(init);
        } else {
            self.addr_map.map_to(init, target);
        }
        self.written[init.index() as usize] = true;
        self.stored_writes += 1;
        WriteOutcome::Stored {
            target,
            freed,
            in_place,
        }
    }

    /// Duplicate writes applied.
    pub fn dup_writes(&self) -> u64 {
        self.dup_writes
    }

    /// Non-duplicate writes applied.
    pub fn stored_writes(&self) -> u64 {
        self.stored_writes
    }

    /// Digest matches whose byte comparison failed (true CRC collisions,
    /// Fig. 6).
    pub fn false_matches(&self) -> u64 {
        self.false_matches
    }

    /// Duplicates skipped due to reference saturation.
    pub fn saturated_skips(&self) -> u64 {
        self.hash_table.saturated_hits()
    }

    /// Number of deduplicated (remapped) addresses.
    pub fn mapped_addresses(&self) -> usize {
        self.addr_map.len()
    }

    /// Number of resident physical lines.
    pub fn resident_lines(&self) -> usize {
        self.inverted.len()
    }

    /// Free physical lines remaining.
    pub fn free_lines(&self) -> u64 {
        self.fsm.free_lines()
    }

    /// Iterate over resident lines' reference counts (Fig. 7).
    pub fn reference_counts(&self) -> impl Iterator<Item = u8> + '_ {
        self.hash_table.iter().map(|(_, e)| e.reference)
    }

    /// Exhaustively check the index invariants (test/debug aid; O(lines)).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Residency bitmaps agree.
        for i in 0..self.lines() {
            let line = LineAddr::new(i);
            let resident = self.inverted.digest_of(line).is_some();
            let occupied = !self.fsm.is_free(line);
            if resident != occupied {
                return Err(format!(
                    "line {line}: resident={resident} occupied={occupied}"
                ));
            }
            if resident {
                let digest = self.inverted.digest_of(line).expect("checked");
                if self.hash_table.reference(digest, line).is_none() {
                    return Err(format!("line {line}: resident but not hash-indexed"));
                }
            }
        }
        // Reference counts match resolution counts (excluding saturated).
        let mut counts = std::collections::HashMap::new();
        for i in 0..self.lines() {
            let init = LineAddr::new(i);
            if let Some(real) = self.resolve(init) {
                *counts.entry(real.index()).or_insert(0u64) += 1;
            }
        }
        for (digest, entry) in self.hash_table.iter() {
            let actual = counts.get(&entry.real.index()).copied().unwrap_or(0);
            if entry.reference != MAX_REFERENCE && u64::from(entry.reference) != actual {
                return Err(format!(
                    "line {} (digest {digest:#x}): reference {} but {} resolvers",
                    entry.real, entry.reference, actual
                ));
            }
        }
        Ok(())
    }
}

/// Dedup domain of line `index` when `lines` lines split into `domains`
/// contiguous, equal-as-possible domains.
///
/// Widened to 128-bit intermediates: `index * domains` overflows u64 for
/// large address spaces (e.g. a 2^63-line index with 4 domains), which
/// would scatter lines into wrong domains and silently break the
/// cross-domain isolation guarantee.
pub(crate) fn domain_of_line(index: u64, domains: u64, lines: u64) -> u64 {
    ((index as u128 * domains as u128) / u128::from(lines.max(1))) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    /// A tiny plaintext shadow memory standing in for decryption.
    #[derive(Default)]
    struct Shadow {
        lines: HashMap<u64, Vec<u8>>,
    }

    impl Shadow {
        fn content(&self, real: LineAddr) -> Vec<u8> {
            self.lines.get(&real.index()).cloned().unwrap_or_default()
        }
        fn store(&mut self, real: LineAddr, data: &[u8]) {
            self.lines.insert(real.index(), data.to_vec());
        }
    }

    /// Drive a full write through lookup + apply, like a scheme would.
    fn write(
        idx: &mut DedupIndex,
        shadow: &mut Shadow,
        init: u64,
        data: &[u8],
        digest: u64,
    ) -> WriteOutcome {
        let lookup = idx.lookup(digest, data, |real| shadow.content(real));
        let outcome = match lookup.matched {
            Some(real) => idx.apply_duplicate(l(init), real),
            None => idx.apply_store(l(init), digest),
        };
        if let WriteOutcome::Stored { target, .. } = outcome {
            shadow.store(target, data);
        }
        idx.check_invariants().unwrap();
        outcome
    }

    #[test]
    fn first_write_goes_to_home() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        let out = write(&mut idx, &mut sh, 3, b"aaaa", 1);
        assert_eq!(
            out,
            WriteOutcome::Stored {
                target: l(3),
                freed: None,
                in_place: false
            }
        );
        assert_eq!(idx.resolve(l(3)), Some(l(3)));
        assert_eq!(idx.reference_of(l(3)), Some(1));
    }

    #[test]
    fn duplicate_is_eliminated_and_remapped() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        write(&mut idx, &mut sh, 0, b"same", 9);
        let out = write(&mut idx, &mut sh, 5, b"same", 9);
        assert_eq!(
            out,
            WriteOutcome::Duplicate {
                real: l(0),
                silent: false,
                freed: None
            }
        );
        assert_eq!(idx.resolve(l(5)), Some(l(0)));
        assert_eq!(idx.reference_of(l(0)), Some(2));
        assert_eq!(idx.mapped_addresses(), 1);
        // Line 5's home is still free — never used.
        assert_eq!(idx.free_lines(), 15);
    }

    #[test]
    fn silent_store_changes_nothing() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        write(&mut idx, &mut sh, 0, b"data", 7);
        let out = write(&mut idx, &mut sh, 0, b"data", 7);
        assert_eq!(
            out,
            WriteOutcome::Duplicate {
                real: l(0),
                silent: true,
                freed: None
            }
        );
        assert_eq!(idx.reference_of(l(0)), Some(1));
    }

    #[test]
    fn sole_owner_overwrites_in_place() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        write(&mut idx, &mut sh, 2, b"old!", 1);
        let out = write(&mut idx, &mut sh, 2, b"new!", 2);
        assert_eq!(
            out,
            WriteOutcome::Stored {
                target: l(2),
                freed: None,
                in_place: true
            }
        );
        // Stale hash was cleaned: old content no longer matches anywhere.
        let lookup = idx.lookup(1, b"old!", |r| sh.content(r));
        assert_eq!(lookup.matched, None);
    }

    #[test]
    fn shared_line_cannot_be_overwritten_in_place() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        write(&mut idx, &mut sh, 0, b"shared", 5);
        write(&mut idx, &mut sh, 1, b"shared", 5); // 1 → line 0, ref 2
                                                   // Address 0 overwrites: content at line 0 still referenced by 1.
        let out = write(&mut idx, &mut sh, 0, b"fresh!", 6);
        match out {
            WriteOutcome::Stored {
                target,
                freed,
                in_place,
            } => {
                assert_ne!(target, l(0), "must not clobber shared line");
                assert_eq!(freed, None);
                assert!(!in_place);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Address 1 still reads the shared content's line.
        assert_eq!(idx.resolve(l(1)), Some(l(0)));
        assert_eq!(idx.reference_of(l(0)), Some(1));
    }

    #[test]
    fn last_dereference_frees_the_line() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        write(&mut idx, &mut sh, 0, b"a", 1);
        write(&mut idx, &mut sh, 1, b"b", 2); // line 1
        write(&mut idx, &mut sh, 1, b"a", 1); // 1 remaps to line 0; line 1 freed in-place? no:
                                              // address 1 was sole owner of line 1, but this is a *duplicate*
                                              // write, so line 1 is unlinked and freed.
        assert_eq!(idx.resolve(l(1)), Some(l(0)));
        assert_eq!(idx.digest_of(l(1)), None);
        assert_eq!(idx.free_lines(), 15);
        assert_eq!(idx.reference_of(l(0)), Some(2));
    }

    #[test]
    fn collision_candidates_are_byte_checked() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        // Two different contents forced under the same digest.
        write(&mut idx, &mut sh, 0, b"aaaa", 42);
        let lookup = idx.lookup(42, b"bbbb", |r| sh.content(r));
        assert_eq!(lookup.matched, None);
        assert_eq!(lookup.comparisons, 1);
        assert_eq!(idx.false_matches(), 1);
        // Storing the colliding content keeps both in one bucket.
        idx.apply_store(l(1), 42);
        sh.store(l(1), b"bbbb");
        let hit = idx.lookup(42, b"bbbb", |r| sh.content(r));
        assert_eq!(hit.matched, Some(l(1)));
        idx.check_invariants().unwrap();
    }

    #[test]
    fn saturation_blocks_further_dedup() {
        let mut idx = DedupIndex::new(400);
        let mut sh = Shadow::default();
        write(&mut idx, &mut sh, 0, b"hot", 3);
        for i in 1..255 {
            let out = write(&mut idx, &mut sh, i, b"hot", 3);
            assert!(matches!(out, WriteOutcome::Duplicate { .. }), "i={i}");
        }
        assert_eq!(idx.reference_of(l(0)), Some(255));
        // The 256th writer is NOT deduplicated (reference would overflow).
        let out = write(&mut idx, &mut sh, 300, b"hot", 3);
        assert!(matches!(out, WriteOutcome::Stored { .. }));
        assert!(idx.saturated_skips() >= 1);
    }

    #[test]
    fn unwritten_addresses_resolve_to_none() {
        let idx = DedupIndex::new(4);
        assert_eq!(idx.resolve(l(2)), None);
        assert!(!idx.is_written(l(2)));
    }

    #[test]
    fn dedup_to_own_home_held_by_others() {
        let mut idx = DedupIndex::new(16);
        let mut sh = Shadow::default();
        // Address 0 writes content; address 1 dedups to line 0; address 0
        // overwrites (moves to a free line); now address 0 writes the shared
        // content again — matching line 0, its own home.
        write(&mut idx, &mut sh, 0, b"shared", 5);
        write(&mut idx, &mut sh, 1, b"shared", 5);
        write(&mut idx, &mut sh, 0, b"other!", 6);
        let out = write(&mut idx, &mut sh, 0, b"shared", 5);
        // Address 0's interim line (its sole-owned "other!" line) is freed
        // as its reference moves back to line 0.
        assert_eq!(
            out,
            WriteOutcome::Duplicate {
                real: l(0),
                silent: false,
                freed: Some(l(1))
            }
        );
        assert_eq!(idx.resolve(l(0)), Some(l(0)));
        assert_eq!(idx.reference_of(l(0)), Some(2));
    }

    #[test]
    fn domain_of_survives_large_indices() {
        // Regression: `index * domains` used to be computed in u64, so a
        // line index past u64::MAX / domains wrapped and landed in the
        // wrong domain.
        let lines = 1u64 << 63;
        let domains = 4;
        assert_eq!(domain_of_line(0, domains, lines), 0);
        assert_eq!(domain_of_line(lines - 1, domains, lines), domains - 1);
        let boundary = lines / domains;
        assert_eq!(domain_of_line(boundary - 1, domains, lines), 0);
        assert_eq!(domain_of_line(boundary, domains, lines), 1);
        for index in [lines / 2, lines - 1, boundary * 3 + 17] {
            assert!(
                domain_of_line(index, domains, lines) < domains,
                "index {index}"
            );
        }
    }

    #[test]
    fn domain_of_agrees_with_domain_range() {
        let idx = DedupIndex::with_domains(100, 7); // uneven split
        for domain in 0..7 {
            let (lo, hi) = idx.domain_range(domain);
            for i in lo..hi {
                assert_eq!(idx.domain_of(l(i)), domain, "line {i}");
            }
        }
    }

    #[test]
    fn write_counters_accumulate() {
        let mut idx = DedupIndex::new(8);
        let mut sh = Shadow::default();
        write(&mut idx, &mut sh, 0, b"x", 1);
        write(&mut idx, &mut sh, 1, b"x", 1);
        write(&mut idx, &mut sh, 2, b"y", 2);
        assert_eq!(idx.dup_writes(), 1);
        assert_eq!(idx.stored_writes(), 2);
        assert_eq!(idx.resident_lines(), 2);
        let refs: Vec<u8> = idx.reference_counts().collect();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs.iter().map(|&r| u64::from(r)).sum::<u64>(), 3);
    }
}
