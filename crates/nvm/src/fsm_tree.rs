//! Hierarchical lock-free free-space manager: the llfree-style successor
//! of the flat [`AtomicBitmap`].
//!
//! The flat bitmap pays two structural costs at engine scale: every claim
//! does a word-by-word scan over one shared map (quadratic-ish as the
//! arena fills), and every claim RMWs one shared `free_count` cache line
//! (the contention wall under concurrent allocators). [`FsmTree`] splits
//! the map into two levels:
//!
//! * a **lower level** of fixed-size *chunks* — [`CHUNK_LINES`] lines (8
//!   `AtomicU64` words, exactly one cache line of bitmap) claimed with the
//!   same `fetch_and` word protocol as [`AtomicBitmap`];
//! * an **upper level** of per-chunk atomic free counters, 16 to a cache
//!   line, so "which region has space" is answered by scanning counters
//!   (512 lines summarized per 4 bytes) instead of bitmap words — and
//!   there is **no global free count**: [`FsmTree::free_lines`] sums the
//!   sharded counters, so no two claims in different chunks ever touch the
//!   same cache line;
//! * a **reservation layer**: each caller (an engine shard, a benchmark
//!   thread) owns a [`Reservation`] pinning one chunk. The common-path
//!   claim is a single uncontended `fetch_and` in the reserved chunk plus
//!   a `fetch_sub` on that chunk's counter. Only when the chunk drains
//!   does the caller go back to the upper tree for a **refill**, and only
//!   when no chunk has a comfortable run of free lines left does it
//!   **steal** the globally fullest (most-free) chunk.
//!
//! # Wear-aware chunk rotation
//!
//! Refill preference cycles through chunks by a coarse per-chunk
//! allocation-count bucket (lifetime claims `>>` [`WEAR_BUCKET_SHIFT`]):
//! a refill prefers the least-worn bucket, breaking ties by a rotating
//! cursor, so steady alloc/free churn walks across the device instead of
//! pinning the same few lines — the line-placement behavior SecPM-style
//! endurance designs assume of this layer. The policy is observable:
//! [`FsmTree::stats`] counts claims, refills, steals and scan steps, and
//! [`FsmTree::chunk_allocs`] exposes the per-chunk wear proxy itself.
//!
//! # Home-preference mode and placement identity
//!
//! [`FsmTree::allocate`] keeps the flat bitmap's contract — prefer a
//! caller-provided *home* line, scan outward with wrap-around — and is
//! **placement-identical** to [`AtomicBitmap::allocate`] on the same
//! occupancy: it visits words in the same order and picks bits with the
//! same in-word preference, using the upper counters only to *skip* chunks
//! with no free line (which can never change which free line is found
//! first). This is what lets the sharded engine swap allocators while its
//! merged simulated `RunReport` stays bit-identical; the differential
//! proptests in `dewrite-core` pin the property.
//!
//! All methods take `&self` and are lock-free; exclusive owners pay only
//! uncontended atomic RMWs.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::fsm_atomic::AtomicBitmap;

/// Bits per bitmap word.
const WORD_BITS: u64 = 64;

/// Bitmap words per chunk: one cache line of lower-level bitmap.
pub const CHUNK_WORDS: usize = 8;

/// Lines tracked per chunk.
pub const CHUNK_LINES: u64 = CHUNK_WORDS as u64 * WORD_BITS;

/// A refill wants at least this many free lines in the chosen chunk, so
/// one upper-tree visit buys a run of cheap claims. Chunks below the
/// threshold are only taken by stealing.
pub const REFILL_MIN_FREE: u32 = 64;

/// Coarse wear bucketing: lifetime claims per chunk `>> SHIFT` is the
/// rotation key, so a chunk must absorb [`CHUNK_LINES`] claims before it
/// yields refill priority to its peers.
pub const WEAR_BUCKET_SHIFT: u32 = 9;

/// Live counters for the allocator's observable behavior (monotonic,
/// updated with relaxed ordering; exact once concurrent claims quiesce).
#[derive(Debug, Default)]
struct AtomicStats {
    claims: AtomicU64,
    refills: AtomicU64,
    steals: AtomicU64,
    scan_steps: AtomicU64,
}

/// A point-in-time copy of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsmStats {
    /// Lines successfully claimed (any mode).
    pub claims: u64,
    /// Reservation refills served from the upper tree.
    pub refills: u64,
    /// Refills that had to steal a below-threshold chunk because no chunk
    /// had [`REFILL_MIN_FREE`] lines left.
    pub steals: u64,
    /// Upper- and lower-level probe steps (chunk counters consulted plus
    /// bitmap words scanned) across all claims.
    pub scan_steps: u64,
}

impl FsmStats {
    /// Mean probe steps per successful claim — the "how much memory does a
    /// claim touch" figure the hierarchy is supposed to shrink.
    pub fn scan_steps_per_claim(&self) -> f64 {
        if self.claims == 0 {
            0.0
        } else {
            self.scan_steps as f64 / self.claims as f64
        }
    }
}

/// A caller's reserved-chunk handle. One per allocating thread/shard;
/// holding one never blocks other callers (reservations are preferences,
/// not locks — claims stay atomic either way).
///
/// A reservation carries a claim *budget* of one wear bucket
/// (`1 << WEAR_BUCKET_SHIFT` claims): once spent, the handle retires its
/// chunk even if frees have kept it non-empty, so alloc/free churn rotates
/// across the device instead of pinning the same lines.
///
/// It also accumulates the claim/scan-step counters locally — a reserved
/// claim must not touch the tree's shared stats cache line, or the stats
/// would reintroduce the very contention the reservation removes. The
/// pending counts flush into [`FsmTree::stats`] at each refill, at
/// exhaustion, and on [`FsmTree::drain_reservation_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Reservation {
    chunk: Option<usize>,
    budget: u32,
    pending_claims: u64,
    pending_steps: u64,
}

impl Reservation {
    /// A fresh handle with no chunk reserved; the first claim refills.
    pub fn new() -> Self {
        Reservation::default()
    }

    /// The currently reserved chunk, if any (observability/tests).
    pub fn chunk(&self) -> Option<usize> {
        self.chunk
    }
}

/// A hierarchical concurrent free-space map over `lines` slots
/// (`1` bit = free).
#[derive(Debug)]
pub struct FsmTree {
    /// Lower level: one bit per line, `1` = free, chunked [`CHUNK_WORDS`]
    /// words at a time.
    words: Box<[AtomicU64]>,
    /// Upper level: free-line count per chunk.
    chunk_free: Box<[AtomicU32]>,
    /// Lifetime claims per chunk — the coarse wear proxy driving rotation.
    chunk_allocs: Box<[AtomicU32]>,
    /// Rotating refill cursor: ties between equally-worn candidate chunks
    /// break toward the next position, cycling placement over the device.
    rotation: AtomicUsize,
    lines: u64,
    stats: AtomicStats,
}

impl FsmTree {
    /// All `lines` start free.
    pub fn new(lines: u64) -> Self {
        let nwords = lines.div_ceil(WORD_BITS).max(1) as usize;
        let nchunks = nwords.div_ceil(CHUNK_WORDS);
        let words: Box<[AtomicU64]> = (0..nchunks * CHUNK_WORDS)
            .map(|wi| {
                let base = wi as u64 * WORD_BITS;
                // Bits past `lines` must never be handed out: occupied.
                let free_in_word = lines.saturating_sub(base).min(WORD_BITS);
                AtomicU64::new(if free_in_word == 64 {
                    !0u64
                } else {
                    (1u64 << free_in_word) - 1
                })
            })
            .collect();
        let chunk_free: Box<[AtomicU32]> = (0..nchunks)
            .map(|ci| {
                let base = ci as u64 * CHUNK_LINES;
                AtomicU32::new(lines.saturating_sub(base).min(CHUNK_LINES) as u32)
            })
            .collect();
        let chunk_allocs = (0..nchunks).map(|_| AtomicU32::new(0)).collect();
        FsmTree {
            words,
            chunk_free,
            chunk_allocs,
            rotation: AtomicUsize::new(0),
            lines,
            stats: AtomicStats::default(),
        }
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Number of chunks in the upper level.
    pub fn chunks(&self) -> usize {
        self.chunk_free.len()
    }

    /// Number of free lines: the sum of the per-chunk counters (exact once
    /// concurrent operations quiesce; a live gauge while they run). Unlike
    /// the flat bitmap there is no single shared counter to contend on —
    /// this read walks the sharded upper level instead.
    pub fn free_lines(&self) -> u64 {
        self.chunk_free
            .iter()
            .map(|c| u64::from(c.load(Ordering::Acquire)))
            .sum()
    }

    /// Free lines in one chunk (observability/tests).
    pub fn chunk_free_lines(&self, chunk: usize) -> u32 {
        self.chunk_free[chunk].load(Ordering::Acquire)
    }

    /// Lifetime claims served from one chunk — the wear-rotation key is
    /// this value `>>` [`WEAR_BUCKET_SHIFT`].
    pub fn chunk_allocs(&self, chunk: usize) -> u32 {
        self.chunk_allocs[chunk].load(Ordering::Relaxed)
    }

    /// Whether `line` is free right now (racy by nature under concurrency).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn is_free(&self, line: u64) -> bool {
        assert!(line < self.lines, "line {line} out of range {}", self.lines);
        let word = self.words[(line / WORD_BITS) as usize].load(Ordering::Acquire);
        word & (1u64 << (line % WORD_BITS)) != 0
    }

    /// Claim `line` specifically. Returns `false` if it was already
    /// occupied (possibly by a concurrent winner).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn occupy(&self, line: u64) -> bool {
        assert!(line < self.lines, "line {line} out of range {}", self.lines);
        let mask = 1u64 << (line % WORD_BITS);
        let prev = self.words[(line / WORD_BITS) as usize].fetch_and(!mask, Ordering::AcqRel);
        if prev & mask != 0 {
            self.note_claim((line / CHUNK_LINES) as usize, 1);
            true
        } else {
            false
        }
    }

    /// Return `line` to the free pool. Returns `false` (and changes
    /// nothing) if it was already free — callers treating that as a
    /// double-free bug should assert on the result.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn release(&self, line: u64) -> bool {
        assert!(line < self.lines, "line {line} out of range {}", self.lines);
        let mask = 1u64 << (line % WORD_BITS);
        let prev = self.words[(line / WORD_BITS) as usize].fetch_or(mask, Ordering::AcqRel);
        if prev & mask == 0 {
            self.chunk_free[(line / CHUNK_LINES) as usize].fetch_add(1, Ordering::AcqRel);
            true
        } else {
            false
        }
    }

    /// Book-keeping for one successful word claim in `chunk`.
    fn note_claim(&self, chunk: usize, steps: u64) {
        self.chunk_free[chunk].fetch_sub(1, Ordering::AcqRel);
        self.chunk_allocs[chunk].fetch_add(1, Ordering::Relaxed);
        self.stats.claims.fetch_add(1, Ordering::Relaxed);
        self.stats.scan_steps.fetch_add(steps, Ordering::Relaxed);
    }

    /// Try to claim the lowest free bit in `words[wi]`, preferring bits at
    /// or after `min_bit` first when `min_bit > 0` (the flat bitmap's
    /// home-word protocol, reproduced exactly). A lost race reloads the
    /// same word; returns `None` once the word is exhausted.
    fn claim_in_word(&self, wi: usize, min_bit: u64) -> Option<u64> {
        let mut word = self.words[wi].load(Ordering::Acquire);
        loop {
            if word == 0 {
                return None;
            }
            let bit = if min_bit > 0 {
                let at_or_after = word & (!0u64 << min_bit);
                if at_or_after != 0 {
                    at_or_after.trailing_zeros()
                } else {
                    word.trailing_zeros()
                }
            } else {
                word.trailing_zeros()
            } as u64;
            let mask = 1u64 << bit;
            let prev = self.words[wi].fetch_and(!mask, Ordering::AcqRel);
            if prev & mask != 0 {
                return Some(wi as u64 * WORD_BITS + bit);
            }
            word = prev & !mask;
        }
    }

    /// Allocate a free line, preferring `home`, then scanning outward from
    /// it with wrap-around — **placement-identical** to
    /// [`AtomicBitmap::allocate`] on the same occupancy. The upper
    /// counters only skip chunks with no free line, which cannot change
    /// which free line is reached first in the flat word order.
    ///
    /// Lock-free: a claim is one `fetch_and`; a lost race reloads one word.
    ///
    /// # Panics
    ///
    /// Panics if `home` is out of range.
    pub fn allocate(&self, home: u64) -> Option<u64> {
        assert!(home < self.lines, "home {home} out of range {}", self.lines);
        let nchunks = self.chunks();
        let home_word = (home / WORD_BITS) as usize;
        let home_bit = home % WORD_BITS;
        let home_chunk = home_word / CHUNK_WORDS;
        let mut steps = 0u64;

        // Home chunk, words from the home word to the chunk's end. The
        // home word itself uses the at-or-after preference with the flat
        // bitmap's fall-back to its lowest free bit.
        if self.chunk_free[home_chunk].load(Ordering::Acquire) > 0 {
            for wi in home_word..(home_chunk + 1) * CHUNK_WORDS {
                steps += 1;
                let min_bit = if wi == home_word { home_bit } else { 0 };
                if let Some(line) = self.claim_in_word(wi, min_bit) {
                    self.note_claim(home_chunk, steps + 1);
                    return Some(line);
                }
            }
        }
        steps += 1; // the home-chunk counter consult

        // Every other chunk in wrap order, skipping drained ones by
        // counter. Word order within a chunk is ascending — exactly the
        // order the flat scan visits them.
        for step in 1..nchunks {
            let ci = (home_chunk + step) % nchunks;
            steps += 1;
            if self.chunk_free[ci].load(Ordering::Acquire) == 0 {
                continue;
            }
            for wi in ci * CHUNK_WORDS..(ci + 1) * CHUNK_WORDS {
                steps += 1;
                if let Some(line) = self.claim_in_word(wi, 0) {
                    self.note_claim(ci, steps + 1);
                    return Some(line);
                }
            }
        }

        // Finally the home chunk's words before the home word (the flat
        // scan's wrap-around tail).
        if self.chunk_free[home_chunk].load(Ordering::Acquire) > 0 {
            for wi in home_chunk * CHUNK_WORDS..home_word {
                steps += 1;
                if let Some(line) = self.claim_in_word(wi, 0) {
                    self.note_claim(home_chunk, steps + 1);
                    return Some(line);
                }
            }
        }
        self.stats.scan_steps.fetch_add(steps, Ordering::Relaxed);
        None
    }

    /// Claim the lowest free line of `chunk`, if any.
    fn claim_in_chunk(&self, chunk: usize, steps: &mut u64) -> Option<u64> {
        for wi in chunk * CHUNK_WORDS..(chunk + 1) * CHUNK_WORDS {
            *steps += 1;
            if let Some(line) = self.claim_in_word(wi, 0) {
                return Some(line);
            }
        }
        None
    }

    /// Pick a refill chunk: the least-worn bucket among chunks with at
    /// least [`REFILL_MIN_FREE`] free lines, ties broken by the rotating
    /// cursor. Falls back to stealing the globally fullest (most-free)
    /// chunk when nothing comfortable is left. Returns
    /// `(chunk, was_steal)`, or `None` when every counter reads zero.
    fn pick_refill(&self, steps: &mut u64) -> Option<(usize, bool)> {
        let nchunks = self.chunks();
        let start = self.rotation.fetch_add(1, Ordering::Relaxed) % nchunks;
        let mut best: Option<(u32, usize)> = None; // (wear bucket, chunk)
        let mut fullest: Option<(u32, usize)> = None; // (free, chunk)
        for step in 0..nchunks {
            let ci = (start + step) % nchunks;
            *steps += 1;
            let free = self.chunk_free[ci].load(Ordering::Acquire);
            if free == 0 {
                continue;
            }
            match fullest {
                Some((f, _)) if f >= free => {}
                _ => fullest = Some((free, ci)),
            }
            if free >= REFILL_MIN_FREE {
                let bucket = self.chunk_allocs[ci].load(Ordering::Relaxed) >> WEAR_BUCKET_SHIFT;
                // Strictly-less keeps the first (cursor-nearest) chunk of
                // the winning bucket: the rotation tie-break.
                if best.is_none_or(|(b, _)| bucket < b) {
                    best = Some((bucket, ci));
                }
            }
        }
        if let Some((_, ci)) = best {
            return Some((ci, false));
        }
        fullest.map(|(_, ci)| (ci, true))
    }

    /// Allocate through a caller-owned [`Reservation`]: claim from the
    /// reserved chunk with one uncontended `fetch_and`, refilling from the
    /// upper tree (wear-rotated) only when the chunk drains and stealing
    /// the fullest chunk only when no refill candidate is comfortable.
    /// Returns `None` when the map is exhausted.
    ///
    /// Placement is wear-rotation order, **not** home order — callers that
    /// need the flat bitmap's placement use [`FsmTree::allocate`].
    pub fn allocate_reserved(&self, r: &mut Reservation) -> Option<u64> {
        let mut steps = 0u64;
        loop {
            if let Some(ci) = r.chunk {
                if r.budget == 0 {
                    // Budget spent: retire the chunk so churn rotates even
                    // when frees keep it non-empty.
                    r.chunk = None;
                } else if let Some(line) = self.claim_in_chunk(ci, &mut steps) {
                    r.budget -= 1;
                    // Chunk-local counters only: under a reservation these
                    // cache lines belong to this caller, so the hot claim
                    // touches nothing shared. Global stats accumulate in
                    // the handle and flush at the next (rare) refill.
                    self.chunk_free[ci].fetch_sub(1, Ordering::AcqRel);
                    self.chunk_allocs[ci].fetch_add(1, Ordering::Relaxed);
                    r.pending_claims += 1;
                    r.pending_steps += steps + 1;
                    return Some(line);
                } else {
                    r.chunk = None;
                }
            }
            if r.chunk.is_none() {
                self.drain_reservation_stats(r);
                match self.pick_refill(&mut steps) {
                    Some((ci, stole)) => {
                        r.chunk = Some(ci);
                        r.budget = 1u32 << WEAR_BUCKET_SHIFT;
                        self.stats.refills.fetch_add(1, Ordering::Relaxed);
                        if stole {
                            self.stats.steals.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => {
                        self.stats.scan_steps.fetch_add(steps, Ordering::Relaxed);
                        return None;
                    }
                }
            }
        }
    }

    /// Flush a reservation's locally accumulated claim/scan-step counts
    /// into the tree's [`FsmTree::stats`]. Runs automatically at every
    /// refill and at exhaustion; call it when a caller retires its handle
    /// so the final partial batch is counted.
    pub fn drain_reservation_stats(&self, r: &mut Reservation) {
        if r.pending_claims > 0 {
            self.stats
                .claims
                .fetch_add(r.pending_claims, Ordering::Relaxed);
            r.pending_claims = 0;
        }
        if r.pending_steps > 0 {
            self.stats
                .scan_steps
                .fetch_add(r.pending_steps, Ordering::Relaxed);
            r.pending_steps = 0;
        }
    }

    /// Visit every occupied line, in ascending order. Meaningful once
    /// concurrent operations have quiesced (scrub, reporting); allocates
    /// nothing.
    pub fn for_each_occupied<F: FnMut(u64)>(&self, mut f: F) {
        for (wi, w) in self.words.iter().enumerate() {
            let mut taken = !w.load(Ordering::Acquire);
            while taken != 0 {
                let bit = taken.trailing_zeros() as u64;
                let line = wi as u64 * WORD_BITS + bit;
                if line < self.lines {
                    f(line);
                }
                taken &= taken - 1;
            }
        }
    }

    /// Snapshot of every occupied line, in ascending order (a thin wrapper
    /// over [`FsmTree::for_each_occupied`] for callers that want a `Vec`).
    pub fn occupied(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_occupied(|line| out.push(line));
        out
    }

    /// Point-in-time allocator counters.
    pub fn stats(&self) -> FsmStats {
        FsmStats {
            claims: self.stats.claims.load(Ordering::Relaxed),
            refills: self.stats.refills.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            scan_steps: self.stats.scan_steps.load(Ordering::Relaxed),
        }
    }

    /// Human-readable per-chunk occupancy/wear dump for debugging: one row
    /// per chunk with free lines, lifetime claims, wear bucket, and the
    /// occupied-line count recomputed through
    /// [`FsmTree::for_each_occupied`] as a cross-check.
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut per_chunk = vec![0u64; self.chunks()];
        self.for_each_occupied(|line| per_chunk[(line / CHUNK_LINES) as usize] += 1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fsm_tree: {} lines, {} chunks, stats {:?}",
            self.lines,
            self.chunks(),
            self.stats()
        );
        for (ci, occupied) in per_chunk.iter().enumerate() {
            let allocs = self.chunk_allocs(ci);
            let _ = writeln!(
                out,
                "  chunk {ci:>4}: free {:>4} occupied {occupied:>4} allocs {allocs:>8} bucket {}",
                self.chunk_free_lines(ci),
                allocs >> WEAR_BUCKET_SHIFT,
            );
        }
        out
    }

    /// Copy the occupancy of a flat bitmap (test/diagnostic helper for
    /// differential runs): every line free in `src` is free here.
    pub fn from_bitmap(src: &AtomicBitmap) -> Self {
        let tree = FsmTree::new(src.lines());
        src.for_each_occupied(|line| {
            tree.occupy(line);
        });
        tree
    }
}

impl Clone for FsmTree {
    fn clone(&self) -> Self {
        FsmTree {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Acquire)))
                .collect(),
            chunk_free: self
                .chunk_free
                .iter()
                .map(|c| AtomicU32::new(c.load(Ordering::Acquire)))
                .collect(),
            chunk_allocs: self
                .chunk_allocs
                .iter()
                .map(|c| AtomicU32::new(c.load(Ordering::Relaxed)))
                .collect(),
            rotation: AtomicUsize::new(self.rotation.load(Ordering::Relaxed)),
            lines: self.lines,
            stats: AtomicStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_home_first() {
        let t = FsmTree::new(8);
        assert_eq!(t.free_lines(), 8);
        assert_eq!(t.allocate(3), Some(3));
        assert!(!t.is_free(3));
        assert_eq!(t.free_lines(), 7);
        assert_eq!(t.stats().claims, 1);
    }

    #[test]
    fn placement_matches_flat_bitmap_under_churn() {
        // The tree's home mode must pick the exact line the flat bitmap
        // picks, claim for claim, under an interleaved occupy/release/
        // allocate script spanning several chunks.
        let lines = 3 * CHUNK_LINES + 77;
        let flat = AtomicBitmap::new(lines);
        let tree = FsmTree::new(lines);
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut held = Vec::new();
        for round in 0..6_000u64 {
            match rng() % 4 {
                0 | 1 => {
                    let home = rng() % lines;
                    let a = flat.allocate(home);
                    let b = tree.allocate(home);
                    assert_eq!(a, b, "round {round}: home {home} placement diverged");
                    if let Some(line) = a {
                        held.push(line);
                    }
                }
                2 => {
                    if !held.is_empty() {
                        let line = held.swap_remove((rng() % held.len() as u64) as usize);
                        assert!(flat.release(line));
                        assert!(tree.release(line));
                    }
                }
                _ => {
                    let line = rng() % lines;
                    assert_eq!(flat.occupy(line), tree.occupy(line));
                    if flat.is_free(line) {
                        // occupy failed on both; nothing to track
                    } else if !held.contains(&line) {
                        held.push(line);
                    }
                }
            }
            assert_eq!(flat.free_lines(), tree.free_lines(), "round {round}");
        }
        assert_eq!(flat.occupied(), tree.occupied());
    }

    #[test]
    fn counters_skip_drained_chunks() {
        let lines = 4 * CHUNK_LINES;
        let t = FsmTree::new(lines);
        // Drain chunks 0..3 entirely; only chunk 3 keeps a free line.
        for line in 0..(3 * CHUNK_LINES) {
            assert!(t.occupy(line));
        }
        for line in (3 * CHUNK_LINES)..(lines - 1) {
            assert!(t.occupy(line));
        }
        let before = t.stats().scan_steps;
        assert_eq!(t.allocate(0), Some(lines - 1));
        let steps = t.stats().scan_steps - before;
        // 3 skipped chunk counters + the target chunk's counter/words —
        // far fewer than the 24 words a flat scan walks.
        assert!(steps <= 16, "home-mode scan did {steps} steps");
    }

    #[test]
    fn tail_bits_are_never_allocated() {
        let t = FsmTree::new(3);
        let got: Vec<_> = (0..3).map(|_| t.allocate(0).unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(t.allocate(2), None);
        let mut r = Reservation::new();
        assert_eq!(t.allocate_reserved(&mut r), None);
        assert_eq!(t.free_lines(), 0);
    }

    #[test]
    fn tail_chunk_counter_matches_valid_lines() {
        // 2 chunks + 5 lines: the last chunk's counter must start at 5,
        // not CHUNK_LINES.
        let lines = 2 * CHUNK_LINES + 5;
        let t = FsmTree::new(lines);
        assert_eq!(t.chunks(), 3);
        assert_eq!(t.chunk_free_lines(2), 5);
        assert_eq!(t.free_lines(), lines);
    }

    #[test]
    fn reserved_claims_stay_in_the_reserved_chunk() {
        let t = FsmTree::new(4 * CHUNK_LINES);
        let mut r = Reservation::new();
        let first = t.allocate_reserved(&mut r).unwrap();
        let chunk = r.chunk().expect("refilled");
        for _ in 0..(CHUNK_LINES - 1) {
            let line = t.allocate_reserved(&mut r).unwrap();
            assert_eq!(
                (line / CHUNK_LINES) as usize,
                chunk,
                "claim left the reserved chunk while it still had space"
            );
        }
        assert_eq!((first / CHUNK_LINES) as usize, chunk);
        assert_eq!(t.stats().refills, 1, "one refill covers a whole chunk");
        // The chunk is dry now: the next claim refills elsewhere.
        t.allocate_reserved(&mut r).unwrap();
        assert_eq!(t.stats().refills, 2);
        assert_ne!(r.chunk().unwrap(), chunk);
    }

    #[test]
    fn wear_rotation_cycles_chunks_under_churn() {
        // Alloc/free churn through a reservation: once a chunk absorbs a
        // bucket's worth of claims, refills must move on even though the
        // just-freed chunk has the most free space.
        let nchunks = 4u64;
        let t = FsmTree::new(nchunks * CHUNK_LINES);
        let mut r = Reservation::new();
        let mut used = std::collections::BTreeSet::new();
        // Each full drain+free of a chunk is CHUNK_LINES claims = 1 wear
        // bucket; 4 cycles must therefore touch every chunk.
        for _ in 0..(nchunks * CHUNK_LINES) {
            let line = t.allocate_reserved(&mut r).unwrap();
            used.insert(line / CHUNK_LINES);
            assert!(t.release(line));
        }
        assert_eq!(
            used.len() as u64,
            nchunks,
            "churn pinned placement instead of rotating: {used:?}"
        );
        let spread: Vec<u32> = (0..nchunks as usize).map(|c| t.chunk_allocs(c)).collect();
        let (min, max) = (*spread.iter().min().unwrap(), *spread.iter().max().unwrap());
        assert!(
            max - min <= CHUNK_LINES as u32,
            "wear spread {spread:?} exceeds one bucket"
        );
    }

    #[test]
    fn refill_prefers_comfortable_chunks_then_steals() {
        let t = FsmTree::new(3 * CHUNK_LINES);
        // Leave fewer than REFILL_MIN_FREE lines in every chunk: 8 free in
        // chunk 0, 16 free in chunk 1, chunk 2 full.
        for line in 8..CHUNK_LINES {
            assert!(t.occupy(line));
        }
        for line in (CHUNK_LINES + 16)..(2 * CHUNK_LINES) {
            assert!(t.occupy(line));
        }
        for line in (2 * CHUNK_LINES)..(3 * CHUNK_LINES) {
            assert!(t.occupy(line));
        }
        let mut r = Reservation::new();
        let line = t.allocate_reserved(&mut r).unwrap();
        assert_eq!(
            line / CHUNK_LINES,
            1,
            "steal must take the fullest (most-free) chunk"
        );
        let s = t.stats();
        assert_eq!(s.steals, 1);
        assert_eq!(s.refills, 1);
    }

    #[test]
    fn exhaustion_and_release() {
        let t = FsmTree::new(2);
        assert!(t.allocate(0).is_some());
        assert!(t.allocate(0).is_some());
        assert_eq!(t.allocate(0), None);
        assert_eq!(t.free_lines(), 0);
        assert!(t.release(1));
        assert!(!t.release(1), "double release must report");
        assert_eq!(t.free_lines(), 1);
        assert!(!t.occupy(0), "already occupied");
    }

    #[test]
    fn occupied_snapshot_and_visitor_agree() {
        let t = FsmTree::new(CHUNK_LINES + 70);
        t.occupy(0);
        t.occupy(65);
        t.occupy(CHUNK_LINES + 69);
        assert_eq!(t.occupied(), vec![0, 65, CHUNK_LINES + 69]);
        let mut seen = Vec::new();
        t.for_each_occupied(|l| seen.push(l));
        assert_eq!(seen, t.occupied());
        let dump = t.debug_dump();
        assert!(dump.contains("chunk    0"), "dump:\n{dump}");
    }

    #[test]
    fn from_bitmap_copies_occupancy() {
        let b = AtomicBitmap::new(700);
        for line in [0u64, 63, 64, 511, 512, 699] {
            b.occupy(line);
        }
        let t = FsmTree::from_bitmap(&b);
        assert_eq!(t.occupied(), b.occupied());
        assert_eq!(t.free_lines(), b.free_lines());
    }

    #[test]
    fn concurrent_reserved_allocations_are_unique() {
        use std::sync::atomic::AtomicUsize;
        const LINES: u64 = 16 * CHUNK_LINES;
        let t = FsmTree::new(LINES);
        let claimed: Vec<AtomicUsize> = (0..LINES).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = &t;
                let claimed = &claimed;
                s.spawn(move || {
                    let mut r = Reservation::new();
                    while let Some(line) = t.allocate_reserved(&mut r) {
                        let prev = claimed[line as usize].fetch_add(1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "line {line} double-allocated");
                    }
                });
            }
        });
        assert_eq!(t.free_lines(), 0);
        assert!(claimed.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        assert_eq!(t.stats().claims, LINES);
    }

    #[test]
    fn concurrent_churn_preserves_free_count() {
        const LINES: u64 = 4 * CHUNK_LINES;
        let t = FsmTree::new(LINES);
        std::thread::scope(|s| {
            for id in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    let mut r = Reservation::new();
                    for round in 0..2_000u64 {
                        // Mix reserved and home-mode claims: both paths
                        // must keep the counters conserved.
                        let line = if round % 2 == 0 {
                            t.allocate_reserved(&mut r)
                        } else {
                            t.allocate((id * 512 + round) % LINES)
                        };
                        if let Some(line) = line {
                            assert!(t.release(line), "we owned it");
                        }
                    }
                });
            }
        });
        assert_eq!(t.free_lines(), LINES);
        assert!(t.occupied().is_empty());
    }
}
