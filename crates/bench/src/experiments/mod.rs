//! One module per group of paper artifacts. Every experiment returns
//! [`Table`]s that the `repro` binary prints and exports as CSV.

pub mod cache;
pub mod endurance;
pub mod extensions;
pub mod latency;
pub mod motivation;
pub mod system;

use std::path::PathBuf;

use dewrite_core::RunReport;
use dewrite_trace::{all_apps, AppProfile};

use crate::runner::{par_map_apps, run_scheme, Scale, SchemeKind, Workload};
use crate::table::Table;

/// Per-application DeWrite-vs-baseline run pair, shared by Figs. 12, 14,
/// 16, 17, 19.
#[derive(Debug, Clone)]
pub struct AppComparison {
    /// Application name.
    pub app: String,
    /// DeWrite run.
    pub dewrite: RunReport,
    /// Traditional-secure-NVM run on the identical trace.
    pub baseline: RunReport,
}

/// Experiment context: scale, output directory, and cached shared runs.
#[derive(Debug)]
pub struct Ctx {
    /// Workload scale.
    pub scale: Scale,
    /// CSV output directory.
    pub out_dir: PathBuf,
    /// Also export every table (and the shared comparison runs) as JSON.
    pub json: bool,
    comparisons: Option<Vec<AppComparison>>,
}

impl Ctx {
    /// Create a context.
    pub fn new(scale: Scale, out_dir: PathBuf) -> Self {
        Ctx {
            scale,
            out_dir,
            json: false,
            comparisons: None,
        }
    }

    /// The 20-application DeWrite/baseline comparison runs (computed once,
    /// in parallel across applications).
    pub fn comparisons(&mut self) -> &[AppComparison] {
        if self.comparisons.is_none() {
            let apps = all_apps();
            let scale = self.scale;
            let results = par_map_apps(&apps, |profile: &AppProfile, seed| {
                let workload = Workload::generate(profile, scale, seed);
                AppComparison {
                    app: profile.name.to_string(),
                    dewrite: run_scheme(SchemeKind::DeWrite, &workload),
                    baseline: run_scheme(SchemeKind::Baseline, &workload),
                }
            });
            if self.json {
                if let Err(e) = write_runs_json(&self.out_dir, &results) {
                    eprintln!("warning: failed to write runs.json: {e}");
                }
            }
            self.comparisons = Some(results);
        }
        self.comparisons.as_deref().expect("just filled")
    }

    /// Print and export a table (CSV always; JSON when `--json` is on).
    pub fn emit(&self, table: &Table, csv_name: &str) {
        println!("{}", table.render());
        if let Err(e) = table.write_csv(&self.out_dir, csv_name) {
            eprintln!("warning: failed to write {csv_name}.csv: {e}");
        }
        if self.json {
            if let Err(e) = table.write_json(&self.out_dir, csv_name) {
                eprintln!("warning: failed to write {csv_name}.json: {e}");
            }
        }
    }
}

/// Dump every shared comparison run as a `RunReport` JSON array so
/// downstream tooling can diff full reports across bench trajectories.
fn write_runs_json(dir: &std::path::Path, runs: &[AppComparison]) -> std::io::Result<()> {
    use dewrite_core::Json;
    std::fs::create_dir_all(dir)?;
    let arr = Json::Arr(
        runs.iter()
            .flat_map(|c| [c.dewrite.to_json(), c.baseline.to_json()])
            .collect(),
    );
    std::fs::write(dir.join("runs.json"), format!("{arr}\n"))
}

/// Geometric mean of positive values (the paper averages ratios).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = xs
        .into_iter()
        .filter(|x| *x > 0.0)
        .fold((0.0, 0u32), |(s, n), x| (s + x.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / f64::from(n)).exp()
    }
}

/// Arithmetic mean.
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (sum, n) = xs.into_iter().fold((0.0, 0u32), |(s, n), x| (s + x, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }
}
