//! Latency statistics accumulation.

/// Streaming latency summary (count / total / min / max).
///
/// ```
/// use dewrite_mem::LatencyStats;
///
/// let mut s = LatencyStats::new();
/// s.record(100);
/// s.record(300);
/// assert_eq!(s.mean_ns(), 200.0);
/// assert_eq!(s.max_ns(), 300);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Mean latency; zero when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Minimum observation; zero when empty.
    pub fn min_ns(&self) -> u64 {
        self.min_ns
    }

    /// Maximum observation; zero when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}ns min={}ns max={}ns",
            self.count,
            self.mean_ns(),
            self.min_ns,
            self.max_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.min_ns(), 0);
        assert_eq!(s.max_ns(), 0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn single_observation() {
        let mut s = LatencyStats::new();
        s.record(42);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean_ns(), 42.0);
        assert_eq!(s.min_ns(), 42);
        assert_eq!(s.max_ns(), 42);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = LatencyStats::new();
        s.record(10);
        let snapshot = s;
        s.merge(&LatencyStats::new());
        assert_eq!(s, snapshot);

        let mut empty = LatencyStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(xs in proptest::collection::vec(0u64..10_000, 0..50),
                                   ys in proptest::collection::vec(0u64..10_000, 0..50)) {
            let mut a = LatencyStats::new();
            for &x in &xs { a.record(x); }
            let mut b = LatencyStats::new();
            for &y in &ys { b.record(y); }
            a.merge(&b);

            let mut c = LatencyStats::new();
            for &v in xs.iter().chain(ys.iter()) { c.record(v); }
            prop_assert_eq!(a, c);
        }

        #[test]
        fn invariants(xs in proptest::collection::vec(0u64..10_000, 1..100)) {
            let mut s = LatencyStats::new();
            for &x in &xs { s.record(x); }
            prop_assert!(s.min_ns() <= s.max_ns());
            prop_assert!(s.mean_ns() >= s.min_ns() as f64);
            prop_assert!(s.mean_ns() <= s.max_ns() as f64);
            prop_assert_eq!(s.count(), xs.len() as u64);
        }
    }
}
