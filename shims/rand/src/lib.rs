//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`, `fill`), [`SeedableRng`]
//! with `seed_from_u64`, and a deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — *not* the ChaCha12
//! generator of the real crate, so absolute sequences differ from upstream
//! `rand`, but every guarantee the workspace relies on holds: determinism
//! for equal seeds, divergence for different seeds, and good statistical
//! uniformity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping; the bias is
                // < span / 2^64, negligible for simulation workloads.
                let hi128 = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + hi128 as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        f64::draw(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64. Deterministic and fast; not
    /// cryptographically secure (nothing here needs it to be).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let ratio = hits as f64 / 100_000.0;
        assert!((ratio - 0.3).abs() < 0.01, "ratio {ratio}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unit_interval_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
