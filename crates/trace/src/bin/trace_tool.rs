//! `trace-tool` — generate, inspect, and analyze DeWrite workload traces.
//!
//! ```text
//! trace-tool apps
//! trace-tool generate <app> <out.trace> [writes] [seed]
//! trace-tool info <file.trace>
//! trace-tool analyze <file.trace>
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use dewrite_trace::{
    all_apps, app_by_name, worst_case, DupOracle, TraceGenerator, TraceReader, TraceWriter,
};

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  trace-tool apps");
    eprintln!("  trace-tool generate <app> <out.trace> [writes=20000] [seed=1]");
    eprintln!("  trace-tool info <file.trace>");
    eprintln!("  trace-tool analyze <file.trace>");
    ExitCode::FAILURE
}

fn cmd_apps() -> ExitCode {
    println!(
        "{:<14} {:<13} {:>5} {:>6} {:>8} {:>8}",
        "app", "suite", "dup%", "zero%", "reads/wr", "wr/kinst"
    );
    for p in all_apps() {
        println!(
            "{:<14} {:<13} {:>4.0}% {:>5.0}% {:>8.1} {:>8.1}",
            p.name,
            p.suite.to_string(),
            p.dup_ratio * 100.0,
            p.zero_share * 100.0,
            p.reads_per_write,
            p.writes_per_kilo_instr
        );
    }
    println!(
        "{:<14} {:<13} {:>4.0}% (Fig. 18 benchmark)",
        "worst-case", "synthetic", 0.0
    );
    ExitCode::SUCCESS
}

fn cmd_generate(app: &str, out: &str, writes: usize, seed: u64) -> ExitCode {
    let profile = if app == "worst-case" {
        Some(worst_case())
    } else {
        app_by_name(app)
    };
    let Some(profile) = profile else {
        eprintln!("unknown application {app:?}; run `trace-tool apps`");
        return ExitCode::FAILURE;
    };
    let file = match File::create(out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut gen = TraceGenerator::new(profile, 256, seed);
    let mut w = TraceWriter::new(BufWriter::new(file), 256).expect("header");
    for rec in gen.warmup_records() {
        w.write_record(&rec).expect("encode");
    }
    let mut emitted = 0usize;
    while emitted < writes {
        let rec = gen.next().expect("generator is infinite");
        emitted += usize::from(rec.op.is_write());
        w.write_record(&rec).expect("encode");
    }
    let records = w.records_written();
    w.into_inner().expect("flush").into_inner().expect("flush");
    println!("wrote {records} records ({writes} writes incl. warmup pool seeding) to {out}");
    ExitCode::SUCCESS
}

fn open_trace(path: &str) -> Option<TraceReader<BufReader<File>>> {
    match File::open(path) {
        Ok(f) => match TraceReader::new(BufReader::new(f)) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("{path}: {e}");
                None
            }
        },
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            None
        }
    }
}

fn cmd_info(path: &str) -> ExitCode {
    let Some(mut r) = open_trace(path) else {
        return ExitCode::FAILURE;
    };
    let line_size = r.line_size();
    let (mut reads, mut writes, mut instructions, mut max_addr) = (0u64, 0u64, 0u64, 0u64);
    loop {
        match r.read_record() {
            Ok(Some(rec)) => {
                instructions += u64::from(rec.gap_instructions);
                max_addr = max_addr.max(rec.op.addr().index());
                if rec.op.is_write() {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("decode error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("line size     : {line_size} B");
    println!(
        "records       : {} ({} writes, {} reads)",
        reads + writes,
        writes,
        reads
    );
    println!("instructions  : {instructions}");
    println!(
        "highest line  : {max_addr} ({} MB footprint)",
        ((max_addr + 1) * line_size as u64) >> 20
    );
    ExitCode::SUCCESS
}

fn cmd_analyze(path: &str) -> ExitCode {
    let Some(mut r) = open_trace(path) else {
        return ExitCode::FAILURE;
    };
    let mut oracle = DupOracle::new();
    loop {
        match r.read_record() {
            Ok(Some(rec)) => oracle.observe(&rec),
            Ok(None) => break,
            Err(e) => {
                eprintln!("decode error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let s = oracle.stats();
    println!("writes            : {}", s.writes);
    println!(
        "duplicate writes  : {} ({:.1}%)",
        s.dup_writes,
        s.dup_ratio() * 100.0
    );
    println!(
        "zero-line writes  : {} ({:.1}%)",
        s.zero_writes,
        s.zero_ratio() * 100.0
    );
    println!("state persistence : {:.1}%", s.state_persistence() * 100.0);
    println!("reads             : {}", s.reads);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("apps") => cmd_apps(),
        Some("generate") if args.len() >= 3 => {
            let writes = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20_000);
            let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(1);
            cmd_generate(&args[1], &args[2], writes, seed)
        }
        Some("info") if args.len() == 2 => cmd_info(&args[1]),
        Some("analyze") if args.len() == 2 => cmd_analyze(&args[1]),
        _ => usage(),
    }
}
