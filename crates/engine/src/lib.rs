//! `dewrite-engine`: a sharded, multi-threaded memory-controller service
//! over the DeWrite dedup pipeline.
//!
//! The paper models one memory controller; production-scale encrypted NVMM
//! needs several operating concurrently. This crate partitions the line
//! space across N controller shards by address interleaving. Each
//! [`ShardController`] exclusively owns its slice's dedup state — hash +
//! inverted-hash tables (implicitly sharded by digest, since a digest only
//! lands where its address routed), address map + colocated CME counters
//! (sharded by line address), a metadata cache, a 3-bit predictor, and a
//! lock-free atomic-bitmap free-space map — so shards never share mutable
//! state and never take a lock.
//!
//! Work arrives two ways. [`run`] drives one fixed trace through bounded
//! per-shard MPSC queues with back-pressure and returns when it drains;
//! per-shard simulated reports fold into one deterministic aggregate via
//! `RunReport::merge_all`. [`EngineService`] is the long-running form for
//! served deployments: non-blocking [`EngineService::try_submit`]
//! back-pressure, per-lane completion queues, per-shard sequence-number
//! reordering (so any interleaving of network connections replays each
//! shard's exact trace subsequence), and a graceful drain that flushes and
//! checkpoints attached persistence. The `loadgen` binary (in
//! `crates/net`) drives closed- and open-loop clients against 1..=16
//! shards — in-process or over a socket — and emits `BENCH_engine.json`,
//! including the **digest-sharding cost**: a shard only dedups against
//! content written through it, so the sharded dedup rate trails the
//! global (1-shard) rate; the delta is reported per app.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod service;
mod shard;

pub use dewrite_core::DigestMode;
pub use dewrite_mem::{CacheStats, Replacement};
pub use engine::{run, Backoff, EngineConfig, EngineRun, Pacing, Request, ShardSummary};
pub use service::{
    Completion, CompletionBody, EngineService, ServiceOp, ServiceRequest, CONTROL_SEQ,
};
pub use shard::{FsmPolicy, ShardController, ShardWrite, MAX_CANDIDATE_COMPARES};
