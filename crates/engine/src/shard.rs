//! One controller shard: the exclusive owner of every table for its slice
//! of the line space.
//!
//! A [`ShardController`] is a self-contained DeWrite-style secure-memory
//! controller over the lines `{a : a mod shards == id}`. It owns, privately:
//!
//! * a **hash table** + **inverted hash table**, sharded by CRC-32 digest
//!   implicitly — a digest only ever lands on the shard that owns the
//!   written address, so entries for the same content on different shards
//!   are independent (the dedup cost of sharding, quantified by `loadgen`);
//! * an **address map** + **colocated CME counters**, sharded by line
//!   address — every write resolves on one shard because allocation is
//!   home-local;
//! * a lock-free free-space map — the hierarchical [`FsmTree`] by default
//!   (per-chunk counters skip drained regions; placement-identical to the
//!   flat scan), the flat [`AtomicBitmap`] as differential oracle, or the
//!   reservation + wear-rotation mode, selected by [`FsmPolicy`];
//! * a metadata cache and a 3-bit [`HistoryPredictor`].
//!
//! All methods take `&mut self`: concurrency comes from shard ownership
//! (one exclusive controller per worker thread), never shared mutation, so
//! a shard's final state — and its [`RunReport`] — is a pure function of
//! its input feed.

use dewrite_core::tables::{HashEntry, HashTable, InvertedTable, MAX_REFERENCE};
use dewrite_core::{
    lines_equal, BaseMetrics, DeWriteMetrics, DigestMode, HistoryPredictor, MetaOp, RunReport,
    Snapshot, Stage, StageBreakdown, WriteEvent, WritePath,
};
use dewrite_crypto::{aes_line_energy_pj, CounterModeEngine, LineCounter, AES_LINE_LATENCY_NS};
use dewrite_hashes::{HashAlgorithm, LineHasher, StrongKeyed, StrongScratch};
use dewrite_mem::{
    CacheConfig, CacheStats, LatencyHistogram, LatencyStats, MetadataCache, Replacement,
};
use dewrite_nvm::{
    AtomicBitmap, EnergyBreakdown, EnergyParams, FsmStats, FsmTree, LineAddr, Reservation,
};
use dewrite_persist::{DurableOptions, EpochLog};

use std::collections::{HashMap, VecDeque};
use std::path::Path;

/// Candidate-compare cap per write (§III-B2: bounded verify cost).
pub const MAX_CANDIDATE_COMPARES: usize = 4;

/// Sentinel in the dense address map: address has no mapping.
const SLOT_NONE: u64 = u64::MAX;

/// Which free-space manager a shard runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsmPolicy {
    /// The flat [`AtomicBitmap`] word scan — kept as the differential
    /// oracle for the hierarchical allocator.
    Flat,
    /// The hierarchical [`FsmTree`] in home-preference mode: per-chunk free
    /// counters skip drained regions, and placement is **identical** to
    /// `Flat` on the same occupancy, so simulated reports stay
    /// bit-identical. The default.
    #[default]
    Tree,
    /// [`FsmTree`] through a per-shard reservation with wear-aware chunk
    /// rotation: the cheapest claims and the flattest wear, but placement
    /// (and therefore flip-bit/energy figures) differs from `Flat`.
    TreeWear,
}

/// The shard's free-space manager, dispatched by [`FsmPolicy`].
enum ShardFsm {
    Flat(AtomicBitmap),
    Tree(FsmTree),
    TreeWear(FsmTree, Reservation),
}

impl ShardFsm {
    fn new(policy: FsmPolicy, slots: u64) -> Self {
        match policy {
            FsmPolicy::Flat => ShardFsm::Flat(AtomicBitmap::new(slots)),
            FsmPolicy::Tree => ShardFsm::Tree(FsmTree::new(slots)),
            FsmPolicy::TreeWear => ShardFsm::TreeWear(FsmTree::new(slots), Reservation::new()),
        }
    }

    fn policy(&self) -> FsmPolicy {
        match self {
            ShardFsm::Flat(_) => FsmPolicy::Flat,
            ShardFsm::Tree(_) => FsmPolicy::Tree,
            ShardFsm::TreeWear(..) => FsmPolicy::TreeWear,
        }
    }

    fn allocate(&mut self, home: u64) -> Option<u64> {
        match self {
            ShardFsm::Flat(b) => b.allocate(home),
            ShardFsm::Tree(t) => t.allocate(home),
            ShardFsm::TreeWear(t, r) => t.allocate_reserved(r),
        }
    }

    fn release(&self, line: u64) -> bool {
        match self {
            ShardFsm::Flat(b) => b.release(line),
            ShardFsm::Tree(t) | ShardFsm::TreeWear(t, _) => t.release(line),
        }
    }

    fn free_lines(&self) -> u64 {
        match self {
            ShardFsm::Flat(b) => b.free_lines(),
            ShardFsm::Tree(t) | ShardFsm::TreeWear(t, _) => t.free_lines(),
        }
    }

    fn for_each_occupied<F: FnMut(u64)>(&self, f: F) {
        match self {
            ShardFsm::Flat(b) => b.for_each_occupied(f),
            ShardFsm::Tree(t) | ShardFsm::TreeWear(t, _) => t.for_each_occupied(f),
        }
    }

    /// Allocator counters; all-zero for the flat oracle, which does not
    /// track them. `&mut` so the wear mode can drain the reservation's
    /// locally accumulated counts first.
    fn stats(&mut self) -> FsmStats {
        match self {
            ShardFsm::Flat(_) => FsmStats::default(),
            ShardFsm::Tree(t) => t.stats(),
            ShardFsm::TreeWear(t, r) => {
                t.drain_reservation_stats(r);
                t.stats()
            }
        }
    }
}

/// Simulated PCM array read latency, ns.
const ARRAY_READ_NS: u64 = 75;
/// Simulated PCM array write latency, ns.
const ARRAY_WRITE_NS: u64 = 300;
/// Metadata-cache hit / table update latency, ns.
const META_NS: u64 = 1;
/// Byte-compare latency per candidate, ns.
const COMPARE_NS: u64 = 1;
/// Final counter-mode XOR on the read path, ns.
const OTP_XOR_NS: u64 = 1;

/// What one write did, plus its simulated latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardWrite {
    /// Whether the NVM array write was eliminated (confirmed duplicate).
    pub eliminated: bool,
    /// Simulated full write latency, ns.
    pub sim_ns: u64,
}

/// A write parked in the controller write queue, waiting to drain.
struct PendingWrite {
    addr: LineAddr,
    data: Vec<u8>,
    gap: u32,
}

/// One shard of the sharded memory-controller service.
pub struct ShardController {
    id: usize,
    shards: usize,
    line_size: usize,
    slots: u64,

    hasher: Box<dyn LineHasher>,
    crypt: CounterModeEngine,
    /// Which digest keys the dedup index — see [`ShardController::set_digest_mode`].
    digest_mode: DigestMode,
    /// Strong keyed digest (per-run key derived from the memory-encryption
    /// key) plus this shard's reusable scratch state, so the hot path never
    /// allocates; `Some` iff the mode is [`DigestMode::StrongKeyed`].
    strong: Option<(StrongKeyed, StrongScratch)>,
    /// The raw encryption key, kept to derive the strong digest key when
    /// the mode is switched after construction.
    key: [u8; 16],

    hash: HashTable,
    inverted: InvertedTable,
    fsm: ShardFsm,
    /// Global initial address → local slot, for every line this shard has
    /// accepted a write for. Dense: owned addresses are exactly
    /// `{a : a mod shards == id}`, so `a / shards` is a unique index.
    /// [`SLOT_NONE`] marks unmapped; grown on demand for address spaces
    /// larger than the arena.
    addr_map: Vec<u64>,
    /// Per-slot CME write counters, colocated with the address map.
    /// Monotonic for the shard's lifetime — pad uniqueness survives slot
    /// reuse.
    counters: Vec<u32>,
    /// Ciphertext arena, one line per slot.
    store: Vec<u8>,
    meta: MetadataCache,
    predictor: HistoryPredictor,

    scratch: Vec<u8>,

    /// Controller write-queue coalescing window; 0 = disabled (every
    /// submitted write applies immediately, bit-identical to the
    /// unbuffered controller).
    coalesce_window: usize,
    /// Parked writes, FIFO by first submission, at most one per address.
    pending: VecDeque<PendingWrite>,
    /// Recycled line buffers so a steady-state window allocates nothing.
    spare_bufs: Vec<Vec<u8>>,

    /// Optional epoch-batched metadata WAL. Host-side only: logging is
    /// never charged to simulated time, so the [`RunReport`] is
    /// bit-identical with persistence on or off.
    log: Option<EpochLog>,
    /// Journal ops of the write in flight, drained into the log.
    meta_ops: Vec<MetaOp>,

    base: BaseMetrics,
    dewrite: DeWriteMetrics,
    stages: StageBreakdown,
    write_latency: LatencyStats,
    write_latency_eliminated: LatencyStats,
    write_latency_stored: LatencyStats,
    write_critical: LatencyStats,
    read_latency: LatencyStats,
    write_hist: LatencyHistogram,
    read_hist: LatencyHistogram,
    energy: EnergyBreakdown,
    energy_params: EnergyParams,
    instructions: u64,
    sim_ns: u64,
    flip_bits: u64,
    nvm_data_writes: u64,
    ops: u64,
    /// XOR-fold of read-back plaintext; keeps reads observable.
    read_sink: u64,
}

impl ShardController {
    /// Create shard `id` of `shards`, owning `slots` local lines of
    /// `line_size` bytes, keyed with the memory-encryption `key`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= shards` or `slots == 0`.
    pub fn new(id: usize, shards: usize, slots: u64, line_size: usize, key: &[u8; 16]) -> Self {
        assert!(id < shards, "shard id {id} out of range 0..{shards}");
        assert!(slots > 0, "a shard needs at least one slot");
        ShardController {
            id,
            shards,
            line_size,
            slots,
            hasher: HashAlgorithm::Crc32.hasher(),
            crypt: CounterModeEngine::new(key),
            digest_mode: DigestMode::Crc32Verify,
            strong: None,
            key: *key,
            hash: HashTable::new(),
            inverted: InvertedTable::new(slots),
            fsm: ShardFsm::new(FsmPolicy::default(), slots),
            addr_map: vec![SLOT_NONE; slots as usize],
            counters: vec![0u32; slots as usize],
            store: vec![0u8; slots as usize * line_size],
            meta: MetadataCache::new(CacheConfig::with_capacity((slots as usize / 4).max(64))),
            predictor: HistoryPredictor::new(3),
            scratch: vec![0u8; line_size],
            coalesce_window: 0,
            pending: VecDeque::new(),
            spare_bufs: Vec::new(),
            log: None,
            meta_ops: Vec::new(),
            base: BaseMetrics::default(),
            dewrite: DeWriteMetrics::default(),
            stages: StageBreakdown::default(),
            write_latency: LatencyStats::new(),
            write_latency_eliminated: LatencyStats::new(),
            write_latency_stored: LatencyStats::new(),
            write_critical: LatencyStats::new(),
            read_latency: LatencyStats::new(),
            write_hist: LatencyHistogram::new(),
            read_hist: LatencyHistogram::new(),
            energy: EnergyBreakdown::new(),
            energy_params: EnergyParams::PCM,
            instructions: 0,
            sim_ns: 0,
            flip_bits: 0,
            nvm_data_writes: 0,
            ops: 0,
            read_sink: 0,
        }
    }

    /// This shard's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Operations processed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Fraction of writes eliminated as duplicates.
    pub fn dedup_rate(&self) -> f64 {
        if self.base.writes == 0 {
            0.0
        } else {
            self.base.writes_eliminated as f64 / self.base.writes as f64
        }
    }

    /// Set the controller write-queue coalescing window (0 disables it,
    /// the default). With a window of `n`, up to `n` writes park in a FIFO
    /// queue; a newer write to a parked address absorbs the parked one —
    /// the line is programmed once, with the newest value — and the
    /// absorbed submission is counted in
    /// [`BaseMetrics::coalesced_writes`].
    ///
    /// # Panics
    ///
    /// Panics if writes are currently parked — resize only between runs
    /// (or call [`ShardController::flush_writes`] first).
    pub fn set_coalesce_window(&mut self, window: usize) {
        assert!(
            self.pending.is_empty(),
            "cannot resize the coalescing window with {} writes parked",
            self.pending.len()
        );
        self.coalesce_window = window;
    }

    /// The configured coalescing window (0 = disabled).
    pub fn coalesce_window(&self) -> usize {
        self.coalesce_window
    }

    /// Select the shard's free-space manager. The arena must still be
    /// untouched: the FSM is rebuilt empty, so switching after writes would
    /// silently lose occupancy.
    ///
    /// # Panics
    ///
    /// Panics if the shard has already processed operations.
    pub fn set_fsm_policy(&mut self, policy: FsmPolicy) {
        assert!(
            self.ops == 0,
            "cannot switch the FSM after {} operations",
            self.ops
        );
        if self.fsm.policy() != policy {
            self.fsm = ShardFsm::new(policy, self.slots);
        }
    }

    /// The shard's free-space-manager policy.
    pub fn fsm_policy(&self) -> FsmPolicy {
        self.fsm.policy()
    }

    /// Select the metadata-cache eviction policy. The cache is rebuilt
    /// empty (same geometry), so switch only between runs.
    ///
    /// # Panics
    ///
    /// Panics if the shard has already processed operations.
    pub fn set_cache_policy(&mut self, policy: Replacement) {
        assert!(
            self.ops == 0,
            "cannot switch the metadata-cache policy after {} operations",
            self.ops
        );
        if self.meta.config().replacement != policy {
            let mut config = *self.meta.config();
            config.replacement = policy;
            self.meta = MetadataCache::new(config);
        }
    }

    /// The shard's metadata-cache eviction policy.
    pub fn cache_policy(&self) -> Replacement {
        self.meta.config().replacement
    }

    /// Select the digest mode keying the dedup index. Under
    /// [`DigestMode::Crc32Verify`] (the default) digests are the folded
    /// CRC-32 zero-extended and every candidate match is confirmed by a
    /// verify-read; under [`DigestMode::StrongKeyed`] the index keys on the
    /// 64-bit keyed strong tag and a tag match is accepted as a duplicate
    /// with no verify-read. The strong key is derived from the shard's
    /// memory-encryption key, so all shards of one engine agree.
    ///
    /// # Panics
    ///
    /// Panics if the shard has already processed operations — the stored
    /// digests would no longer match the digest function.
    pub fn set_digest_mode(&mut self, mode: DigestMode) {
        assert!(
            self.ops == 0,
            "cannot switch the digest mode after {} operations",
            self.ops
        );
        self.digest_mode = mode;
        self.strong = (mode == DigestMode::StrongKeyed)
            .then(|| (StrongKeyed::derive(&self.key), StrongScratch::new()));
    }

    /// The shard's digest mode.
    pub fn digest_mode(&self) -> DigestMode {
        self.digest_mode
    }

    /// Metadata-cache counters (hits, misses, queue splits, filtered scan
    /// evictions — the S3-FIFO fields stay zero under LRU/FIFO).
    pub fn cache_stats(&self) -> CacheStats {
        self.meta.stats()
    }

    /// Allocator counters: claims, reservation refills, steals, scan steps
    /// (all-zero under [`FsmPolicy::Flat`], which does not track them).
    pub fn fsm_stats(&mut self) -> FsmStats {
        self.fsm.stats()
    }

    /// Writes currently parked in the coalescing buffer.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Submit one write through the coalescing buffer.
    ///
    /// With the window disabled this is exactly [`ShardController::write`].
    /// Otherwise the write parks; if an older write to the same address is
    /// already parked, that older value is absorbed (metadata-latency only:
    /// a write-queue slot update, no array traffic) and the newer value
    /// takes its place in FIFO position. A full buffer drains its oldest
    /// entry first. Returns the applied write's outcome only when this
    /// submission caused an immediate full write (window disabled);
    /// parked/absorbed submissions return `None`.
    pub fn submit_write(&mut self, addr: LineAddr, data: &[u8], gap: u32) -> Option<ShardWrite> {
        if self.coalesce_window == 0 {
            return Some(self.write(addr, data, gap));
        }
        debug_assert_eq!(
            addr.index() as usize % self.shards,
            self.id,
            "write routed to the wrong shard"
        );
        assert_eq!(data.len(), self.line_size, "write must be one full line");
        if let Some(parked) = self.pending.iter_mut().find(|p| p.addr == addr) {
            // Absorb: account the overwritten submission now, as a
            // write-queue combine. It consumed its slot in the program
            // order (ops, instructions, writes) but costs only a queue
            // update — no digest, no array write, no stage event.
            let absorbed_gap = parked.gap;
            parked.data.copy_from_slice(data);
            parked.gap = gap;
            self.ops += 1;
            self.instructions += u64::from(absorbed_gap) + 1;
            self.base.writes += 1;
            self.base.coalesced_writes += 1;
            self.write_latency.record(META_NS);
            self.write_hist.record(META_NS);
            self.write_critical.record(META_NS);
            self.sim_ns += META_NS;
            return None;
        }
        if self.pending.len() == self.coalesce_window {
            let oldest = self.pending.pop_front().expect("window > 0, buffer full");
            self.apply_pending(oldest);
        }
        let mut buf = self
            .spare_bufs
            .pop()
            .unwrap_or_else(|| vec![0u8; self.line_size]);
        buf.copy_from_slice(data);
        self.pending.push_back(PendingWrite {
            addr,
            data: buf,
            gap,
        });
        None
    }

    /// Drain one parked write through the full write path.
    fn apply_pending(&mut self, parked: PendingWrite) {
        let PendingWrite { addr, data, gap } = parked;
        self.write(addr, &data, gap);
        self.spare_bufs.push(data);
    }

    /// Drain every parked write, oldest first. Must run before
    /// [`ShardController::scrub`] or [`ShardController::report`] at end of
    /// feed; a no-op when the window is disabled or the buffer is empty.
    pub fn flush_writes(&mut self) {
        while let Some(parked) = self.pending.pop_front() {
            self.apply_pending(parked);
        }
    }

    /// Stable fingerprint of a shard's durable-format-relevant geometry:
    /// two stores agree on it exactly when their persisted metadata is
    /// mutually interpretable (same interleaving, arena, line size, shard
    /// identity, and digest mode — the stored digests are only meaningful
    /// under the digest function that produced them).
    pub fn persist_fingerprint(
        id: usize,
        shards: usize,
        slots: u64,
        line_size: usize,
        mode: DigestMode,
    ) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(b"dewrite-engine-shard-v2");
        eat(&(id as u64).to_le_bytes());
        eat(&(shards as u64).to_le_bytes());
        eat(&slots.to_le_bytes());
        eat(&(line_size as u64).to_le_bytes());
        eat(&[mode.to_wire()]);
        h
    }

    /// Attach an epoch-batched metadata WAL rooted at `dir`, anchored on a
    /// checkpoint of the shard's current state. From here on every applied
    /// write's metadata mutations are journaled (global addresses, so the
    /// per-shard stores compose into the full line space) and flushed per
    /// the epoch policy.
    ///
    /// # Errors
    ///
    /// Propagates store-creation failures.
    pub fn attach_persistence(&mut self, dir: &Path, opts: DurableOptions) -> std::io::Result<()> {
        let snapshot = self.snapshot();
        let log = EpochLog::create(
            dir,
            Self::persist_fingerprint(
                self.id,
                self.shards,
                self.slots,
                self.line_size,
                self.digest_mode,
            ),
            &snapshot,
            opts,
        )?;
        self.log = Some(log);
        Ok(())
    }

    /// Whether a metadata WAL is attached.
    pub fn persistence_attached(&self) -> bool {
        self.log.is_some()
    }

    /// Applied writes not yet covered by a durable WAL record (always 0
    /// without persistence).
    pub fn unflushed_wal_writes(&self) -> u64 {
        self.log.as_ref().map_or(0, EpochLog::unflushed_writes)
    }

    /// Force the open WAL epoch to the log; a no-op without persistence.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush_wal(&mut self) -> std::io::Result<()> {
        match &mut self.log {
            Some(log) => log.flush(),
            None => Ok(()),
        }
    }

    /// Flush the WAL and rotate to a checkpoint of the shard's current
    /// state (the end-of-drain durability point); a no-op without
    /// persistence.
    ///
    /// # Panics
    ///
    /// Panics if writes are parked in the coalescing buffer — drain with
    /// [`ShardController::flush_writes`] first so the checkpoint covers
    /// them.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist_checkpoint(&mut self) -> std::io::Result<()> {
        if self.log.is_none() {
            return Ok(());
        }
        assert!(
            self.pending.is_empty(),
            "checkpoint with {} writes parked in the coalescing buffer",
            self.pending.len()
        );
        let snapshot = self.snapshot();
        self.log
            .as_mut()
            .expect("checked above")
            .checkpoint(&snapshot)
    }

    /// Graceful-shutdown durability: checkpoint, then force the store's
    /// files to stable storage even when the log runs with `sync: false`
    /// (the engine default). A no-op without persistence.
    ///
    /// # Panics
    ///
    /// Panics if writes are parked in the coalescing buffer — drain with
    /// [`ShardController::flush_writes`] first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist_shutdown(&mut self) -> std::io::Result<()> {
        if self.log.is_none() {
            return Ok(());
        }
        self.persist_checkpoint()?;
        self.log.as_mut().expect("checked above").sync_all()
    }

    /// Capture the shard's durable metadata as a [`Snapshot`] in global
    /// address terms: mappings are initial address → resident line, and
    /// resident/counter lines are [`ShardController::slot_global`] values,
    /// so per-shard snapshots compose without collisions.
    pub fn snapshot(&self) -> Snapshot {
        let lines = self.addr_map.len().max(self.slots as usize) as u64 * self.shards as u64;
        let mut mappings = Vec::new();
        for (idx, &slot) in self.addr_map.iter().enumerate() {
            if slot != SLOT_NONE {
                let init = idx as u64 * self.shards as u64 + self.id as u64;
                mappings.push((init, self.slot_global(slot)));
            }
        }
        let mut residents = Vec::new();
        let inverted = &self.inverted;
        self.fsm.for_each_occupied(|slot| {
            let digest = inverted
                .digest_of(LineAddr::new(slot))
                .expect("occupied slot must have an inverted-hash row");
            residents.push((self.slot_global(slot), digest));
        });
        residents.sort_unstable();
        let counters = self
            .counters
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(slot, &c)| (self.slot_global(slot as u64), c))
            .collect();
        Snapshot {
            config_fp: Self::persist_fingerprint(
                self.id,
                self.shards,
                self.slots,
                self.line_size,
                self.digest_mode,
            ),
            lines,
            mappings,
            residents,
            counters,
        }
    }

    /// Feed the in-flight write's journal ops to the log, flushing and
    /// checkpointing per the epoch policy. Called at the end of every
    /// applied write; a no-op without persistence.
    fn journal_write(&mut self) {
        if self.log.is_none() {
            return;
        }
        let ops = std::mem::take(&mut self.meta_ops);
        let due = self
            .log
            .as_mut()
            .expect("checked above")
            .record_write(ops)
            .expect("metadata WAL append failed");
        if due {
            let snapshot = self.snapshot();
            self.log
                .as_mut()
                .expect("checked above")
                .checkpoint(&snapshot)
                .expect("metadata checkpoint failed");
        }
    }

    /// DeWrite's digest fold: XOR the CRC's two 32-bit halves.
    fn fold_digest(d: u64) -> u32 {
        (d ^ (d >> 32)) as u32
    }

    /// The index digest of `data` under the shard's digest mode: the folded
    /// CRC-32 zero-extended (so crc32-verify probe sequences are identical
    /// to the seed), or the 64-bit strong keyed tag.
    fn compute_digest(&mut self, data: &[u8]) -> u64 {
        match self.strong.as_mut() {
            Some((strong, scratch)) => strong.digest_with(data, scratch),
            None => u64::from(Self::fold_digest(self.hasher.digest(data))),
        }
    }

    /// [`ShardController::compute_digest`] without `&mut self` (scrub path;
    /// uses a throwaway scratch, off the hot path).
    fn compute_digest_readonly(&self, data: &[u8]) -> u64 {
        match self.strong.as_ref() {
            Some((strong, _)) => strong.digest_with(data, &mut StrongScratch::new()),
            None => u64::from(Self::fold_digest(self.hasher.digest(data))),
        }
    }

    /// Modeled hardware cost of one digest under the shard's digest mode.
    fn digest_cost(&self) -> dewrite_hashes::HashCost {
        if self.strong.is_some() {
            HashAlgorithm::StrongKeyed.cost()
        } else {
            self.hasher.cost()
        }
    }

    /// Local home slot of a global address this shard owns.
    fn home_slot(&self, addr: LineAddr) -> u64 {
        (addr.index() / self.shards as u64) % self.slots
    }

    /// Global line address of a local slot (the crypto pad tweak, unique
    /// across shards).
    fn slot_global(&self, slot: u64) -> u64 {
        slot * self.shards as u64 + self.id as u64
    }

    fn slot_range(&self, slot: u64) -> std::ops::Range<usize> {
        let start = slot as usize * self.line_size;
        start..start + self.line_size
    }

    /// Decrypt the line resident in `slot` into the scratch buffer.
    fn decrypt_slot(&mut self, slot: u64) {
        let range = self.slot_range(slot);
        let addr = self.slot_global(slot);
        let ctr = LineCounter::from_value(self.counters[slot as usize]);
        self.crypt
            .decrypt_line_into(&self.store[range], addr, ctr, &mut self.scratch);
    }

    /// Dense address-map index of a global address this shard owns.
    fn map_index(&self, addr: LineAddr) -> usize {
        (addr.index() / self.shards as u64) as usize
    }

    /// The mapped local slot of `addr`, if any.
    fn mapped_slot(&self, addr: LineAddr) -> Option<u64> {
        self.addr_map
            .get(self.map_index(addr))
            .copied()
            .filter(|&slot| slot != SLOT_NONE)
    }

    /// Map `addr` to a local slot, growing the dense map if the address
    /// space outruns the arena size it was pre-sized to.
    fn map_addr(&mut self, addr: LineAddr, slot: u64) {
        let idx = self.map_index(addr);
        if idx >= self.addr_map.len() {
            self.addr_map.resize(idx + 1, SLOT_NONE);
        }
        self.addr_map[idx] = slot;
    }

    /// Drop `addr`'s current mapping, releasing its slot when the last
    /// reference goes. Returns the freed local slot, if one went free.
    fn release_previous_mapping(&mut self, addr: LineAddr) -> Option<u64> {
        let old_slot = self.mapped_slot(addr)?;
        let idx = self.map_index(addr);
        self.addr_map[idx] = SLOT_NONE;
        let digest = self
            .inverted
            .digest_of(LineAddr::new(old_slot))
            .expect("occupied slot must have an inverted-hash row");
        if self.hash.release_reference(digest, LineAddr::new(old_slot)) == 0 {
            self.inverted.clear(LineAddr::new(old_slot));
            assert!(self.fsm.release(old_slot), "double free of slot {old_slot}");
            Some(old_slot)
        } else {
            None
        }
    }

    /// Accept one write of a full line at `addr` (which must belong to this
    /// shard), preceded by `gap` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not this shard's, `data` is not one line, the
    /// shard's arena is exhausted (size it for the workload plus saturated
    /// residue), or an attached metadata WAL hits an I/O error.
    pub fn write(&mut self, addr: LineAddr, data: &[u8], gap: u32) -> ShardWrite {
        debug_assert_eq!(
            addr.index() as usize % self.shards,
            self.id,
            "write routed to the wrong shard"
        );
        debug_assert!(
            self.pending.iter().all(|p| p.addr != addr),
            "direct write() would reorder past a parked coalesced write; use submit_write"
        );
        assert_eq!(data.len(), self.line_size, "write must be one full line");
        self.ops += 1;
        self.instructions += u64::from(gap) + 1;
        self.base.writes += 1;

        // Stage 1: fingerprint.
        let digest_ns = self.digest_cost().latency_ns;
        let digest = self.compute_digest(data);
        self.base.hash_ops += 1;
        self.energy.dedup_pj += self.digest_cost().energy_pj;

        // Stage 2: predict, then probe the hash-store cache.
        let predicted_dup = self.predictor.predict_duplicate();
        let cache_hit = self.meta.access(digest, false);
        let probe_ns = if cache_hit {
            META_NS
        } else {
            self.base.meta_nvm_reads += 1;
            self.energy.nvm_read_pj += self.energy_params.read_line_pj;
            ARRAY_READ_NS
        };
        // PNA: on a cache miss with a non-duplicate prediction, skip the
        // in-NVM hash-table query entirely.
        let pna_skip = !cache_hit && !predicted_dup;
        if pna_skip {
            self.dewrite.pna_skips += 1;
        }
        if !cache_hit {
            let _ = self.meta.insert(digest, false);
        }

        // Speculative encryption on the parallel path: predicted-non-dup
        // writes encrypt while detection runs.
        let speculative = !predicted_dup;
        if speculative {
            self.dewrite.parallel_writes += 1;
        } else {
            self.dewrite.direct_writes += 1;
        }

        // Stages 3+4: candidate verification.
        let mut verify_ns = 0u64;
        let mut compare_ns = 0u64;
        let mut dup_slot: Option<u64> = None;
        if !pna_skip {
            let candidates = self.hash.candidates(digest);
            if self.strong.is_some() {
                // Verify-free: a 64-bit keyed-tag match *is* the duplicate
                // decision — accept the first unsaturated candidate with no
                // array read, no decryption, no byte compare.
                for &HashEntry { real, reference } in &candidates {
                    if reference == MAX_REFERENCE {
                        self.dewrite.saturated_skips += 1;
                        continue;
                    }
                    self.dewrite.assumed_dups += 1;
                    dup_slot = Some(real.index());
                    break;
                }
            } else {
                let mut compared = 0usize;
                for &HashEntry { real, reference } in &candidates {
                    if compared == MAX_CANDIDATE_COMPARES {
                        break;
                    }
                    if reference == MAX_REFERENCE {
                        self.dewrite.saturated_skips += 1;
                        continue;
                    }
                    compared += 1;
                    self.base.verify_reads += 1;
                    verify_ns += ARRAY_READ_NS;
                    compare_ns += COMPARE_NS;
                    self.energy.nvm_read_pj += self.energy_params.read_line_pj;
                    self.energy.dedup_pj += self.energy_params.compare_pj;
                    self.decrypt_slot(real.index());
                    if lines_equal(&self.scratch, data) {
                        dup_slot = Some(real.index());
                        break;
                    }
                    self.dewrite.false_matches += 1;
                }
            }
        }

        // Commit: duplicate (reference the resident copy) or store.
        let mut event = WriteEvent::new(WritePath::Stored);
        event.predicted_dup = predicted_dup;
        event.pna_skip = pna_skip;
        event.set_stage(Stage::Digest, digest_ns);
        event.set_stage(Stage::HashProbe, probe_ns);
        if verify_ns > 0 {
            event.set_stage(Stage::VerifyRead, verify_ns);
            event.set_stage(Stage::Compare, compare_ns);
        }
        let detection_ns = probe_ns + verify_ns + compare_ns;

        let eliminated = match dup_slot {
            Some(slot) if self.hash.add_reference(digest, LineAddr::new(slot)) => {
                // Order matters when the old mapping is the same slot: add
                // the new reference before releasing the old one so the
                // entry never transiently hits zero.
                let freed = self.release_previous_mapping(addr);
                self.map_addr(addr, slot);
                if self.log.is_some() {
                    if let Some(f) = freed {
                        let real = self.slot_global(f);
                        self.meta_ops.push(MetaOp::ResidentDel { real });
                    }
                    let real = self.slot_global(slot);
                    self.meta_ops.push(MetaOp::MapSet {
                        init: addr.index(),
                        real,
                    });
                }
                true
            }
            _ => false,
        };

        let sim_ns;
        let critical_ns;
        if eliminated {
            self.base.writes_eliminated += 1;
            self.dewrite.dup_eliminated += 1;
            if speculative {
                // The speculative encryption raced detection and lost.
                self.dewrite.wasted_encryptions += 1;
                self.base.aes_line_ops += 1;
                self.energy.aes_pj += aes_line_energy_pj(self.line_size);
                event.set_stage(Stage::Encrypt, AES_LINE_LATENCY_NS);
            } else {
                self.dewrite.saved_encryptions += 1;
            }
            event.set_stage(Stage::Metadata, META_NS);
            event.path = WritePath::Duplicate;
            critical_ns = digest_ns + detection_ns + META_NS;
            sim_ns = critical_ns;
        } else {
            let freed = self.release_previous_mapping(addr);
            let home = self.home_slot(addr);
            let slot = self
                .fsm
                .allocate(home)
                .expect("shard arena exhausted: size slots for the workload");
            self.counters[slot as usize] += 1;
            let ctr = LineCounter::from_value(self.counters[slot as usize]);
            let global = self.slot_global(slot);
            let range = self.slot_range(slot);
            let old_ct = &self.store[range.clone()];
            self.crypt
                .encrypt_line_into(data, global, ctr, &mut self.scratch);
            let flips = dewrite_nvm::bit_flips(old_ct, &self.scratch);
            self.store[range].copy_from_slice(&self.scratch);
            self.flip_bits += flips;
            self.nvm_data_writes += 1;
            self.energy.nvm_write_pj += self.energy_params.write_energy_pj(flips);
            self.base.aes_line_ops += 1;
            self.energy.aes_pj += aes_line_energy_pj(self.line_size);
            self.hash.insert(digest, LineAddr::new(slot));
            self.inverted.set(LineAddr::new(slot), digest);
            self.map_addr(addr, slot);
            if self.log.is_some() {
                // ResidentDel first: the allocator may hand back the slot
                // the release just freed, and replay applies ops in order.
                if let Some(f) = freed {
                    let real = self.slot_global(f);
                    self.meta_ops.push(MetaOp::ResidentDel { real });
                }
                let real = self.slot_global(slot);
                self.meta_ops.push(MetaOp::ResidentSet { real, digest });
                self.meta_ops.push(MetaOp::MapSet {
                    init: addr.index(),
                    real,
                });
                self.meta_ops.push(MetaOp::CounterSet {
                    line: real,
                    value: self.counters[slot as usize],
                });
            }

            event.set_stage(Stage::Encrypt, AES_LINE_LATENCY_NS);
            event.set_stage(Stage::ArrayWrite, ARRAY_WRITE_NS);
            event.set_stage(Stage::Metadata, META_NS);
            // Parallel path overlaps encryption with detection; direct path
            // serializes them.
            let front_ns = if speculative {
                detection_ns.max(AES_LINE_LATENCY_NS)
            } else {
                detection_ns + AES_LINE_LATENCY_NS
            };
            critical_ns = digest_ns + front_ns + META_NS;
            sim_ns = critical_ns + ARRAY_WRITE_NS;
        }

        // The write updated dedup metadata either way; dirty the cached
        // hash-store entry so its eventual eviction becomes an NVM write.
        let _ = self.meta.access(digest, true);

        self.predictor.record(eliminated);
        self.stages.observe(&event);
        self.write_latency.record(sim_ns);
        self.write_hist.record(sim_ns);
        self.write_critical.record(critical_ns);
        if eliminated {
            self.write_latency_eliminated.record(sim_ns);
        } else {
            self.write_latency_stored.record(sim_ns);
        }
        self.sim_ns += sim_ns;
        self.journal_write();
        ShardWrite { eliminated, sim_ns }
    }

    /// Serve one read at `addr`, preceded by `gap` instructions. Returns
    /// the simulated latency; the plaintext is folded into an internal
    /// sink so the work is observable.
    pub fn read(&mut self, addr: LineAddr, gap: u32) -> u64 {
        debug_assert_eq!(
            addr.index() as usize % self.shards,
            self.id,
            "read routed to the wrong shard"
        );
        // Read-after-write through the write queue: a parked write to this
        // address must land first so the read observes it (per-address
        // order is what coalescing preserves; cross-address drain order is
        // the queue's business).
        if !self.pending.is_empty() {
            if let Some(i) = self.pending.iter().position(|p| p.addr == addr) {
                let parked = self.pending.remove(i).expect("position() found it");
                self.apply_pending(parked);
            }
        }
        self.ops += 1;
        self.instructions += u64::from(gap) + 1;
        self.base.reads += 1;
        self.energy.nvm_read_pj += self.energy_params.read_line_pj;
        let sim_ns = match self.mapped_slot(addr) {
            Some(slot) => {
                self.decrypt_slot(slot);
                let mut fold = 0u64;
                for chunk in self.scratch.chunks(8) {
                    let mut b = [0u8; 8];
                    b[..chunk.len()].copy_from_slice(chunk);
                    fold ^= u64::from_le_bytes(b);
                }
                self.read_sink ^= fold;
                META_NS + ARRAY_READ_NS + OTP_XOR_NS
            }
            // Never-written line: the array read happens, nothing to decrypt.
            None => META_NS + ARRAY_READ_NS,
        };
        self.read_latency.record(sim_ns);
        self.read_hist.record(sim_ns);
        self.sim_ns += sim_ns;
        sim_ns
    }

    /// The XOR-fold of all plaintext this shard has read back.
    pub fn read_sink(&self) -> u64 {
        self.read_sink
    }

    /// Full cross-table consistency check. Verifies that
    ///
    /// * occupied FSM slots, inverted-hash rows and hash-table entries are
    ///   in exact 1:1:1 correspondence (no orphaned counters, no dangling
    ///   inverted rows);
    /// * every resident line decrypts to content whose digest matches its
    ///   inverted-hash row;
    /// * every non-saturated reference count equals the number of mapped
    ///   addresses resolving to that slot;
    /// * the free count is consistent.
    ///
    /// Returns the number of resident lines checked.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn scrub(&mut self) -> Result<u64, String> {
        if !self.pending.is_empty() {
            return Err(format!(
                "shard {}: {} unflushed writes parked in the coalescing buffer",
                self.id,
                self.pending.len()
            ));
        }
        if self.unflushed_wal_writes() > 0 {
            return Err(format!(
                "shard {}: {} writes in the open WAL epoch not yet flushed",
                self.id,
                self.unflushed_wal_writes()
            ));
        }
        // One pass over the bitmap through the visitor — no intermediate
        // `Vec` of every resident; the set is needed for membership anyway.
        let mut occupied_set = std::collections::HashSet::new();
        self.fsm.for_each_occupied(|slot| {
            occupied_set.insert(slot);
        });

        if self.fsm.free_lines() + occupied_set.len() as u64 != self.slots {
            return Err(format!(
                "shard {}: free count {} + occupied {} != {} slots",
                self.id,
                self.fsm.free_lines(),
                occupied_set.len(),
                self.slots
            ));
        }
        if self.inverted.len() != occupied_set.len() {
            return Err(format!(
                "shard {}: {} inverted rows but {} occupied slots",
                self.id,
                self.inverted.len(),
                occupied_set.len()
            ));
        }
        if self.hash.len() != occupied_set.len() {
            return Err(format!(
                "shard {}: {} hash entries but {} occupied slots",
                self.id,
                self.hash.len(),
                occupied_set.len()
            ));
        }

        // How many mapped addresses resolve to each slot.
        let mut mapped_refs: HashMap<u64, u64> = HashMap::new();
        for (idx, &slot) in self.addr_map.iter().enumerate() {
            if slot == SLOT_NONE {
                continue;
            }
            if !occupied_set.contains(&slot) {
                let init = idx as u64 * self.shards as u64 + self.id as u64;
                return Err(format!(
                    "shard {}: address {init} maps to free slot {slot}",
                    self.id
                ));
            }
            *mapped_refs.entry(slot).or_insert(0) += 1;
        }

        for &slot in &occupied_set {
            let Some(digest) = self.inverted.digest_of(LineAddr::new(slot)) else {
                return Err(format!(
                    "shard {}: occupied slot {slot} has no inverted-hash row (orphaned counter)",
                    self.id
                ));
            };
            let Some(reference) = self.hash.reference(digest, LineAddr::new(slot)) else {
                return Err(format!(
                    "shard {}: slot {slot} digest {digest:#x} missing from the hash table",
                    self.id
                ));
            };
            self.decrypt_slot(slot);
            let actual = self.compute_digest_readonly(&self.scratch);
            if actual != digest {
                return Err(format!(
                    "shard {}: slot {slot} content digests to {actual:#x}, inverted row says {digest:#x}",
                    self.id
                ));
            }
            let refs = mapped_refs.get(&slot).copied().unwrap_or(0);
            if reference != MAX_REFERENCE && u64::from(reference) != refs {
                return Err(format!(
                    "shard {}: slot {slot} reference {reference} but {refs} mapped addresses",
                    self.id
                ));
            }
        }
        Ok(occupied_set.len() as u64)
    }

    /// This shard's simulated run report (deterministic: a pure function
    /// of the shard's input feed).
    pub fn report(&self, app: &str) -> RunReport {
        let mut dewrite = self.dewrite;
        dewrite.predictor_accuracy = self.predictor.accuracy();
        let cache = self.meta.stats();
        let mut base = self.base;
        base.meta_nvm_writes += cache.dirty_evictions;
        RunReport {
            scheme: "engine-dewrite".into(),
            app: app.into(),
            instructions: self.instructions,
            cycles: self.sim_ns as f64,
            ipc: if self.sim_ns == 0 {
                0.0
            } else {
                self.instructions as f64 / self.sim_ns as f64
            },
            write_latency: self.write_latency,
            write_latency_eliminated: self.write_latency_eliminated,
            write_latency_stored: self.write_latency_stored,
            read_latency: self.read_latency,
            write_critical: self.write_critical,
            base,
            energy: self.energy,
            nvm_data_writes: self.nvm_data_writes,
            bit_flip_ratio: if self.nvm_data_writes == 0 {
                0.0
            } else {
                self.flip_bits as f64 / (self.nvm_data_writes * self.line_size as u64 * 8) as f64
            },
            dewrite: Some(dewrite),
            write_latency_hist: self.write_hist.clone(),
            read_latency_hist: self.read_hist.clone(),
            stage_breakdown: self.stages.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: usize = 64;
    const KEY: &[u8; 16] = b"dewrite-repro-16";

    fn shard() -> ShardController {
        ShardController::new(0, 1, 256, LINE, KEY)
    }

    fn line(tag: u8) -> Vec<u8> {
        (0..LINE).map(|i| tag ^ (i as u8)).collect()
    }

    #[test]
    fn duplicate_writes_are_eliminated() {
        let mut s = shard();
        let a = s.write(LineAddr::new(0), &line(7), 10);
        assert!(!a.eliminated);
        let b = s.write(LineAddr::new(1), &line(7), 10);
        assert!(b.eliminated);
        assert_eq!(s.dedup_rate(), 0.5);
        assert_eq!(s.scrub().unwrap(), 1);
    }

    #[test]
    fn overwrite_releases_the_old_reference() {
        let mut s = shard();
        s.write(LineAddr::new(0), &line(1), 0);
        s.write(LineAddr::new(1), &line(1), 0); // dup of line(1)
        s.write(LineAddr::new(1), &line(2), 0); // overwrite with new content
        s.write(LineAddr::new(0), &line(3), 0); // last ref to line(1) gone
        assert_eq!(s.scrub().unwrap(), 2, "line(1)'s slot was freed");
    }

    #[test]
    fn rewrite_same_content_to_same_address_is_stable() {
        let mut s = shard();
        s.write(LineAddr::new(4), &line(9), 0);
        let again = s.write(LineAddr::new(4), &line(9), 0);
        assert!(again.eliminated, "self-duplicate dedups against itself");
        assert_eq!(s.scrub().unwrap(), 1);
    }

    #[test]
    fn reads_return_after_writes_and_fold_data() {
        let mut s = shard();
        // line()'s tag^i pattern XOR-folds to zero; break the symmetry so
        // the sink observably changes.
        let mut data = line(5);
        data[0] ^= 0xFF;
        s.write(LineAddr::new(2), &data, 0);
        let before = s.read_sink();
        let ns = s.read(LineAddr::new(2), 3);
        assert!(ns >= 75);
        assert_ne!(s.read_sink(), before, "read folded real plaintext");
        // A never-written read is still served.
        s.read(LineAddr::new(8), 0);
        let r = s.report("t");
        assert_eq!(r.base.reads, 2);
    }

    #[test]
    fn report_counts_are_consistent() {
        let mut s = shard();
        for i in 0..50u64 {
            s.write(LineAddr::new(i), &line((i % 5) as u8), 2);
        }
        let r = s.report("unit");
        assert_eq!(r.base.writes, 50);
        assert_eq!(
            r.base.writes_eliminated + r.nvm_data_writes,
            50,
            "every write either dedups or stores"
        );
        assert!(r.write_latency.count() == 50);
        assert!(r.stage_breakdown.writes() == 50);
        assert!(r.dewrite.unwrap().dup_eliminated > 0);
        assert_eq!(s.scrub().unwrap(), 5, "five distinct contents resident");
    }

    #[test]
    fn saturated_entries_fall_through_to_store() {
        let mut s = ShardController::new(0, 1, 1024, LINE, KEY);
        // 255 refs saturate the entry; the 256th+ write of the same content
        // must store a successor copy instead of over-counting.
        for i in 0..300u64 {
            s.write(LineAddr::new(i), &line(1), 0);
        }
        let r = s.report("sat");
        assert!(r.dewrite.unwrap().saturated_skips > 0);
        assert!(s.scrub().is_ok());
    }

    #[test]
    #[should_panic(expected = "one full line")]
    fn wrong_line_size_rejected() {
        shard().write(LineAddr::new(0), &[0u8; 3], 0);
    }

    #[test]
    fn coalescing_absorbs_rewrites_and_keeps_the_invariant() {
        let mut s = shard();
        s.set_coalesce_window(8);
        // Three writes to the same line: the first two are absorbed by
        // their successors, only line(3) ever drains.
        for tag in 1..=3u8 {
            assert!(s.submit_write(LineAddr::new(7), &line(tag), 5).is_none());
        }
        // Distinct addresses park independently.
        s.submit_write(LineAddr::new(1), &line(9), 5);
        assert_eq!(s.pending_writes(), 2);
        assert!(s.scrub().is_err(), "scrub refuses unflushed writes");
        s.flush_writes();
        assert_eq!(s.pending_writes(), 0);
        assert_eq!(s.scrub().unwrap(), 2);
        let r = s.report("coalesce");
        assert_eq!(r.base.writes, 4);
        assert_eq!(r.base.coalesced_writes, 2);
        assert_eq!(
            r.base.writes_eliminated + r.base.coalesced_writes + r.nvm_data_writes,
            r.base.writes,
            "every write dedups, coalesces, or stores"
        );
        assert_eq!(r.write_latency.count(), 4);
        assert_eq!(r.instructions, 4 * 6, "absorbed gaps still retire");
    }

    #[test]
    fn coalescing_read_flushes_only_its_address() {
        let mut s = shard();
        s.set_coalesce_window(4);
        let mut data = line(5);
        data[0] ^= 0xFF;
        s.submit_write(LineAddr::new(2), &line(1), 0);
        s.submit_write(LineAddr::new(2), &data, 0); // absorbs line(1)
        s.submit_write(LineAddr::new(3), &line(6), 0);
        let before = s.read_sink();
        s.read(LineAddr::new(2), 0);
        assert_ne!(s.read_sink(), before, "read saw the newest parked value");
        assert_eq!(s.pending_writes(), 1, "address 3 stays parked");
        s.flush_writes();
        assert!(s.scrub().is_ok());
    }

    #[test]
    fn coalescing_full_window_evicts_oldest_first() {
        let mut s = shard();
        s.set_coalesce_window(2);
        s.submit_write(LineAddr::new(0), &line(1), 0);
        s.submit_write(LineAddr::new(1), &line(2), 0);
        // Window full: address 0 (oldest) drains to make room.
        s.submit_write(LineAddr::new(2), &line(3), 0);
        assert_eq!(s.pending_writes(), 2);
        let r = s.report("evict");
        assert_eq!(r.nvm_data_writes, 1, "exactly the evicted write stored");
        s.flush_writes();
        assert_eq!(s.scrub().unwrap(), 3);
    }

    #[test]
    fn zero_window_submit_is_plain_write() {
        let mut a = shard();
        let mut b = shard();
        for i in 0..20u64 {
            let w = a.submit_write(LineAddr::new(i % 6), &line((i % 3) as u8), 1);
            let x = b.write(LineAddr::new(i % 6), &line((i % 3) as u8), 1);
            assert_eq!(w, Some(x));
        }
        a.flush_writes(); // no-op
        assert_eq!(
            a.report("z").to_json().to_string(),
            b.report("z").to_json().to_string(),
            "window 0 is bit-identical to the unbuffered controller"
        );
    }

    fn persist_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "dewrite-shard-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn persist_opts(epoch_writes: u32, checkpoint_epochs: u32) -> DurableOptions {
        DurableOptions {
            epoch_writes,
            checkpoint_epochs,
            sync: false,
        }
    }

    #[test]
    fn persisted_metadata_recovers_to_the_live_snapshot() {
        let dir = persist_dir("roundtrip");
        let mut s = ShardController::new(1, 2, 128, LINE, KEY);
        s.attach_persistence(&dir, persist_opts(4, 2)).unwrap();
        for i in 0..30u64 {
            s.write(LineAddr::new(i * 2 + 1), &line((i % 5) as u8), 0);
        }
        assert_eq!(s.unflushed_wal_writes(), 2, "30 writes = 7 epochs + 2");
        assert!(
            s.scrub().unwrap_err().contains("WAL"),
            "scrub refuses unflushed WAL epochs"
        );
        s.persist_checkpoint().unwrap();
        assert_eq!(s.unflushed_wal_writes(), 0);
        s.scrub().expect("clean after checkpoint");

        let fp = ShardController::persist_fingerprint(1, 2, 128, LINE, DigestMode::Crc32Verify);
        let (recovered, stats) =
            dewrite_persist::recover_state(&dir, fp, 1 << 20).expect("recover");
        assert_eq!(stats.writes_covered, 30);
        assert!(!stats.torn_tail);
        assert_eq!(recovered, s.snapshot(), "replayed state == live state");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_recovery_stops_at_the_epoch_boundary() {
        let dir = persist_dir("crash");
        let mut s = ShardController::new(0, 1, 256, LINE, KEY);
        s.attach_persistence(&dir, persist_opts(4, 100)).unwrap();
        // 10 writes = 2 flushed epochs (8 writes) + 2 lost with the crash.
        for i in 0..10u64 {
            s.write(LineAddr::new(i % 6), &line((i % 3) as u8), 0);
        }
        assert_eq!(s.unflushed_wal_writes(), 2);
        drop(s);

        // Replay the flushed prefix through a fresh shard: recovery must
        // land exactly on that epoch-boundary state.
        let mut reference = shard();
        for i in 0..8u64 {
            reference.write(LineAddr::new(i % 6), &line((i % 3) as u8), 0);
        }
        let fp = ShardController::persist_fingerprint(0, 1, 256, LINE, DigestMode::Crc32Verify);
        let (recovered, stats) =
            dewrite_persist::recover_state(&dir, fp, 1 << 20).expect("recover");
        assert_eq!(stats.writes_covered, 8);
        assert_eq!(recovered, reference.snapshot());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistence_does_not_change_the_report() {
        let dir = persist_dir("determinism");
        let mut plain = shard();
        let mut logged = shard();
        logged.attach_persistence(&dir, persist_opts(4, 2)).unwrap();
        for i in 0..60u64 {
            let a = plain.write(LineAddr::new(i % 9), &line((i % 4) as u8), 3);
            let b = logged.write(LineAddr::new(i % 9), &line((i % 4) as u8), 3);
            assert_eq!(a, b);
        }
        logged.persist_checkpoint().unwrap();
        assert_eq!(
            plain.report("p").to_json().to_string(),
            logged.report("p").to_json().to_string(),
            "host-side logging must never leak into the simulated report"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_controller_owns_interleaved_addresses() {
        let mut s = ShardController::new(1, 4, 64, LINE, KEY);
        s.write(LineAddr::new(5), &line(1), 0); // 5 % 4 == 1
        s.write(LineAddr::new(9), &line(1), 0);
        assert_eq!(s.dedup_rate(), 0.5);
        assert_eq!(s.scrub().unwrap(), 1);
    }
}
