//! End-to-end persistence: durable workload → crash or clean shutdown →
//! `DeWrite::recover` → every line verified, plus proptest codec hardening
//! (run on both `DEWRITE_PORTABLE` legs by CI).

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use dewrite_core::{DeWrite, DeWriteConfig, SecureMemory, Snapshot, SystemConfig};
use dewrite_nvm::LineAddr;
use dewrite_persist::{
    decode_wal, encode_record, encode_wal_header, DurableDeWrite, DurableOptions, PersistError,
    RecoverDeWrite, WalRecord, WalTail,
};
use proptest::prelude::*;

const KEY: &[u8; 16] = b"persist test key";
const LINES: u64 = 512;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "dewrite-recovery-test-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

fn config() -> SystemConfig {
    SystemConfig::for_lines(LINES)
}

/// Deterministic line content for write `i` (small tag space → duplicates).
fn content(i: u64) -> (LineAddr, Vec<u8>) {
    let addr = LineAddr::new((i * 7 + i / 5) % 64);
    let tag = (i % 6) as u8;
    let data: Vec<u8> = (0..256).map(|j| tag.wrapping_add((j / 16) as u8)).collect();
    (addr, data)
}

fn run_workload(mem: &mut DurableDeWrite, writes: u64) -> HashMap<u64, Vec<u8>> {
    let mut shadow = HashMap::new();
    for i in 0..writes {
        let (addr, data) = content(i);
        mem.write(addr, &data, i * 600).expect("write");
        shadow.insert(addr.index(), data);
    }
    shadow
}

#[test]
fn clean_shutdown_then_recover_restores_every_line() {
    let dir = tmpdir("clean");
    let opts = DurableOptions {
        epoch_writes: 16,
        checkpoint_epochs: 4,
        sync: false,
    };
    let mut mem =
        DurableDeWrite::create(&dir, config(), DeWriteConfig::paper(), KEY, opts).expect("create");
    let shadow = run_workload(&mut mem, 300);
    let inner = mem.shutdown().expect("shutdown");
    let (_, device) = inner.power_off();

    let (mut recovered, stats) =
        DeWrite::recover(&dir, config(), DeWriteConfig::paper(), KEY, device).expect("recover");
    assert_eq!(
        stats.writes_covered, 300,
        "clean shutdown covers all writes"
    );
    assert!(!stats.torn_tail, "clean shutdown leaves no torn tail");
    let mut t = 1_000_000;
    for (&addr, expect) in &shadow {
        let got = recovered.read(LineAddr::new(addr), t).expect("read").data;
        assert_eq!(&got, expect, "line {addr}");
        t += 500;
    }
    recovered.index().check_invariants().expect("invariants");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_without_shutdown_recovers_flushed_epochs() {
    let dir = tmpdir("crash");
    let opts = DurableOptions {
        epoch_writes: 8,
        checkpoint_epochs: 4,
        sync: false,
    };
    let mut mem =
        DurableDeWrite::create(&dir, config(), DeWriteConfig::paper(), KEY, opts).expect("create");
    // 100 writes = 12 full epochs (96 writes) + 4 unflushed: the crash
    // (dropping without shutdown) loses exactly the open epoch.
    run_workload(&mut mem, 100);
    assert_eq!(mem.log().unflushed_writes(), 4);
    drop(mem);

    // Rebuild the reference device state at the epoch boundary (write 96):
    // the epoch is the atomic unit of loss for data + metadata alike.
    let mut reference = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    let mut shadow = HashMap::new();
    for i in 0..96 {
        let (addr, data) = content(i);
        reference.write(addr, &data, i * 600).expect("write");
        shadow.insert(addr.index(), data);
    }
    let (_, device) = reference.power_off();

    let (mut recovered, stats) =
        DeWrite::recover(&dir, config(), DeWriteConfig::paper(), KEY, device).expect("recover");
    assert_eq!(stats.writes_covered, 96, "recovers to the epoch boundary");
    let mut t = 1_000_000;
    for (&addr, expect) in &shadow {
        let got = recovered.read(LineAddr::new(addr), t).expect("read").data;
        assert_eq!(&got, expect, "line {addr}");
        t += 500;
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recover_rejects_mismatched_configuration() {
    let dir = tmpdir("fpmismatch");
    let opts = DurableOptions {
        sync: false,
        ..DurableOptions::default()
    };
    let mut mem =
        DurableDeWrite::create(&dir, config(), DeWriteConfig::paper(), KEY, opts).expect("create");
    run_workload(&mut mem, 50);
    let inner = mem.shutdown().expect("shutdown");
    let (_, device) = inner.power_off();

    let mut other = DeWriteConfig::paper();
    other.dedup_domains = 2;
    let err = DeWrite::recover(&dir, config(), other, KEY, device).expect_err("fingerprint");
    assert!(
        matches!(err, PersistError::ConfigMismatch(_)),
        "expected ConfigMismatch, got {err}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recover_without_any_state_is_corrupt() {
    let dir = tmpdir("empty");
    fs::create_dir_all(&dir).unwrap();
    let cfg = config();
    let device = dewrite_nvm::NvmDevice::new(cfg.nvm.clone()).unwrap();
    let err = DeWrite::recover(&dir, cfg, DeWriteConfig::paper(), KEY, device)
        .expect_err("no checkpoint");
    assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Property tests: codec round-trips and corruption behavior.
// ---------------------------------------------------------------------------

fn arb_op() -> impl Strategy<Value = dewrite_core::MetaOp> {
    use dewrite_core::MetaOp;
    prop_oneof![
        (0u64..1024, 0u64..1024).prop_map(|(init, real)| MetaOp::MapSet { init, real }),
        (0u64..1024, any::<u64>()).prop_map(|(real, digest)| MetaOp::ResidentSet { real, digest }),
        (0u64..1024).prop_map(|real| MetaOp::ResidentDel { real }),
        (0u64..1024, any::<u32>()).prop_map(|(line, value)| MetaOp::CounterSet { line, value }),
    ]
}

fn arb_records() -> impl Strategy<Value = Vec<WalRecord>> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 0..12), 1..6).prop_map(
        |op_sets| {
            let mut writes = 0u64;
            op_sets
                .into_iter()
                .map(|ops| {
                    let base = writes;
                    writes += 1 + ops.len() as u64 % 7;
                    WalRecord {
                        base_writes: base,
                        writes_covered: writes,
                        ops,
                    }
                })
                .collect()
        },
    )
}

fn encode_segment(records: &[WalRecord], fp: u64) -> Vec<u8> {
    let mut bytes = encode_wal_header(fp).to_vec();
    for r in records {
        bytes.extend_from_slice(&encode_record(r));
    }
    bytes
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        any::<u64>(),
        proptest::collection::vec((0u64..64, 0u64..64), 0..10),
        proptest::collection::vec((0u64..64, any::<u64>()), 0..10),
        proptest::collection::vec((0u64..64, any::<u32>()), 0..10),
    )
        .prop_map(|(config_fp, mut mappings, mut residents, mut counters)| {
            mappings.sort_unstable();
            mappings.dedup_by_key(|e| e.0);
            residents.sort_unstable();
            residents.dedup_by_key(|e| e.0);
            counters.sort_unstable();
            counters.dedup_by_key(|e| e.0);
            Snapshot {
                config_fp,
                lines: 64,
                mappings,
                residents,
                counters,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wal_roundtrip_and_truncation_at_every_offset(records in arb_records(), fp in any::<u64>()) {
        let bytes = encode_segment(&records, fp);
        let full = decode_wal(&bytes, fp).expect("decode");
        prop_assert_eq!(&full.records, &records);
        prop_assert_eq!(full.tail, WalTail::Clean);

        // Every truncation decodes to an exact prefix, never panics, never
        // invents or alters a record.
        for cut in 0..bytes.len() {
            let d = decode_wal(&bytes[..cut], fp).expect("truncation is torn, not an error");
            prop_assert!(d.records.len() <= records.len());
            for (got, want) in d.records.iter().zip(&records) {
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn wal_single_bit_flips_never_misdecode(
        records in arb_records(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let fp = 99u64;
        let bytes = encode_segment(&records, fp);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        // Either a hard error (header fingerprint area) or a torn decode
        // whose records are a verbatim prefix — never different records.
        if let Ok(d) = decode_wal(&corrupt, fp) {
            prop_assert!(d.records.len() <= records.len());
            for (got, want) in d.records.iter().zip(&records) {
                prop_assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn snapshot_roundtrip_and_corruption(snap in arb_snapshot(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).expect("encode");
        let decoded = Snapshot::read_from(bytes.as_slice()).expect("decode");
        prop_assert_eq!(&decoded, &snap);

        // Mid-stream truncation at every byte offset must error, not panic.
        for cut in 0..bytes.len() {
            prop_assert!(Snapshot::read_from(&bytes[..cut]).is_err());
        }
        // Any single-bit flip must be caught by the payload CRC.
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        prop_assert!(Snapshot::read_from(corrupt.as_slice()).is_err());
    }
}
