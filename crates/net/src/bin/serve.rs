//! `dewrite-serve`: the TCP frontend binary.
//!
//! Binds the listener, spawns the event-loop lanes, and serves until a
//! client sends `Shutdown`. The engine is created lazily from the first
//! `Hello`'s geometry; the shard count is fixed here on the command
//! line. On graceful shutdown the merged engine run is printed as a
//! one-line summary.

use std::path::PathBuf;
use std::process::ExitCode;

use dewrite_net::{NetServer, ServeOptions};

fn usage() -> ! {
    eprintln!(
        "dewrite-serve: TCP frontend for the sharded dedup engine

USAGE:
    dewrite-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT     listen address (default 127.0.0.1:7411; port 0 picks one)
    --shards N           controller shards (default 4)
    --threads N          event-loop lanes; 0 = half the hardware threads (default 0)
    --window N           per-connection in-flight window (default 64)
    --queue-depth N      per-shard engine queue depth (default 1024)
    --batch N            engine worker batch size (default 64)
    --persist-dir DIR    crash-consistent metadata persistence root
                         (each engine generation under gen-<n>/shard-<id>/)
    --persist-epoch N    data writes per WAL epoch record (default 64)
    --persist-sync       fsync the WAL on every epoch flush
    --max-lines N        largest line space a Hello may request (default 2^28)
    -h, --help           this help"
    );
    std::process::exit(2)
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: '{s}' is not a number");
        usage()
    })
}

fn parse(args: &[String]) -> ServeOptions {
    let mut o = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    usage()
                })
                .clone()
        };
        match arg.as_str() {
            "--addr" => o.addr = value("--addr"),
            "--shards" => o.shards = parse_num(&value("--shards"), "--shards"),
            "--threads" => o.threads = parse_num(&value("--threads"), "--threads"),
            "--window" => o.window = parse_num(&value("--window"), "--window") as u32,
            "--queue-depth" => o.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth"),
            "--batch" => o.batch = parse_num(&value("--batch"), "--batch"),
            "--persist-dir" => o.persist_dir = Some(PathBuf::from(value("--persist-dir"))),
            "--persist-epoch" => {
                o.persist_epoch = parse_num(&value("--persist-epoch"), "--persist-epoch") as u32
            }
            "--persist-sync" => o.persist_sync = true,
            "--max-lines" => o.max_lines = parse_num(&value("--max-lines"), "--max-lines") as u64,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if o.shards == 0 || o.shards > 64 {
        eprintln!("--shards must be 1..=64");
        usage()
    }
    if o.window == 0 || o.queue_depth == 0 || o.batch == 0 || o.persist_epoch == 0 {
        eprintln!("--window, --queue-depth, --batch, --persist-epoch must be non-zero");
        usage()
    }
    o
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse(&args);
    let shards = opts.shards;
    let server = match NetServer::bind(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Parsed by scripts (and the CI smoke job) to find the picked port.
    println!("dewrite-serve listening on {}", server.local_addr());
    let outcome = server.join();
    if outcome.aborted {
        eprintln!("aborted");
        return ExitCode::FAILURE;
    }
    match &outcome.run {
        Some(run) => println!(
            "shutdown: {} conns, {} ops over {} shards, dedup_rate {:.4}, {} errors",
            outcome.accepted,
            run.ops,
            shards,
            run.dedup_rate(),
            outcome.errors
        ),
        None => println!(
            "shutdown: {} conns, no engine generation survived to the end, {} errors",
            outcome.accepted, outcome.errors
        ),
    }
    ExitCode::SUCCESS
}
