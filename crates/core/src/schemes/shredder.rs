//! Silent Shredder (Awad et al., ASPLOS'16) as a full scheme.
//!
//! The line-level baseline of §V: eliminate writes of *full-zero* cache
//! lines (data shredding, zeroing on deallocation/initialization) by
//! recording "this line is zero" in metadata instead of writing 256 B of
//! ciphertext. The paper's Fig. 2 shows zero lines average only ~16% of
//! writes, which is why DeWrite's general deduplication wins — this scheme
//! exists to measure exactly that gap through the full system.
//!
//! Implementation: a zero-bitmap rides in the metadata cache (1 bit per
//! line, like the FSM table); zero writes flip the bit and skip both
//! encryption and the array write; reads of zeroed lines return zeros
//! without decryption.

use std::collections::{HashMap, HashSet};

use dewrite_crypto::{
    aes_line_energy_pj, CounterModeEngine, LineCounter, AES_LINE_LATENCY_NS, OTP_XOR_LATENCY_NS,
};
use dewrite_mem::Replacement;
use dewrite_nvm::{is_zero_line, LineAddr, NvmDevice, NvmError};

use crate::config::SystemConfig;
use crate::schemes::{BaseMetrics, MetaTable, ReadResult, SecureMemory, WriteResult};

/// Counter-cache sizing shared with [`CmeBaseline`](crate::CmeBaseline).
const COUNTER_CACHE_ENTRIES: usize = (2 << 20) / 4;
const COUNTER_PREFETCH: usize = 64;
/// Zero-bitmap cache: one bit per line, cached in 2048-flag groups.
const ZERO_GROUPS: usize = ((128 << 10) * 8) / 2048;

/// Counter-mode encryption + zero-line write elimination.
#[derive(Debug)]
pub struct SilentShredder {
    config: SystemConfig,
    device: NvmDevice,
    engine: CounterModeEngine,
    counters: HashMap<u64, LineCounter>,
    /// Lines currently "shredded" (logically zero, nothing in the array).
    zeroed: HashSet<u64>,
    counter_table: MetaTable,
    zero_table: MetaTable,
    metrics: BaseMetrics,
    /// Scratch ciphertext buffer reused across writes (no per-write alloc).
    line_buf: Vec<u8>,
}

impl SilentShredder {
    /// Build the scheme over a fresh device.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: SystemConfig, key: &[u8; 16]) -> Self {
        config.validate().expect("invalid system config");
        let device = NvmDevice::new(config.nvm.clone()).expect("validated config");
        let line_size = config.nvm.line_size;
        let meta_lines = config.meta_lines();
        let counter_table = MetaTable::new(
            COUNTER_CACHE_ENTRIES,
            Replacement::Lru,
            config.meta_base(),
            meta_lines / 2,
            4,
            COUNTER_PREFETCH,
            true,
            config.meta_cache_hit_ns,
            line_size,
        );
        let zero_table = MetaTable::new(
            ZERO_GROUPS,
            Replacement::Lru,
            config.meta_base() + meta_lines / 2,
            (meta_lines - meta_lines / 2).max(1),
            line_size,
            1,
            true,
            config.meta_cache_hit_ns,
            line_size,
        );
        SilentShredder {
            engine: CounterModeEngine::new(key),
            counters: HashMap::new(),
            zeroed: HashSet::new(),
            counter_table,
            zero_table,
            metrics: BaseMetrics::default(),
            line_buf: Vec::new(),
            device,
            config,
        }
    }

    fn check_addr(&self, addr: LineAddr) -> Result<(), NvmError> {
        if addr.index() >= self.config.data_lines {
            Err(NvmError::AddressOutOfRange {
                addr,
                num_lines: self.config.data_lines,
            })
        } else {
            Ok(())
        }
    }

    /// Writes eliminated because the line was all zeros.
    pub fn zero_eliminations(&self) -> u64 {
        self.metrics.writes_eliminated
    }
}

impl SecureMemory for SilentShredder {
    fn name(&self) -> String {
        "Silent Shredder (zero-line elimination)".to_string()
    }

    fn write(&mut self, addr: LineAddr, data: &[u8], now_ns: u64) -> Result<WriteResult, NvmError> {
        self.check_addr(addr)?;
        if data.len() != self.config.nvm.line_size {
            return Err(NvmError::WrongLineSize {
                got: data.len(),
                expected: self.config.nvm.line_size,
            });
        }
        self.metrics.writes += 1;

        // The zero check is free in hardware (wide NOR over the line).
        if is_zero_line(data) {
            let acc = self.zero_table.write_insert(
                addr.index() / 2048,
                &mut self.device,
                now_ns,
                &mut self.metrics,
            );
            self.zeroed.insert(addr.index());
            self.metrics.writes_eliminated += 1;
            return Ok(WriteResult {
                critical_ns: acc.done_ns - now_ns,
                nvm_finish_ns: None,
                eliminated: true,
                total_ns: acc.done_ns - now_ns,
            });
        }

        // Otherwise: plain counter-mode write (as the baseline).
        self.zeroed.remove(&addr.index());
        let ctr = self.counter_table.access(
            addr.index(),
            true,
            &mut self.device,
            now_ns,
            &mut self.metrics,
        );
        let counter = self.counters.entry(addr.index()).or_default();
        let _ = counter.increment();
        let counter = *counter;
        let enc_done = ctr.done_ns + AES_LINE_LATENCY_NS;
        self.metrics.aes_line_ops += 1;
        self.device.charge_aes_pj(aes_line_energy_pj(data.len()));
        self.line_buf.resize(data.len(), 0);
        self.engine
            .encrypt_line_into(data, addr.index(), counter, &mut self.line_buf);
        let old = self.device.peek_line(addr)?;
        let flips = crate::schemes::encoded_flips(self.config.bit_encoding, &old, &self.line_buf);
        let access = self
            .device
            .write_line_with_flips(addr, &self.line_buf, flips, enc_done)?;
        Ok(WriteResult {
            critical_ns: enc_done - now_ns,
            nvm_finish_ns: Some(access.slot.finish_ns),
            eliminated: false,
            total_ns: access.slot.finish_ns - now_ns,
        })
    }

    fn read(&mut self, addr: LineAddr, now_ns: u64) -> Result<ReadResult, NvmError> {
        self.check_addr(addr)?;
        self.metrics.reads += 1;

        // Zero-bitmap check first: shredded lines short-circuit the array.
        let zacc = self.zero_table.access(
            addr.index() / 2048,
            false,
            &mut self.device,
            now_ns,
            &mut self.metrics,
        );
        if self.zeroed.contains(&addr.index()) {
            return Ok(ReadResult {
                data: vec![0u8; self.config.nvm.line_size],
                latency_ns: zacc.done_ns - now_ns,
            });
        }

        let ctr = self.counter_table.access(
            addr.index(),
            false,
            &mut self.device,
            zacc.done_ns,
            &mut self.metrics,
        );
        let (ciphertext, access) = self.device.read_line(addr, zacc.done_ns)?;
        match self.counters.get(&addr.index()) {
            Some(&counter) => {
                let pad_done = ctr.done_ns + AES_LINE_LATENCY_NS;
                let done = access.slot.finish_ns.max(pad_done) + OTP_XOR_LATENCY_NS;
                let data = self.engine.decrypt_line(&ciphertext, addr.index(), counter);
                Ok(ReadResult {
                    data,
                    latency_ns: done - now_ns,
                })
            }
            None => Ok(ReadResult {
                data: ciphertext,
                latency_ns: access.slot.finish_ns.max(ctr.done_ns) - now_ns,
            }),
        }
    }

    fn device(&self) -> &NvmDevice {
        &self.device
    }

    fn base_metrics(&self) -> BaseMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8; 16] = b"shredder test k!";

    fn mem() -> SilentShredder {
        SilentShredder::new(SystemConfig::for_lines(2048), KEY)
    }

    #[test]
    fn zero_writes_are_eliminated() {
        let mut m = mem();
        let zero = vec![0u8; 256];
        let w = m.write(LineAddr::new(0), &zero, 0).unwrap();
        assert!(w.eliminated);
        assert!(w.nvm_finish_ns.is_none());
        assert_eq!(m.zero_eliminations(), 1);
        // Reads of shredded lines return zeros fast.
        let r = m.read(LineAddr::new(0), 1_000).unwrap();
        assert_eq!(r.data, zero);
    }

    #[test]
    fn nonzero_writes_behave_like_the_baseline() {
        let mut m = mem();
        let data = vec![0x42u8; 256];
        let w = m.write(LineAddr::new(1), &data, 0).unwrap();
        assert!(!w.eliminated);
        assert_eq!(m.read(LineAddr::new(1), w.total_ns).unwrap().data, data);
        // Stored bytes are ciphertext.
        assert_ne!(m.device().peek_line(LineAddr::new(1)).unwrap(), data);
    }

    #[test]
    fn rezeroing_and_unzeroing_roundtrip() {
        let mut m = mem();
        let zero = vec![0u8; 256];
        let data = vec![7u8; 256];
        m.write(LineAddr::new(5), &data, 0).unwrap();
        m.write(LineAddr::new(5), &zero, 10_000).unwrap(); // shred
        assert_eq!(m.read(LineAddr::new(5), 20_000).unwrap().data, zero);
        m.write(LineAddr::new(5), &data, 30_000).unwrap(); // live again
        assert_eq!(m.read(LineAddr::new(5), 40_000).unwrap().data, data);
    }

    #[test]
    fn only_zero_lines_count_as_eliminated() {
        let mut m = mem();
        let mut t = 0;
        for i in 0..20u64 {
            let data = if i % 4 == 0 {
                vec![0u8; 256]
            } else {
                vec![i as u8; 256]
            };
            m.write(LineAddr::new(i), &data, t).unwrap();
            t += 5_000;
        }
        assert_eq!(m.base_metrics().writes, 20);
        assert_eq!(m.base_metrics().writes_eliminated, 5);
    }

    #[test]
    fn bounds_checks() {
        let mut m = mem();
        assert!(m.write(LineAddr::new(2048), &[0u8; 256], 0).is_err());
        assert!(m.read(LineAddr::new(2048), 0).is_err());
        assert!(m.write(LineAddr::new(0), &[0u8; 64], 0).is_err());
    }
}
