//! Hardware AES-128 via the x86 AES-NI instruction set.
//!
//! One `AESENC` per round instead of 16 table lookups. The key schedule is
//! expanded in software (shared with every other backend, so all engines
//! run the identical schedule) and the decryption keys are derived with
//! `AESIMC` (equivalent inverse cipher), mirroring the T-table backend.
//!
//! This module is the only `unsafe` code in the crate. Safety rests on one
//! invariant: [`Aes128Ni::new`] is only called after
//! `is_x86_feature_detected!("aes")` has confirmed the instructions exist
//! (the dispatcher in `dispatch.rs` enforces this).
#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
    _mm_aesimc_si128, _mm_loadu_si128, _mm_storeu_si128, _mm_xor_si128,
};

use crate::aes::expand_key;

/// AES-128 on the AES-NI units.
#[derive(Clone, Copy)]
pub(crate) struct Aes128Ni {
    enc: [__m128i; 11],
    dec: [__m128i; 11],
}

impl std::fmt::Debug for Aes128Ni {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128Ni").field("rounds", &10u8).finish()
    }
}

impl Aes128Ni {
    /// Build the hardware cipher.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the CPU supports the `aes`
    /// feature (e.g. via `is_x86_feature_detected!("aes")`).
    #[target_feature(enable = "aes")]
    pub(crate) unsafe fn new(key: &[u8; 16]) -> Self {
        let rks = expand_key(key);
        let load = |rk: &[u8; 16]| unsafe { _mm_loadu_si128(rk.as_ptr().cast()) };
        let enc: [__m128i; 11] = std::array::from_fn(|i| load(&rks[i]));
        let mut dec = enc;
        dec[0] = enc[10];
        dec[10] = enc[0];
        for r in 1..10 {
            dec[r] = _mm_aesimc_si128(enc[10 - r]);
        }
        Aes128Ni { enc, dec }
    }

    #[target_feature(enable = "aes")]
    pub(crate) unsafe fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        unsafe {
            let mut b = _mm_loadu_si128(plaintext.as_ptr().cast());
            b = _mm_xor_si128(b, self.enc[0]);
            for rk in &self.enc[1..10] {
                b = _mm_aesenc_si128(b, *rk);
            }
            b = _mm_aesenclast_si128(b, self.enc[10]);
            let mut out = [0u8; 16];
            _mm_storeu_si128(out.as_mut_ptr().cast(), b);
            out
        }
    }

    #[target_feature(enable = "aes")]
    pub(crate) unsafe fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        unsafe {
            let mut b = _mm_loadu_si128(ciphertext.as_ptr().cast());
            b = _mm_xor_si128(b, self.dec[0]);
            for rk in &self.dec[1..10] {
                b = _mm_aesdec_si128(b, *rk);
            }
            b = _mm_aesdeclast_si128(b, self.dec[10]);
            let mut out = [0u8; 16];
            _mm_storeu_si128(out.as_mut_ptr().cast(), b);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128Reference;
    use proptest::prelude::*;

    fn available() -> bool {
        std::arch::is_x86_feature_detected!("aes")
    }

    #[test]
    fn fips197_appendix_b() {
        if !available() {
            eprintln!("AES-NI unavailable; skipping");
            return;
        }
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, //
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, //
            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, //
            0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32,
        ];
        // SAFETY: feature checked above.
        unsafe {
            let aes = Aes128Ni::new(&key);
            assert_eq!(aes.encrypt_block(&pt), expected);
            assert_eq!(aes.decrypt_block(&expected), pt);
        }
    }

    proptest! {
        // Differential test: AES-NI must agree with the from-scratch
        // oracle on every random (key, block) pair, in both directions.
        #[test]
        fn matches_reference_oracle(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
            if !available() {
                return;
            }
            let oracle = Aes128Reference::new(&key);
            // SAFETY: feature checked above.
            unsafe {
                let hw = Aes128Ni::new(&key);
                let ct = hw.encrypt_block(&block);
                prop_assert_eq!(ct, oracle.encrypt_block(&block));
                prop_assert_eq!(hw.decrypt_block(&block), oracle.decrypt_block(&block));
                prop_assert_eq!(hw.decrypt_block(&ct), block);
            }
        }
    }
}
