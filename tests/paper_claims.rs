//! The paper's headline claims, verified in miniature on every test run.
//! (The full-scale reproduction lives in `crates/bench`; these are fast
//! guardrails so a regression in any crate surfaces immediately.)

use dewrite::core::{
    CmeBaseline, DeWrite, DeWriteConfig, HistoryPredictor, Simulator, SystemConfig,
};
use dewrite::trace::{all_apps, app_by_name, worst_case, DupOracle, TraceGenerator, TraceRecord};

const KEY: &[u8; 16] = b"paper claims key";

fn workload(
    app: &str,
    writes: usize,
    seed: u64,
) -> (Vec<TraceRecord>, Vec<TraceRecord>, SystemConfig) {
    let mut profile = match app {
        "worst-case" => worst_case(),
        other => app_by_name(other).expect("known app"),
    };
    profile.working_set_lines = 1 << 11;
    profile.content_pool_size = 256;
    let mut gen = TraceGenerator::new(profile.clone(), 256, seed);
    let warmup = gen.warmup_records();
    let mut trace = Vec::new();
    let mut count = 0;
    for rec in gen.by_ref() {
        count += usize::from(rec.op.is_write());
        trace.push(rec);
        if count >= writes {
            break;
        }
    }
    let config =
        SystemConfig::for_lines(profile.working_set_lines + profile.content_pool_size as u64 + 64);
    (warmup, trace, config)
}

fn compare(app: &str, writes: usize) -> (dewrite::core::RunReport, dewrite::core::RunReport) {
    let (warmup, trace, config) = workload(app, writes, 21);
    let sim = Simulator::new(&config);
    let mut dw = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);
    let rd = sim
        .run(&mut dw, app, &warmup, trace.iter().cloned())
        .expect("runs");
    let mut base = CmeBaseline::new(config, KEY);
    let rb = sim
        .run(&mut base, app, &warmup, trace.iter().cloned())
        .expect("runs");
    (rd, rb)
}

#[test]
fn claim_abundant_cache_line_duplication() {
    // §II-C: duplicate lines average 58% across the 20 applications,
    // ranging from ~19% to ~98%.
    let mut ratios = Vec::new();
    for profile in all_apps() {
        let mut p = profile.clone();
        p.working_set_lines = 1 << 12;
        p.content_pool_size = 256;
        let mut gen = TraceGenerator::new(p, 256, 3);
        let mut oracle = DupOracle::new();
        for rec in gen.warmup_records() {
            oracle.observe_warmup(&rec);
        }
        for rec in gen.by_ref().take(6_000) {
            oracle.observe(&rec);
        }
        ratios.push(oracle.stats().dup_ratio());
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!((avg - 0.58).abs() < 0.05, "average duplication {avg}");
    assert!(ratios.iter().cloned().fold(f64::MAX, f64::min) < 0.30);
    assert!(ratios.iter().cloned().fold(f64::MIN, f64::max) > 0.90);
}

#[test]
fn claim_duplication_states_are_predictable() {
    // Fig. 4: ~92% 1-bit accuracy, 3-bit better.
    let mut one_bit = Vec::new();
    let mut three_bit = Vec::new();
    for profile in all_apps().into_iter().take(8) {
        let mut p = profile.clone();
        p.working_set_lines = 1 << 10;
        p.content_pool_size = 128;
        let mut gen = TraceGenerator::new(p, 256, 17);
        let mut oracle = DupOracle::recording();
        for rec in gen.warmup_records() {
            oracle.observe_warmup(&rec);
        }
        for rec in gen.by_ref().take(8_000) {
            oracle.observe(&rec);
        }
        for (bits, out) in [(1usize, &mut one_bit), (3, &mut three_bit)] {
            let mut pred = HistoryPredictor::new(bits);
            for &o in oracle.outcomes() {
                pred.record(o);
            }
            out.push(pred.accuracy());
        }
    }
    let avg1 = one_bit.iter().sum::<f64>() / one_bit.len() as f64;
    let avg3 = three_bit.iter().sum::<f64>() / three_bit.len() as f64;
    assert!((avg1 - 0.92).abs() < 0.03, "1-bit accuracy {avg1}");
    assert!(avg3 > avg1, "3-bit {avg3} must beat 1-bit {avg1}");
}

#[test]
fn claim_dewrite_reduces_writes_and_beats_baseline() {
    let (dw, base) = compare("cactusADM", 5_000);
    // Fig. 12: cactusADM reduces >80% of writes.
    assert!(
        dw.write_reduction() > 0.8,
        "reduction {}",
        dw.write_reduction()
    );
    // Figs. 14/16/17: all three performance metrics improve.
    assert!(
        dw.write_speedup_vs(&base) > 2.0,
        "write {}",
        dw.write_speedup_vs(&base)
    );
    assert!(
        dw.read_speedup_vs(&base) > 1.2,
        "read {}",
        dw.read_speedup_vs(&base)
    );
    assert!(
        dw.relative_ipc_vs(&base) > 1.2,
        "ipc {}",
        dw.relative_ipc_vs(&base)
    );
    // Fig. 19: energy drops substantially.
    assert!(
        dw.relative_energy_vs(&base) < 0.7,
        "energy {}",
        dw.relative_energy_vs(&base)
    );
}

#[test]
fn claim_worst_case_degradation_is_small() {
    // Fig. 18: with zero duplicates, DeWrite loses only a few percent.
    let (dw, base) = compare("worst-case", 5_000);
    assert_eq!(dw.write_reduction(), 0.0);
    let ipc_ratio = dw.relative_ipc_vs(&base);
    assert!(ipc_ratio > 0.90, "worst-case IPC ratio {ipc_ratio}");
    let write_ratio = dw.write_latency.mean_ns() / base.write_latency.mean_ns();
    assert!(
        write_ratio < 1.15,
        "worst-case write latency ratio {write_ratio}"
    );
}

#[test]
fn claim_duplicate_detection_is_cheaper_than_a_write() {
    // Table I: DeWrite's detection latency (91 ns cold, less when the
    // verify buffer hits) never approaches the 300 ns write it eliminates.
    let (dw, _) = compare("lbm", 4_000);
    assert!(
        dw.write_latency_eliminated.mean_ns() < 300.0,
        "eliminated-write mean {}",
        dw.write_latency_eliminated.mean_ns()
    );
}

#[test]
fn claim_metadata_cache_hit_rates_are_high() {
    // §IV-E2: with the paper's 2 MB metadata cache, hit rates exceed 98%.
    let (warmup, trace, config) = workload("mcf", 6_000, 9);
    let sim = Simulator::new(&config);
    let mut dw = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);
    sim.run(&mut dw, "mcf", &warmup, trace.iter().cloned())
        .expect("runs");
    let s = dw.cache_stats();
    // The sequential (prefetched) tables hit nearly always.
    for (name, rate) in [
        ("addr_map", s.addr_map.hit_rate()),
        ("inverted", s.inverted.hit_rate()),
        ("fsm", s.fsm.hit_rate()),
    ] {
        assert!(rate > 0.90, "{name} hit rate {rate}");
    }
    // Hash-store probes include a compulsory miss for every never-seen
    // digest (exactly the queries PNA then skips), so its demand hit rate
    // tracks the duplication ratio rather than ~100%.
    assert!(
        s.hash.hit_rate() > 0.40,
        "hash hit rate {}",
        s.hash.hit_rate()
    );
}
