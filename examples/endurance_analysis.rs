//! Endurance analysis: run one application's workload through DeWrite and
//! the traditional secure NVM, then compare writes, wear, and estimated
//! lifetime.
//!
//! Run with: `cargo run --release --example endurance_analysis [app]`
//! (default app: `cactusADM`; try `vips` for a low-duplication contrast).

use dewrite::core::{CmeBaseline, DeWrite, DeWriteConfig, SecureMemory, Simulator};
use dewrite::trace::{app_by_name, TraceGenerator};

const KEY: &[u8; 16] = b"endurance key 16";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cactusADM".into());
    let mut profile = app_by_name(&app)
        .ok_or_else(|| format!("unknown application {app:?}; see dewrite::trace::all_apps()"))?;
    profile.working_set_lines = 1 << 13;
    profile.content_pool_size = 512;

    println!(
        "workload: {} ({}) — duplication {:.0}%, zero lines {:.0}%",
        profile.name,
        profile.suite,
        profile.dup_ratio * 100.0,
        profile.zero_share * 100.0
    );

    // Identical trace for both schemes.
    let mut gen = TraceGenerator::new(profile.clone(), 256, 42);
    let warmup = gen.warmup_records();
    let trace: Vec<_> = gen.by_ref().take(30_000).collect();

    let config = dewrite::core::SystemConfig::for_lines(
        profile.working_set_lines + profile.content_pool_size as u64 + 64,
    );
    let sim = Simulator::new(&config);

    let mut dedup = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);
    let dw = sim.run(&mut dedup, &app, &warmup, trace.iter().cloned())?;

    let mut baseline = CmeBaseline::new(config, KEY);
    let base = sim.run(&mut baseline, &app, &warmup, trace.iter().cloned())?;

    println!("\n--- write traffic ---");
    println!("baseline NVM line writes : {}", base.nvm_data_writes);
    println!("DeWrite  NVM line writes : {}", dw.nvm_data_writes);
    println!(
        "write reduction          : {:.1}%",
        dw.write_reduction() * 100.0
    );

    println!("\n--- wear ---");
    let (b_wear, d_wear) = (baseline.device().wear(), dedup.device().wear());
    println!(
        "baseline max writes on one line : {}",
        b_wear.max_line_writes()
    );
    println!(
        "DeWrite  max writes on one line : {}",
        d_wear.max_line_writes()
    );
    println!(
        "baseline bit-flip ratio {:.1}% vs DeWrite {:.1}%",
        b_wear.bit_flip_ratio() * 100.0,
        d_wear.bit_flip_ratio() * 100.0
    );
    if let Some(lifetime) = d_wear.relative_lifetime_vs(b_wear) {
        println!("relative lifetime (max-wear basis): {lifetime:.2}x");
    }

    println!("\n--- performance & energy ---");
    println!("write speedup : {:.2}x", dw.write_speedup_vs(&base));
    println!("read  speedup : {:.2}x", dw.read_speedup_vs(&base));
    println!("relative IPC  : {:.2}x", dw.relative_ipc_vs(&base));
    println!("relative energy: {:.2}", dw.relative_energy_vs(&base));
    Ok(())
}
