//! Differential property testing for the free-space managers: under any
//! quiesced (single-threaded) script of occupy/release/allocate calls the
//! hierarchical [`FsmTree`] must be indistinguishable from the flat
//! [`AtomicBitmap`] — same placement decisions, same occupancy, same free
//! counts — and both must agree on occupancy with the sequential seed
//! [`FreeSpaceTable`].
//!
//! The bitmap is the *placement* oracle: `FsmTree::allocate` visits words
//! in exactly the flat scan order, so every allocation must land on the
//! identical line. The seed table scans line-by-line rather than
//! word-by-word, so its own `allocate` picks different lines; it serves
//! as an *occupancy* oracle instead, mirroring whatever line the
//! lock-free structures chose.

use dewrite_core::tables::FreeSpaceTable;
use dewrite_nvm::{AtomicBitmap, FsmTree, LineAddr, Reservation};
use proptest::prelude::*;

/// Deliberately not a multiple of `CHUNK_LINES` (512) so every script
/// exercises the masked tail bits of the last chunk.
const LINES: u64 = 2 * 512 + 77;

#[derive(Debug, Clone)]
enum FsmOp {
    /// Occupy a specific line (idempotent on all three structures).
    Occupy(u64),
    /// Release a specific line (idempotent on all three structures).
    Release(u64),
    /// Allocate with a home-line preference.
    Allocate(u64),
}

fn op_strategy() -> impl Strategy<Value = FsmOp> {
    // The Allocate arm appears twice to weight scripts toward
    // allocation, so they drain regions and hit the chunk-skip path
    // rather than just toggling individual bits.
    prop_oneof![
        (0..LINES).prop_map(FsmOp::Occupy),
        (0..LINES).prop_map(FsmOp::Release),
        (0..LINES).prop_map(FsmOp::Allocate),
        (0..LINES).prop_map(FsmOp::Allocate),
    ]
}

/// Assert the three structures agree bit-for-bit and count-for-count.
fn assert_quiesced_equivalent(tree: &FsmTree, bitmap: &AtomicBitmap, seed: &FreeSpaceTable) {
    assert_eq!(
        tree.free_lines(),
        bitmap.free_lines(),
        "free count vs bitmap"
    );
    assert_eq!(tree.free_lines(), seed.free_lines(), "free count vs seed");
    for line in 0..LINES {
        assert_eq!(
            tree.is_free(line),
            bitmap.is_free(line),
            "line {line} occupancy vs bitmap"
        );
        assert_eq!(
            tree.is_free(line),
            seed.is_free(LineAddr::new(line)),
            "line {line} occupancy vs seed"
        );
    }
    assert_eq!(
        tree.occupied(),
        bitmap.occupied(),
        "occupied snapshots diverge"
    );
}

proptest! {
    // Home-mode allocation: the tree must make the *same placement
    // decision* as the flat bitmap on every single call, not merely
    // converge to the same occupancy.
    #[test]
    fn tree_matches_bitmap_placement_and_seed_occupancy(
        ops in proptest::collection::vec(op_strategy(), 1..400)
    ) {
        let tree = FsmTree::new(LINES);
        let bitmap = AtomicBitmap::new(LINES);
        let mut seed = FreeSpaceTable::new(LINES);
        for op in &ops {
            match *op {
                FsmOp::Occupy(line) => {
                    let t = tree.occupy(line);
                    let b = bitmap.occupy(line);
                    prop_assert_eq!(t, b, "occupy({}) outcome diverged", line);
                    seed.occupy(LineAddr::new(line));
                }
                FsmOp::Release(line) => {
                    let t = tree.release(line);
                    let b = bitmap.release(line);
                    prop_assert_eq!(t, b, "release({}) outcome diverged", line);
                    seed.release(LineAddr::new(line));
                }
                FsmOp::Allocate(home) => {
                    let t = tree.allocate(home);
                    let b = bitmap.allocate(home);
                    prop_assert_eq!(t, b, "allocate({}) placement diverged", home);
                    if let Some(line) = t {
                        // Mirror into the seed table: its own scan order
                        // differs, so it only checks occupancy.
                        seed.occupy(LineAddr::new(line));
                    }
                }
            }
        }
        assert_quiesced_equivalent(&tree, &bitmap, &seed);
    }

    // Reserved-mode allocation trades placement identity for an
    // uncontended fast path, so the bitmap stops being a placement
    // oracle — but occupancy and conservation must still hold exactly,
    // with the seed table mirroring every claim.
    #[test]
    fn reserved_mode_preserves_occupancy_and_counts(
        ops in proptest::collection::vec(op_strategy(), 1..400)
    ) {
        let tree = FsmTree::new(LINES);
        let mut seed = FreeSpaceTable::new(LINES);
        let mut reservation = Reservation::new();
        let mut claims = 0u64;
        for op in &ops {
            match *op {
                FsmOp::Occupy(line) => {
                    if tree.occupy(line) {
                        claims += 1;
                    }
                    seed.occupy(LineAddr::new(line));
                }
                FsmOp::Release(line) => {
                    tree.release(line);
                    seed.release(LineAddr::new(line));
                }
                FsmOp::Allocate(_) => {
                    if let Some(line) = tree.allocate_reserved(&mut reservation) {
                        prop_assert!(line < LINES, "claimed tail line {}", line);
                        prop_assert!(seed.is_free(LineAddr::new(line)),
                            "double-claimed line {}", line);
                        seed.occupy(LineAddr::new(line));
                        claims += 1;
                    } else {
                        prop_assert_eq!(tree.free_lines(), 0,
                            "reserved allocation failed with free lines left");
                    }
                }
            }
            prop_assert_eq!(tree.free_lines(), seed.free_lines());
        }
        for line in 0..LINES {
            prop_assert_eq!(tree.is_free(line), seed.is_free(LineAddr::new(line)));
        }
        tree.drain_reservation_stats(&mut reservation);
        prop_assert_eq!(tree.stats().claims, claims, "claim stats drifted");
    }

    // `from_bitmap` must reproduce the donor's occupancy exactly, and a
    // clone must be an independent copy (mutating one leaves the other
    // untouched).
    #[test]
    fn from_bitmap_and_clone_copy_occupancy(
        occupied in proptest::collection::vec(0..LINES, 0..200)
    ) {
        let bitmap = AtomicBitmap::new(LINES);
        for &line in &occupied {
            bitmap.occupy(line);
        }
        let tree = FsmTree::from_bitmap(&bitmap);
        prop_assert_eq!(tree.free_lines(), bitmap.free_lines());
        prop_assert_eq!(tree.occupied(), bitmap.occupied());

        let copy = tree.clone();
        if let Some(line) = tree.allocate(0) {
            prop_assert!(copy.is_free(line), "clone shares state with original");
            prop_assert_eq!(copy.free_lines(), tree.free_lines() + 1);
        }
    }
}
