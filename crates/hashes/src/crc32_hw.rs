//! Hardware CRC-32C via the SSE4.2 `crc32` instruction.
//!
//! The instruction implements exactly the reflected Castagnoli polynomial
//! used by [`Crc32c`](crate::Crc32c) — reflected input/output with no
//! init/final XOR, so wrapping it in the usual `!crc` pre/post steps yields
//! the standard iSCSI checksum. Plain CRC-32 (IEEE) has no hardware
//! instruction and always uses slice-by-8.
//!
//! This module is the only `unsafe` code in the crate. Safety rests on one
//! invariant: [`crc32c_sse42`] is only called after
//! `is_x86_feature_detected!("sse4.2")` has confirmed the instruction
//! exists (`Crc32c::new` in `crc32.rs` enforces this).
#![allow(unsafe_code)]

use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};

/// Compute the CRC-32C checksum of `data` on the SSE4.2 unit: eight bytes
/// per `crc32q`, byte-at-a-time tail.
///
/// # Safety
///
/// The caller must have verified that the CPU supports the `sse4.2`
/// feature (e.g. via `is_x86_feature_detected!("sse4.2")`).
#[target_feature(enable = "sse4.2")]
pub(crate) unsafe fn crc32c_sse42(data: &[u8]) -> u32 {
    let mut crc = u64::from(!0u32);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8"));
        crc = _mm_crc32_u64(crc, word);
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_check_vector_when_available() {
        if !std::arch::is_x86_feature_detected!("sse4.2") {
            eprintln!("SSE4.2 unavailable; skipping");
            return;
        }
        // SAFETY: feature checked above.
        unsafe {
            assert_eq!(crc32c_sse42(b"123456789"), 0xE306_9283);
            assert_eq!(crc32c_sse42(&[0u8; 32]), 0x8A91_36AA);
            assert_eq!(crc32c_sse42(&[0xFFu8; 32]), 0x62A8_AB43);
            assert_eq!(crc32c_sse42(b""), 0);
        }
    }
}
