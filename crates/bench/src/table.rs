//! Minimal aligned-column table rendering + CSV export for experiment
//! output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use dewrite_core::Json;

/// A simple experiment-results table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{c:<w$}");
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Write the table as CSV under `dir/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut csv = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        csv.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        fs::write(dir.join(format!("{name}.csv")), csv)
    }

    /// The table as a JSON object: `{"title", "headers", "rows"}` with rows
    /// as arrays of strings (cells keep their rendered formatting so the CSV
    /// and JSON exports always agree).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("title".into(), Json::Str(self.title.clone())),
            (
                "headers".into(),
                Json::Arr(self.headers.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().cloned().map(Json::Str).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Write the table as JSON under `dir/<name>.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(
            dir.join(format!("{name}.json")),
            format!("{}\n", self.to_json()),
        )
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// A proportional ASCII bar for figure-like table output.
///
/// ```
/// use dewrite_bench::table::bar;
/// assert_eq!(bar(0.5, 1.0, 8), "####");
/// assert_eq!(bar(2.0, 1.0, 8), "########"); // clamped
/// ```
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["app", "value"]);
        t.row(vec!["lbm".into(), "0.95".into()]);
        t.row(vec!["blackscholes".into(), "0.984".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("blackscholes"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("dewrite_table_test");
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        t.write_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(content.contains("\"x,y\""));
        assert!(content.starts_with("a,b\n"));
    }

    #[test]
    fn json_export_matches_table() {
        let dir = std::env::temp_dir().join("dewrite_table_json_test");
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["x".into(), "1.5".into()]);
        t.write_json(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        let j = Json::parse(&content).unwrap();
        assert_eq!(j.get("title").and_then(Json::as_str), Some("demo"));
        let rows = j.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_arr().unwrap()[1].as_str(), Some("1.5"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5412), "54.1%");
    }
}
