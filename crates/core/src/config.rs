//! System configuration (Table II) and metadata-region geometry.

use dewrite_hashes::HashAlgorithm;
use dewrite_mem::{CoreConfig, Replacement};
use dewrite_nvm::{NvmConfig, DEFAULT_LINE_SIZE};

/// How duplicate detection and encryption are ordered on the write path
/// (§III-A, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Detect first; encrypt only non-duplicates (lowest energy, highest
    /// latency for non-duplicates).
    Direct,
    /// Always encrypt in parallel with detection (lowest latency, wasted
    /// encryption energy on duplicates).
    Parallel,
    /// DeWrite: predict with the history window, then run Direct for
    /// predicted duplicates and Parallel for predicted non-duplicates.
    #[default]
    Predictive,
}

impl std::fmt::Display for WriteMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WriteMode::Direct => "direct",
            WriteMode::Parallel => "parallel",
            WriteMode::Predictive => "predictive",
        })
    }
}

/// How a dedup-index digest match is turned into a duplicate verdict
/// (ROADMAP's strong-hash open item; mirrors SPACE's blake3 content-store
/// bet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DigestMode {
    /// The paper's scheme: a light CRC-32 fingerprint whose matches are
    /// confirmed with a candidate verify-read plus byte compare (§III-B).
    #[default]
    Crc32Verify,
    /// A BLAKE3-style keyed digest truncated to a 64-bit tag; a tag match
    /// is assumed to be a duplicate and the verify leg is skipped entirely
    /// (counted as `assumed_dups`).
    StrongKeyed,
}

impl DigestMode {
    /// Both modes, in presentation order (useful for sweeps).
    pub const ALL: [DigestMode; 2] = [DigestMode::Crc32Verify, DigestMode::StrongKeyed];

    /// Stable one-byte wire/JSON encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            DigestMode::Crc32Verify => 0,
            DigestMode::StrongKeyed => 1,
        }
    }

    /// Decode [`Self::to_wire`]'s byte; `None` for unknown values.
    pub fn from_wire(v: u8) -> Option<DigestMode> {
        Some(match v {
            0 => DigestMode::Crc32Verify,
            1 => DigestMode::StrongKeyed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for DigestMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DigestMode::Crc32Verify => "crc32-verify",
            DigestMode::StrongKeyed => "strong-keyed",
        })
    }
}

impl std::str::FromStr for DigestMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "crc32-verify" | "crc32" => DigestMode::Crc32Verify,
            "strong-keyed" | "strong" => DigestMode::StrongKeyed,
            other => return Err(format!("unknown digest mode {other:?}")),
        })
    }
}

/// Capacities (in entries) of the four metadata-cache partitions plus the
/// prefetch granularity for the sequential tables.
///
/// Defaults follow §IV-E2: 512 KB each for the hash, address-mapping, and
/// inverted-hash caches, 128 KB for the FSM cache (2 MB total within rounding,
/// matching the baseline's counter cache), with 256-entry prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaCacheConfig {
    /// Address-mapping cache capacity, in 4 B entries (512 KB default).
    pub addr_map_entries: usize,
    /// Inverted-hash cache capacity, in 4 B entries (512 KB default).
    pub inverted_entries: usize,
    /// Hash-table cache capacity, in 9 B entries (512 KB default).
    pub hash_entries: usize,
    /// FSM cache capacity, in 2048-flag groups (128 KB default).
    pub fsm_groups: usize,
    /// Sequential entries prefetched per miss in the sequential tables.
    pub prefetch_entries: usize,
    /// Replacement policy for all partitions.
    pub replacement: Replacement,
}

impl MetaCacheConfig {
    /// The paper's configuration (512 KB × 3 + 128 KB, 256-entry prefetch).
    pub fn paper() -> Self {
        MetaCacheConfig {
            addr_map_entries: (512 << 10) / 4,
            inverted_entries: (512 << 10) / 4,
            hash_entries: (512 << 10) / 9,
            fsm_groups: ((128 << 10) * 8) / 2048,
            prefetch_entries: 256,
            replacement: Replacement::Lru,
        }
    }

    /// A uniformly scaled variant: `kb_each` KB for the three big
    /// partitions and `kb_each / 4` KB for the FSM (used by the Fig. 21
    /// sweeps).
    pub fn scaled(kb_each: usize, prefetch_entries: usize) -> Self {
        MetaCacheConfig {
            addr_map_entries: (kb_each << 10) / 4,
            inverted_entries: (kb_each << 10) / 4,
            hash_entries: (kb_each << 10) / 9,
            fsm_groups: (((kb_each / 4).max(1) << 10) * 8) / 2048,
            prefetch_entries,
            replacement: Replacement::Lru,
        }
    }
}

impl Default for MetaCacheConfig {
    fn default() -> Self {
        MetaCacheConfig::paper()
    }
}

/// How cached dedup/encryption metadata survives power failure (§V of the
/// paper surveys these; all are compatible with DeWrite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetadataPersistence {
    /// A battery/supercap flushes the write-back metadata cache on power
    /// loss (Silent Shredder's choice). No runtime overhead.
    #[default]
    BatteryBacked,
    /// Every metadata update is written through to NVM immediately
    /// (SecPM-style): crash-consistent with no battery, at the cost of one
    /// metadata write per update.
    WriteThrough,
    /// Dirty metadata is flushed every `interval` data writes
    /// (`counter_cache_writeback` + ADR): a crash loses at most one epoch.
    EpochFlush {
        /// Data writes between flushes.
        interval: u32,
    },
}

impl std::fmt::Display for MetadataPersistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetadataPersistence::BatteryBacked => f.write_str("battery-backed"),
            MetadataPersistence::WriteThrough => f.write_str("write-through"),
            MetadataPersistence::EpochFlush { interval } => {
                write!(f, "epoch-flush({interval})")
            }
        }
    }
}

/// DeWrite-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeWriteConfig {
    /// Write-path ordering mode.
    pub mode: WriteMode,
    /// Prediction-based NVM access: skip the in-NVM hash-table query on a
    /// cache miss when the predictor says non-duplicate (§III-B2).
    pub pna: bool,
    /// History-window width in bits (3 in the paper).
    pub history_bits: usize,
    /// Light-weight fingerprint function (used by [`DigestMode::Crc32Verify`];
    /// [`DigestMode::StrongKeyed`] derives its keyed digest from the memory
    /// encryption key instead).
    pub hasher: HashAlgorithm,
    /// How digest matches become duplicate verdicts (verify-read vs
    /// verify-free strong tag).
    pub digest_mode: DigestMode,
    /// Metadata cache partitioning.
    pub meta_cache: MetaCacheConfig,
    /// Entries in the dedup logic's verify buffer: a small SRAM holding the
    /// contents of recently verified candidate lines (64 × 256 B = 16 KB),
    /// so repeated duplicates of hot contents (the Zipf head of Fig. 7)
    /// confirm without re-reading the NVM array. Zero disables it.
    pub verify_buffer_entries: usize,
    /// How cached metadata survives power failure.
    pub persistence: MetadataPersistence,
    /// Number of dedup domains (contiguous, equal address-space partitions).
    /// Content never deduplicates across domains and relocated lines stay
    /// inside theirs — the standard mitigation for cross-tenant dedup side
    /// channels (`examples/timing_probe.rs`). 1 = the paper's global index.
    pub dedup_domains: u64,
}

impl DeWriteConfig {
    /// Fingerprint of the *semantic* configuration: the fields that change
    /// how durable metadata (snapshots, WAL records) must be interpreted —
    /// write-path mode, PNA, history width, fingerprint function, counter
    /// width, and dedup-domain count. Performance-only knobs (cache sizes,
    /// verify buffer, persistence policy) are excluded: they can change
    /// between a snapshot and its restore without invalidating the state.
    ///
    /// Stamped into every [`Snapshot`](crate::Snapshot) and WAL header;
    /// [`DeWrite::power_on`](crate::DeWrite::power_on) rejects mismatches.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a 64 over a canonical byte encoding: stable across runs and
        // platforms (no dependence on Hash or field layout).
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(b"dewrite-config-v2");
        eat(&[match self.mode {
            WriteMode::Direct => 0u8,
            WriteMode::Parallel => 1,
            WriteMode::Predictive => 2,
        }]);
        eat(&[u8::from(self.pna)]);
        eat(&(self.history_bits as u64).to_le_bytes());
        eat(&[match self.hasher {
            HashAlgorithm::Crc32 => 0u8,
            HashAlgorithm::Crc32c => 1,
            HashAlgorithm::Md5 => 2,
            HashAlgorithm::Sha1 => 3,
            HashAlgorithm::StrongKeyed => 4,
        }]);
        // Digest mode changes both the stored digest width and how durable
        // digests were produced, so it is semantic.
        eat(&[self.digest_mode.to_wire()]);
        // Counter width in bits (LineCounter is u32); a future width change
        // must alter the fingerprint.
        eat(&32u64.to_le_bytes());
        eat(&self.dedup_domains.to_le_bytes());
        h
    }

    /// The paper's DeWrite: predictive mode, PNA on, 3-bit history, CRC-32.
    pub fn paper() -> Self {
        DeWriteConfig {
            mode: WriteMode::Predictive,
            pna: true,
            history_bits: 3,
            hasher: HashAlgorithm::Crc32,
            digest_mode: DigestMode::Crc32Verify,
            meta_cache: MetaCacheConfig::paper(),
            verify_buffer_entries: 64,
            persistence: MetadataPersistence::BatteryBacked,
            dedup_domains: 1,
        }
    }
}

impl Default for DeWriteConfig {
    fn default() -> Self {
        DeWriteConfig::paper()
    }
}

/// Cell-level write encoding applied when a line is programmed (Fig. 13's
/// bit-level schemes, composable with any line-level scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BitEncoding {
    /// Program every cell (no comparison logic).
    Raw,
    /// Data Comparison Write: program only differing cells.
    #[default]
    Dcw,
    /// Flip-N-Write: per 32-bit group, write data or complement, whichever
    /// programs fewer cells.
    Fnw,
}

impl std::fmt::Display for BitEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BitEncoding::Raw => "raw",
            BitEncoding::Dcw => "DCW",
            BitEncoding::Fnw => "FNW",
        })
    }
}

/// Whole-system configuration shared by every scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The NVM device (its capacity covers data + metadata regions).
    pub nvm: NvmConfig,
    /// The core model.
    pub core: CoreConfig,
    /// Number of logical request contexts sharing the memory controller:
    /// hardware threads × outstanding-miss slots per thread. The paper runs
    /// 4-thread PARSEC on out-of-order cores; 4 threads × 2 outstanding
    /// misses ≈ 8 contexts reproduces comparable memory-level parallelism
    /// (single-threaded SPEC on a deep OoO core behaves alike).
    pub cores: usize,
    /// Line addresses `0..data_lines` are workload-visible.
    pub data_lines: u64,
    /// Write-queue depth: outstanding NVM data writes beyond this stall the
    /// core (back-pressure).
    pub write_queue_depth: usize,
    /// Persist barrier period: every N-th write stalls the core until that
    /// write reaches the NVM (epoch persistence). `None` = writes leave the
    /// core as soon as the controller accepts them.
    pub persist_every: Option<u32>,
    /// On-chip metadata-cache hit latency, ns (the `t_Q'` of Table I).
    pub meta_cache_hit_ns: u64,
    /// Fraction of reads that stall their context for the full latency.
    /// The rest are overlapped by the out-of-order window / prefetchers and
    /// only occupy memory-system resources.
    pub read_stall_fraction: f64,
    /// Cell-level write encoding for data-line programming.
    pub bit_encoding: BitEncoding,
}

impl SystemConfig {
    /// Build a configuration exposing `data_lines` workload lines, with a
    /// metadata region sized at 1/8 of the data region appended to the
    /// device address space (the paper's metadata overhead is ≈6.25%; we
    /// round up to a power-of-two-friendly 12.5% for region layout).
    pub fn for_lines(data_lines: u64) -> Self {
        Self::for_lines_with(data_lines, DEFAULT_LINE_SIZE)
    }

    /// Like [`for_lines`](Self::for_lines) with an explicit line size.
    /// The metadata region is sized at 32 B per data line (the four dedup
    /// tables need ≈17 B/line; the rest is slack), which is ≈12.5% for
    /// 256 B lines.
    pub fn for_lines_with(data_lines: u64, line_size: usize) -> Self {
        let meta_lines = (data_lines * 32).div_ceil(line_size as u64).max(16);
        let nvm = NvmConfig {
            capacity_bytes: (data_lines + meta_lines) * line_size as u64,
            line_size,
            ..NvmConfig::paper()
        };
        SystemConfig {
            nvm,
            core: CoreConfig::paper(),
            cores: 16,
            data_lines,
            write_queue_depth: 32,
            persist_every: None,
            meta_cache_hit_ns: 1,
            read_stall_fraction: 0.5,
            bit_encoding: BitEncoding::Dcw,
        }
    }

    /// First line index of the metadata region.
    pub fn meta_base(&self) -> u64 {
        self.data_lines
    }

    /// Number of metadata-region lines.
    pub fn meta_lines(&self) -> u64 {
        self.nvm.num_lines() - self.data_lines
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.nvm.validate()?;
        if self.data_lines == 0 {
            return Err("data_lines must be nonzero".into());
        }
        if self.data_lines >= self.nvm.num_lines() {
            return Err(format!(
                "data_lines {} leaves no metadata region (device has {} lines)",
                self.data_lines,
                self.nvm.num_lines()
            ));
        }
        if self.write_queue_depth == 0 {
            return Err("write_queue_depth must be nonzero".into());
        }
        if self.cores == 0 {
            return Err("cores must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_meta_cache_sizes() {
        let m = MetaCacheConfig::paper();
        assert_eq!(m.addr_map_entries, 131_072); // 512 KB / 4 B
        assert_eq!(m.inverted_entries, 131_072);
        assert_eq!(m.hash_entries, 58_254); // 512 KB / 9 B
        assert_eq!(m.fsm_groups, 512); // 128 KB of flags in 2048-bit groups
        assert_eq!(m.prefetch_entries, 256);
    }

    #[test]
    fn scaled_cache_is_monotonic() {
        let small = MetaCacheConfig::scaled(64, 256);
        let big = MetaCacheConfig::scaled(1024, 256);
        assert!(small.addr_map_entries < big.addr_map_entries);
        assert!(small.hash_entries < big.hash_entries);
        assert!(small.fsm_groups < big.fsm_groups);
    }

    #[test]
    fn system_config_regions() {
        let s = SystemConfig::for_lines(1 << 16);
        s.validate().unwrap();
        assert_eq!(s.meta_base(), 1 << 16);
        assert_eq!(s.meta_lines(), 1 << 13);
    }

    #[test]
    fn invalid_system_configs_rejected() {
        let mut s = SystemConfig::for_lines(1 << 10);
        s.data_lines = 0;
        assert!(s.validate().is_err());

        let mut s = SystemConfig::for_lines(1 << 10);
        s.data_lines = s.nvm.num_lines();
        assert!(s.validate().is_err());

        let mut s = SystemConfig::for_lines(1 << 10);
        s.write_queue_depth = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn write_mode_display() {
        assert_eq!(WriteMode::Direct.to_string(), "direct");
        assert_eq!(WriteMode::Parallel.to_string(), "parallel");
        assert_eq!(WriteMode::Predictive.to_string(), "predictive");
        assert_eq!(WriteMode::default(), WriteMode::Predictive);
    }
}
