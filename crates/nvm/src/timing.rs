//! NVM timing parameters (PCM model, Table II / §III-B1 of the paper).

/// Timing parameters of the simulated NVM device, in nanoseconds.
///
/// Defaults model PCM as configured in the paper: a 75 ns array read and a
/// 300 ns array write (the 3–8× read/write asymmetry DeWrite exploits), with
/// a 1-cycle (≈1 ns at ~1 GHz controller clock) line comparison in the dedup
/// logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Latency of reading one line from an NVM bank.
    pub read_ns: u64,
    /// Latency of writing one line to an NVM bank.
    pub write_ns: u64,
    /// Latency of a read that hits the bank's open row buffer.
    pub row_hit_ns: u64,
    /// Latency of the hardware byte-comparator confirming a duplicate.
    pub compare_ns: u64,
}

impl Timing {
    /// The PCM timing used throughout the paper's evaluation.
    pub const PCM: Timing = Timing {
        read_ns: 75,
        write_ns: 300,
        row_hit_ns: 15,
        compare_ns: 1,
    };

    /// An STT-RAM-like faster device (used by sensitivity extensions).
    pub const STT_RAM: Timing = Timing {
        read_ns: 10,
        write_ns: 50,
        row_hit_ns: 5,
        compare_ns: 1,
    };

    /// Read/write asymmetry ratio (write latency / read latency).
    ///
    /// ```
    /// use dewrite_nvm::Timing;
    /// assert_eq!(Timing::PCM.asymmetry(), 4.0);
    /// ```
    pub fn asymmetry(&self) -> f64 {
        self.write_ns as f64 / self.read_ns as f64
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::PCM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_matches_paper() {
        let t = Timing::PCM;
        assert_eq!(t.read_ns, 75);
        assert_eq!(t.write_ns, 300);
        assert_eq!(t.compare_ns, 1);
        // The paper quotes 3–8× asymmetry; our configuration sits at 4×.
        assert!(t.asymmetry() >= 3.0 && t.asymmetry() <= 8.0);
    }

    #[test]
    fn default_is_pcm() {
        assert_eq!(Timing::default(), Timing::PCM);
    }
}
