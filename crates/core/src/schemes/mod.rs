//! Secure-NVMM scheme implementations.
//!
//! All schemes implement [`SecureMemory`]: a memory-controller front-end
//! over an [`NvmDevice`] that encrypts data lines and reports, per
//! operation, both the **critical-path latency** the core stalls on and the
//! **full completion time** including bank queueing — the two quantities the
//! paper's latency and IPC figures are built from.
//!
//! * [`CmeBaseline`] — the "traditional secure NVM" baseline: counter-mode
//!   encryption, counter cache, no deduplication.
//! * [`DeWrite`] — the paper's system: light-weight in-line dedup with
//!   prediction-based parallelism, PNA, and colocated metadata.
//! * [`TraditionalDedup`] — in-line dedup with a cryptographic fingerprint
//!   (SHA-1/MD5), the strawman of Table I.

mod cme;
mod dewrite;
mod shredder;
mod traditional;

pub use cme::CmeBaseline;
pub use dewrite::{DeWrite, DeWriteCacheStats, DeWriteMetrics};
pub use shredder::SilentShredder;
pub use traditional::TraditionalDedup;

use dewrite_mem::{CacheConfig, CacheStats, MetadataCache, Replacement};
use dewrite_nvm::{LineAddr, NvmDevice, NvmError};

/// Programmed-cell count for writing `new` over `old` under `encoding`.
pub(crate) fn encoded_flips(encoding: crate::config::BitEncoding, old: &[u8], new: &[u8]) -> u64 {
    use crate::config::BitEncoding;
    match encoding {
        BitEncoding::Raw => (new.len() * 8) as u64,
        BitEncoding::Dcw => crate::bitlevel::dcw_flips(old, new),
        BitEncoding::Fnw => crate::bitlevel::fnw_flips(old, new),
    }
}

/// Latency of direct (block-cipher) en/decryption of one metadata line, ns.
/// Direct decryption cannot overlap the NVM read (§III-B1).
pub const DIRECT_CRYPT_NS: u64 = 96;

/// Fraction of bits assumed flipped by a direct-encrypted metadata line
/// write (diffusion flips ~half).
pub const META_WRITE_FLIPS: u64 = 1024;

/// Result of a write operation at the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteResult {
    /// Controller critical path: detection/encryption work the core waits
    /// out before the write is accepted (persist ordering then applies to
    /// the NVM write itself — the simulator decides how much of that the
    /// core observes).
    pub critical_ns: u64,
    /// Absolute completion time of the NVM data write, if one was issued.
    pub nvm_finish_ns: Option<u64>,
    /// Whether deduplication eliminated the NVM write.
    pub eliminated: bool,
    /// Full write latency (issue → data durable): for eliminated writes the
    /// detection path, otherwise `nvm_finish − now`.
    pub total_ns: u64,
}

/// Result of a read operation at the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// Decrypted line contents.
    pub data: Vec<u8>,
    /// Critical-path latency of the read.
    pub latency_ns: u64,
}

/// Common per-scheme counters every implementation reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaseMetrics {
    /// Writes accepted.
    pub writes: u64,
    /// Writes whose NVM write was eliminated.
    pub writes_eliminated: u64,
    /// Writes absorbed by controller write-queue coalescing (a newer write
    /// to the same line landed before this one drained). Zero unless a
    /// coalescing window is enabled (`dewrite-engine`).
    pub coalesced_writes: u64,
    /// Reads served.
    pub reads: u64,
    /// AES line encryptions performed (energy-relevant).
    pub aes_line_ops: u64,
    /// Fingerprint computations performed.
    pub hash_ops: u64,
    /// Candidate-line reads used to confirm duplicates.
    pub verify_reads: u64,
    /// Metadata NVM reads (cache misses).
    pub meta_nvm_reads: u64,
    /// Metadata NVM writes (dirty evictions).
    pub meta_nvm_writes: u64,
}

/// The secure-memory front-end interface all schemes share.
///
/// `Send` is a supertrait: every scheme owns plain data (tables, device,
/// caches) plus `Send` trait objects, so a controller instance can be
/// moved onto a worker thread. Concurrency follows the shard-ownership
/// model (one exclusive controller per shard thread, see `dewrite-engine`)
/// rather than shared mutation — the API deliberately stays `&mut self`.
pub trait SecureMemory: Send {
    /// Human-readable scheme name for reports.
    fn name(&self) -> String;

    /// Write one line of plaintext at `addr`, arriving at `now_ns`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is outside the workload-visible region or `data` is
    /// not one line.
    fn write(&mut self, addr: LineAddr, data: &[u8], now_ns: u64) -> Result<WriteResult, NvmError>;

    /// Read one line of plaintext at `addr`, arriving at `now_ns`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is outside the workload-visible region.
    fn read(&mut self, addr: LineAddr, now_ns: u64) -> Result<ReadResult, NvmError>;

    /// The underlying device (energy, wear, bank statistics).
    fn device(&self) -> &NvmDevice;

    /// Common counters.
    fn base_metrics(&self) -> BaseMetrics;

    /// Install an [`EventSink`](crate::trace::EventSink) that observes one
    /// [`WriteEvent`](crate::trace::WriteEvent) per accepted write.
    ///
    /// Schemes without tracing support drop the sink (the default); they
    /// then report an empty stage breakdown rather than a wrong one.
    fn set_event_sink(&mut self, sink: Box<dyn crate::trace::EventSink>) {
        drop(sink);
    }

    /// Remove and return the installed sink, if tracing is supported and a
    /// sink is present.
    fn take_event_sink(&mut self) -> Option<Box<dyn crate::trace::EventSink>> {
        None
    }
}

/// Outcome of one metadata-table access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MetaAccess {
    /// Absolute time at which the entry is available.
    pub done_ns: u64,
    /// Whether the metadata cache hit.
    pub hit: bool,
}

/// One metadata table: an on-chip cache partition backed by an NVM region.
///
/// A cache hit costs `hit_ns`; a miss reads the backing NVM line(s)
/// (bank-scheduled) and pays direct decryption before the entry is usable.
/// Sequential tables prefetch a run of entries per miss; dirty evictions
/// become asynchronous metadata writes.
#[derive(Debug)]
pub(crate) struct MetaTable {
    cache: MetadataCache,
    base_line: u64,
    region_lines: u64,
    entry_bytes: usize,
    prefetch_entries: usize,
    sequential: bool,
    hit_ns: u64,
    line_size: usize,
    zero_line: Vec<u8>,
    write_through: bool,
}

impl MetaTable {
    #[allow(clippy::too_many_arguments)] // mirrors the hardware parameters
    pub(crate) fn new(
        capacity_entries: usize,
        replacement: Replacement,
        base_line: u64,
        region_lines: u64,
        entry_bytes: usize,
        prefetch_entries: usize,
        sequential: bool,
        hit_ns: u64,
        line_size: usize,
    ) -> Self {
        MetaTable {
            cache: MetadataCache::new(CacheConfig {
                capacity: capacity_entries,
                associativity: 8,
                replacement,
            }),
            base_line,
            region_lines: region_lines.max(1),
            entry_bytes,
            prefetch_entries: prefetch_entries.max(1),
            sequential,
            hit_ns,
            line_size,
            zero_line: vec![0u8; line_size],
            write_through: false,
        }
    }

    /// Switch the table to write-through persistence: updates are never
    /// held dirty in the cache; each one issues an immediate metadata
    /// write instead.
    pub(crate) fn set_write_through(&mut self, on: bool) {
        self.write_through = on;
    }

    fn backing_line(&self, entry: u64) -> LineAddr {
        let entries_per_line = (self.line_size / self.entry_bytes).max(1) as u64;
        let line = if self.sequential {
            (entry / entries_per_line) % self.region_lines
        } else {
            entry % self.region_lines
        };
        LineAddr::new(self.base_line + line)
    }

    /// Cache-only lookup: returns the hit outcome, or `None` on a miss
    /// (recorded in the statistics) *without* fetching from NVM. PNA uses
    /// this to decline the in-NVM hash-table query.
    pub(crate) fn probe(&mut self, entry: u64, write: bool, now_ns: u64) -> Option<MetaAccess> {
        if self.cache.access(entry, write) {
            Some(MetaAccess {
                done_ns: now_ns + self.hit_ns,
                hit: true,
            })
        } else {
            None
        }
    }

    /// Access `entry` at absolute time `now_ns`; `write` marks it dirty.
    /// Misses fetch from NVM (+ direct decryption) and fill the cache,
    /// prefetching the sequential run when configured. Returns when the
    /// entry is ready, and accumulates NVM traffic into `metrics`.
    pub(crate) fn access(
        &mut self,
        entry: u64,
        write: bool,
        device: &mut NvmDevice,
        now_ns: u64,
        metrics: &mut BaseMetrics,
    ) -> MetaAccess {
        let dirty = write && !self.write_through;
        let result = match self.probe(entry, dirty, now_ns) {
            Some(hit) => hit,
            None => self.fetch(entry, dirty, device, now_ns, metrics),
        };
        if write && self.write_through {
            self.writeback(device, now_ns, metrics);
        }
        result
    }

    /// Pure-update access: install or dirty `entry` without fetching its
    /// backing line on a miss (write-allocate, no-fetch — the controller
    /// overwrites the whole entry, so the old value is not needed). Dirty
    /// victims are still written back. Costs only the cache hit latency.
    pub(crate) fn write_insert(
        &mut self,
        entry: u64,
        device: &mut NvmDevice,
        now_ns: u64,
        metrics: &mut BaseMetrics,
    ) -> MetaAccess {
        let dirty = !self.write_through;
        let result = match self.probe(entry, dirty, now_ns) {
            Some(hit) => hit,
            None => {
                if let Some(victim) = self.cache.insert(entry, dirty) {
                    if victim.dirty {
                        self.writeback(device, now_ns, metrics);
                    }
                }
                MetaAccess {
                    done_ns: now_ns + self.hit_ns,
                    hit: false,
                }
            }
        };
        if self.write_through {
            self.writeback(device, now_ns, metrics);
        }
        result
    }

    /// Fetch `entry` from the backing NVM region after a recorded miss,
    /// filling (and prefetching into) the cache.
    pub(crate) fn fetch(
        &mut self,
        entry: u64,
        write: bool,
        device: &mut NvmDevice,
        now_ns: u64,
        metrics: &mut BaseMetrics,
    ) -> MetaAccess {
        // Fetch the backing line(s).
        let fetch_lines = if self.sequential {
            (self.prefetch_entries * self.entry_bytes)
                .div_ceil(self.line_size)
                .max(1)
        } else {
            1
        };
        let mut done = now_ns;
        for i in 0..fetch_lines as u64 {
            let line =
                self.backing_line(entry + i * (self.line_size / self.entry_bytes.max(1)) as u64);
            let (_, access) = device
                .read_line(line, now_ns)
                .expect("metadata region line in range");
            metrics.meta_nvm_reads += 1;
            done = done.max(access.slot.finish_ns);
        }
        // Direct decryption serializes after the read.
        done += DIRECT_CRYPT_NS;
        device.charge_aes_pj(dewrite_crypto::aes_line_energy_pj(self.line_size));

        // Fill (and prefetch) the cache; write back dirty victims.
        let dirty_victims = if self.sequential && self.prefetch_entries > 1 {
            let aligned = entry - entry % self.prefetch_entries as u64;
            self.cache.prefetch_run(aligned, self.prefetch_entries)
        } else {
            0
        };
        let mut dirty = dirty_victims;
        if let Some(victim) = self.cache.insert(entry, write) {
            if victim.dirty {
                dirty += 1;
            }
        } else if write {
            // insert() may have updated in place after prefetch; re-mark.
            self.cache.access(entry, true);
        }
        for _ in 0..dirty {
            self.writeback(device, now_ns, metrics);
        }

        MetaAccess {
            done_ns: done,
            hit: false,
        }
    }

    /// Issue one asynchronous metadata write-back (dirty eviction).
    fn writeback(&mut self, device: &mut NvmDevice, now_ns: u64, metrics: &mut BaseMetrics) {
        // Victims map back to some line in the region; the exact line does
        // not matter for timing/energy, so reuse the entry's own line.
        let line = self.backing_line(metrics.meta_nvm_writes);
        device
            .write_line_with_flips(line, &self.zero_line, META_WRITE_FLIPS, now_ns)
            .expect("metadata region line in range");
        device.charge_aes_pj(dewrite_crypto::aes_line_energy_pj(self.line_size));
        metrics.meta_nvm_writes += 1;
    }

    /// Cache statistics for this partition.
    pub(crate) fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of dirty entries currently cached.
    pub(crate) fn dirty_entries(&self) -> u64 {
        self.cache.dirty_count()
    }

    /// Flush all dirty entries to the backing NVM region (epoch
    /// persistence / write-through). Each dirty entry becomes one
    /// asynchronous metadata write. Returns how many were flushed.
    pub(crate) fn flush_all(
        &mut self,
        device: &mut NvmDevice,
        now_ns: u64,
        metrics: &mut BaseMetrics,
    ) -> u64 {
        let dirty = self.cache.flush_dirty();
        for _ in 0..dirty {
            self.writeback(device, now_ns, metrics);
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewrite_nvm::NvmConfig;

    fn device() -> NvmDevice {
        NvmDevice::new(NvmConfig::small()).unwrap()
    }

    fn table(sequential: bool, prefetch: usize) -> MetaTable {
        MetaTable::new(
            64,
            Replacement::Lru,
            1024, // metadata region base
            256,
            4,
            prefetch,
            sequential,
            1,
            256,
        )
    }

    #[test]
    fn hit_costs_hit_latency_only() {
        let mut d = device();
        let mut m = BaseMetrics::default();
        let mut t = table(true, 16);
        let miss = t.access(5, false, &mut d, 0, &mut m);
        assert!(!miss.hit);
        assert!(miss.done_ns >= 75 + DIRECT_CRYPT_NS);
        assert_eq!(m.meta_nvm_reads, 1);

        let hit = t.access(5, false, &mut d, 1_000, &mut m);
        assert!(hit.hit);
        assert_eq!(hit.done_ns, 1_001);
        assert_eq!(m.meta_nvm_reads, 1, "no extra NVM traffic on hit");
    }

    #[test]
    fn sequential_prefetch_makes_neighbors_hit() {
        let mut d = device();
        let mut m = BaseMetrics::default();
        let mut t = table(true, 16);
        t.access(32, false, &mut d, 0, &mut m);
        // Entries 32..48 were prefetched (aligned run).
        let hit = t.access(40, false, &mut d, 100, &mut m);
        assert!(hit.hit);
    }

    #[test]
    fn non_sequential_table_fetches_one_line() {
        let mut d = device();
        let mut m = BaseMetrics::default();
        let mut t = table(false, 16);
        t.access(0xDEAD_BEEF, false, &mut d, 0, &mut m);
        assert_eq!(m.meta_nvm_reads, 1);
        // And no neighbors were prefetched.
        let second = t.access(0xDEAD_BEF0, false, &mut d, 10, &mut m);
        assert!(!second.hit);
    }

    #[test]
    fn dirty_evictions_produce_metadata_writes() {
        let mut d = device();
        let mut m = BaseMetrics::default();
        // Tiny cache: 8 entries, no prefetch.
        let mut t = MetaTable::new(8, Replacement::Lru, 1024, 64, 4, 1, true, 1, 256);
        for k in 0..64 {
            t.access(k * 17, true, &mut d, k * 10, &mut m);
        }
        assert!(m.meta_nvm_writes > 0, "dirty victims must be written back");
        assert!(d.writes() >= m.meta_nvm_writes);
    }

    #[test]
    fn wide_prefetch_reads_multiple_lines() {
        let mut d = device();
        let mut m = BaseMetrics::default();
        // 256 entries × 4 B = 1024 B = 4 NVM lines per miss.
        let mut t = table(true, 256);
        t.access(0, false, &mut d, 0, &mut m);
        assert_eq!(m.meta_nvm_reads, 4);
    }
}
