//! Checkpoint file format: a checksummed wrapper around the core
//! [`Snapshot`] plus the write count it covers.
//!
//! ```text
//! file    := magic "DWCK" · version u16 · crc u32 (over payload) · payload
//! payload := writes_covered u64 · snapshot bytes (the core v2 format)
//! ```
//!
//! `writes_covered` anchors the WAL chain: the segment paired with this
//! checkpoint logs epochs whose `base_writes` start here. The snapshot
//! carries its own config fingerprint, which recovery verifies.

use std::io::{self, Write};

use dewrite_core::Snapshot;
use dewrite_hashes::Crc32;

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"DWCK";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A durable checkpoint: the full metadata state as of `writes_covered`
/// data writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Total data writes whose effects the snapshot includes.
    pub writes_covered: u64,
    /// The metadata state.
    pub snapshot: Snapshot,
}

impl Checkpoint {
    /// Serialize to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.writes_covered.to_le_bytes());
        self.snapshot.write_to(&mut payload)?;
        let crc = Crc32::new().checksum(&payload);
        w.write_all(&CHECKPOINT_MAGIC)?;
        w.write_all(&CHECKPOINT_VERSION.to_le_bytes())?;
        w.write_all(&crc.to_le_bytes())?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Decode a checkpoint image, bounding the embedded snapshot's claimed
    /// line count by `max_lines`.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on bad magic/version, a
    /// checksum mismatch, or an invalid embedded snapshot.
    pub fn read_from_bounded(bytes: &[u8], max_lines: u64) -> io::Result<Self> {
        if bytes.len() < 10 {
            return Err(bad("checkpoint header truncated"));
        }
        if bytes[0..4] != CHECKPOINT_MAGIC {
            return Err(bad("not a DeWrite checkpoint"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != CHECKPOINT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
            )));
        }
        let crc = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes"));
        let payload = &bytes[10..];
        if Crc32::new().checksum(payload) != crc {
            return Err(bad("checkpoint checksum mismatch (corrupt or torn)"));
        }
        if payload.len() < 8 {
            return Err(bad("checkpoint payload truncated"));
        }
        let writes_covered = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let snapshot = Snapshot::read_from_bounded(&payload[8..], max_lines)?;
        Ok(Checkpoint {
            writes_covered,
            snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            writes_covered: 123,
            snapshot: Snapshot {
                config_fp: 7,
                lines: 64,
                mappings: vec![(0, 5), (1, 5)],
                residents: vec![(5, 99)],
                counters: vec![(5, 2)],
            },
        }
    }

    #[test]
    fn roundtrip() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        assert_eq!(Checkpoint::read_from_bounded(&buf, 64).unwrap(), ck);
    }

    #[test]
    fn every_truncation_and_flip_is_rejected() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            assert!(
                Checkpoint::read_from_bounded(&buf[..cut], 64).is_err(),
                "truncation at {cut} decoded"
            );
        }
        for byte in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[byte] ^= 0x01;
            assert!(
                Checkpoint::read_from_bounded(&corrupt, 64).is_err(),
                "flip at {byte} decoded"
            );
        }
    }

    #[test]
    fn line_bound_applies_to_embedded_snapshot() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        assert!(Checkpoint::read_from_bounded(&buf, 16).is_err());
    }
}
