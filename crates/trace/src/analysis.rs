//! Offline trace analysis: the duplication oracle behind Fig. 2 and Fig. 4.
//!
//! The oracle replays a trace against an idealized content-addressed memory
//! and reports, for every write, whether an identical line was resident
//! anywhere in memory at that moment — the paper's definition of a duplicate
//! line — plus the zero-line share and the duplication-state persistence
//! that motivates the history-window predictor.

use std::collections::HashMap;

use dewrite_nvm::is_zero_line;

use crate::record::{TraceOp, TraceRecord};

/// Aggregate duplication statistics for one trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DupStats {
    /// Total reads observed.
    pub reads: u64,
    /// Total writes observed.
    pub writes: u64,
    /// Writes whose content was already resident (duplicates).
    pub dup_writes: u64,
    /// Writes of all-zero lines.
    pub zero_writes: u64,
    /// Consecutive write pairs whose duplication states matched.
    pub same_state_pairs: u64,
    /// Total instructions covered by the trace.
    pub instructions: u64,
}

impl DupStats {
    /// Fraction of writes that are duplicates (Fig. 2).
    pub fn dup_ratio(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.dup_writes as f64 / self.writes as f64
        }
    }

    /// Fraction of writes that are zero lines (Fig. 2, zero series).
    pub fn zero_ratio(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.zero_writes as f64 / self.writes as f64
        }
    }

    /// Probability that a write's duplication state equals its
    /// predecessor's (Fig. 4, "previous one" series).
    pub fn state_persistence(&self) -> f64 {
        if self.writes <= 1 {
            0.0
        } else {
            self.same_state_pairs as f64 / (self.writes - 1) as f64
        }
    }
}

/// An incremental duplication oracle.
///
/// Feed records in trace order with [`observe`](Self::observe); read the
/// running totals from [`stats`](Self::stats). The oracle keeps an exact
/// address → content map and a content → residency count multimap, so a
/// write is classified as duplicate iff its exact bytes are resident
/// *somewhere* at write time (including being overwritten in place by
/// identical data).
#[derive(Debug, Default)]
pub struct DupOracle {
    memory: HashMap<u64, Vec<u8>>,
    residency: HashMap<Vec<u8>, u64>,
    stats: DupStats,
    last_state: Option<bool>,
    /// Per-write duplication outcomes, recorded when enabled.
    outcomes: Option<Vec<bool>>,
}

impl DupOracle {
    /// A fresh oracle over an all-zero memory.
    ///
    /// Note: physically, unwritten NVM reads as zeros, but the paper's
    /// duplication counts concern *written* content, so the oracle starts
    /// with an empty residency set; run the generator's warmup records
    /// through it first, via [`observe_warmup`](Self::observe_warmup).
    pub fn new() -> Self {
        Self::default()
    }

    /// Like `new`, but additionally records each write's duplicate/non-dup
    /// outcome for predictor experiments (Fig. 4).
    pub fn recording() -> Self {
        DupOracle {
            outcomes: Some(Vec::new()),
            ..Self::default()
        }
    }

    /// Apply a warmup record without counting it in the statistics.
    pub fn observe_warmup(&mut self, rec: &TraceRecord) {
        if let TraceOp::Write { addr, data } = &rec.op {
            self.install(addr.index(), data.clone());
        }
    }

    fn install(&mut self, addr: u64, data: Vec<u8>) {
        if let Some(old) = self.memory.insert(addr, data.clone()) {
            if let Some(count) = self.residency.get_mut(&old) {
                *count -= 1;
                if *count == 0 {
                    self.residency.remove(&old);
                }
            }
        }
        *self.residency.entry(data).or_insert(0) += 1;
    }

    /// Observe one trace record, updating the statistics.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.stats.instructions += u64::from(rec.gap_instructions);
        match &rec.op {
            TraceOp::Read { .. } => self.stats.reads += 1,
            TraceOp::Write { addr, data } => {
                self.stats.writes += 1;
                let dup = self.residency.contains_key(data);
                if dup {
                    self.stats.dup_writes += 1;
                }
                if is_zero_line(data) {
                    self.stats.zero_writes += 1;
                }
                if let Some(last) = self.last_state {
                    if last == dup {
                        self.stats.same_state_pairs += 1;
                    }
                }
                self.last_state = Some(dup);
                if let Some(outcomes) = &mut self.outcomes {
                    outcomes.push(dup);
                }
                self.install(addr.index(), data.clone());
            }
        }
    }

    /// The running statistics.
    pub fn stats(&self) -> DupStats {
        self.stats
    }

    /// Recorded per-write outcomes (empty unless built with
    /// [`recording`](Self::recording)).
    pub fn outcomes(&self) -> &[bool] {
        self.outcomes.as_deref().unwrap_or(&[])
    }
}

/// Convenience: run a whole trace (with optional warmup) through an oracle.
pub fn analyze<'a, W, T>(warmup: W, trace: T) -> DupStats
where
    W: IntoIterator<Item = &'a TraceRecord>,
    T: IntoIterator<Item = &'a TraceRecord>,
{
    let mut oracle = DupOracle::new();
    for rec in warmup {
        oracle.observe_warmup(rec);
    }
    for rec in trace {
        oracle.observe(rec);
    }
    oracle.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewrite_nvm::LineAddr;

    fn write(addr: u64, data: Vec<u8>) -> TraceRecord {
        TraceRecord {
            gap_instructions: 10,
            op: TraceOp::Write {
                addr: LineAddr::new(addr),
                data,
            },
        }
    }

    fn read(addr: u64) -> TraceRecord {
        TraceRecord {
            gap_instructions: 10,
            op: TraceOp::Read {
                addr: LineAddr::new(addr),
            },
        }
    }

    #[test]
    fn first_write_of_content_is_not_duplicate() {
        let stats = analyze([].iter(), [write(0, vec![1u8; 16])].iter());
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.dup_writes, 0);
    }

    #[test]
    fn repeat_content_at_other_address_is_duplicate() {
        let trace = [write(0, vec![1u8; 16]), write(5, vec![1u8; 16])];
        let stats = analyze([].iter(), trace.iter());
        assert_eq!(stats.dup_writes, 1);
        assert_eq!(stats.dup_ratio(), 0.5);
    }

    #[test]
    fn silent_store_counts_as_duplicate() {
        let trace = [write(0, vec![2u8; 16]), write(0, vec![2u8; 16])];
        let stats = analyze([].iter(), trace.iter());
        assert_eq!(stats.dup_writes, 1);
    }

    #[test]
    fn overwritten_content_stops_being_resident() {
        let trace = [
            write(0, vec![3u8; 16]), // 3-line resident
            write(0, vec![4u8; 16]), // overwrites it
            write(1, vec![3u8; 16]), // 3-line no longer resident → not dup
        ];
        let stats = analyze([].iter(), trace.iter());
        assert_eq!(stats.dup_writes, 0);
    }

    #[test]
    fn residency_counts_multiple_copies() {
        let trace = [
            write(0, vec![5u8; 16]),
            write(1, vec![5u8; 16]), // dup; two copies now
            write(0, vec![6u8; 16]), // one copy of 5s remains
            write(2, vec![5u8; 16]), // still dup
        ];
        let stats = analyze([].iter(), trace.iter());
        assert_eq!(stats.dup_writes, 2);
    }

    #[test]
    fn zero_lines_counted() {
        let trace = [write(0, vec![0u8; 16]), write(1, vec![0u8; 16])];
        let stats = analyze([].iter(), trace.iter());
        assert_eq!(stats.zero_writes, 2);
        assert_eq!(stats.dup_writes, 1); // second zero write duplicates the first
    }

    #[test]
    fn warmup_precounts_residency_without_stats() {
        let warm = [write(100, vec![9u8; 16])];
        let trace = [write(0, vec![9u8; 16])];
        let stats = analyze(warm.iter(), trace.iter());
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.dup_writes, 1);
    }

    #[test]
    fn reads_and_instructions_tallied() {
        let trace = [read(0), write(0, vec![1u8; 16]), read(0)];
        let stats = analyze([].iter(), trace.iter());
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.instructions, 30);
    }

    #[test]
    fn state_persistence_of_alternating_and_constant_traces() {
        // Constant: dup dup dup after the seed write.
        let constant = [
            write(0, vec![1u8; 16]),
            write(1, vec![1u8; 16]),
            write(2, vec![1u8; 16]),
            write(3, vec![1u8; 16]),
        ];
        let s = analyze([].iter(), constant.iter());
        // states: N D D D → pairs: (N,D) no, (D,D) yes, (D,D) yes = 2/3
        assert!((s.state_persistence() - 2.0 / 3.0).abs() < 1e-9);

        // Alternating states.
        let alternating = [
            write(0, vec![1u8; 16]), // N
            write(1, vec![1u8; 16]), // D
            write(2, vec![2u8; 16]), // N
            write(3, vec![2u8; 16]), // D
        ];
        let s = analyze([].iter(), alternating.iter());
        assert_eq!(s.same_state_pairs, 0);
    }

    #[test]
    fn recording_oracle_keeps_outcomes() {
        let mut o = DupOracle::recording();
        o.observe(&write(0, vec![1u8; 16]));
        o.observe(&write(1, vec![1u8; 16]));
        assert_eq!(o.outcomes(), &[false, true]);
        // Non-recording oracle returns empty.
        assert!(DupOracle::new().outcomes().is_empty());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DupStats::default();
        assert_eq!(s.dup_ratio(), 0.0);
        assert_eq!(s.zero_ratio(), 0.0);
        assert_eq!(s.state_persistence(), 0.0);
    }
}
