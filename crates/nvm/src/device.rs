//! The NVM device model: sparse line store + banks + wear + energy.

use std::collections::HashMap;

use crate::bank::{BankSet, BankSlot};
use crate::config::NvmConfig;
use crate::energy::EnergyBreakdown;
use crate::line::{bit_flips, LineAddr};
use crate::wear::WearTracker;

/// Error type for device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmError {
    /// The line address is beyond the configured capacity.
    AddressOutOfRange {
        /// The offending address.
        addr: LineAddr,
        /// Number of addressable lines.
        num_lines: u64,
    },
    /// The data length does not match the configured line size.
    WrongLineSize {
        /// Bytes supplied by the caller.
        got: usize,
        /// Configured line size.
        expected: usize,
    },
}

impl std::fmt::Display for NvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmError::AddressOutOfRange { addr, num_lines } => {
                write!(
                    f,
                    "line address {addr} out of range (capacity {num_lines} lines)"
                )
            }
            NvmError::WrongLineSize { got, expected } => {
                write!(
                    f,
                    "line data is {got} bytes, device uses {expected}-byte lines"
                )
            }
        }
    }
}

impl std::error::Error for NvmError {}

/// Timing/energy outcome of one device access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Bank scheduling outcome (start / finish / queueing wait).
    pub slot: BankSlot,
    /// Bits actually programmed (0 for reads).
    pub bits_flipped: u64,
    /// Array energy consumed by this access, in pJ.
    pub energy_pj: u64,
}

/// The simulated NVM DIMM.
///
/// Lines are stored sparsely; unwritten lines read as zeros (fresh PCM).
/// Every access is scheduled on the owning bank, so callers observe realistic
/// queueing delays, and every write is charged wear and per-flipped-bit
/// energy.
///
/// ```
/// use dewrite_nvm::{LineAddr, NvmConfig, NvmDevice};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nvm = NvmDevice::new(NvmConfig::small())?;
/// let line = vec![7u8; 256];
/// let w = nvm.write_line(LineAddr::new(4), &line, 0)?;
/// assert_eq!(w.slot.finish_ns, 300);
/// // The write installed the row, so this read is a 15 ns row-buffer hit.
/// let (data, r) = nvm.read_line(LineAddr::new(4), w.slot.finish_ns)?;
/// assert_eq!(data, line);
/// assert_eq!(r.slot.finish_ns, 315);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NvmDevice {
    config: NvmConfig,
    store: HashMap<u64, Box<[u8]>>,
    banks: BankSet,
    wear: WearTracker,
    energy: EnergyBreakdown,
    reads: u64,
    writes: u64,
}

impl NvmDevice {
    /// Create a device with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns the configuration's own validation error text wrapped in
    /// [`NvmError::WrongLineSize`]-style diagnostics via `String`; callers
    /// treat any `Err` as a fatal setup problem.
    pub fn new(config: NvmConfig) -> Result<Self, String> {
        config.validate()?;
        let banks = BankSet::new(config.banks);
        Ok(NvmDevice {
            config,
            store: HashMap::new(),
            banks,
            wear: WearTracker::new(),
            energy: EnergyBreakdown::new(),
            reads: 0,
            writes: 0,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &NvmConfig {
        &self.config
    }

    fn check_addr(&self, addr: LineAddr) -> Result<(), NvmError> {
        if addr.index() >= self.config.num_lines() {
            Err(NvmError::AddressOutOfRange {
                addr,
                num_lines: self.config.num_lines(),
            })
        } else {
            Ok(())
        }
    }

    fn check_len(&self, len: usize) -> Result<(), NvmError> {
        if len != self.config.line_size {
            Err(NvmError::WrongLineSize {
                got: len,
                expected: self.config.line_size,
            })
        } else {
            Ok(())
        }
    }

    /// Peek at stored contents without modeling an access (no timing, no
    /// energy). Unwritten lines read as zeros.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is out of range.
    pub fn peek_line(&self, addr: LineAddr) -> Result<Vec<u8>, NvmError> {
        self.check_addr(addr)?;
        Ok(match self.store.get(&addr.index()) {
            Some(data) => data.to_vec(),
            None => vec![0u8; self.config.line_size],
        })
    }

    /// Read a line, arriving at the controller at `now_ns`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is out of range.
    pub fn read_line(
        &mut self,
        addr: LineAddr,
        now_ns: u64,
    ) -> Result<(Vec<u8>, Access), NvmError> {
        self.check_addr(addr)?;
        let (slot, row_hit) = self.banks.schedule_row(
            addr.index(),
            self.config.lines_per_row,
            now_ns,
            self.config.timing.row_hit_ns,
            self.config.timing.read_ns,
        );
        let energy = if row_hit {
            self.config.energy.row_hit_read_pj
        } else {
            self.config.energy.read_line_pj
        };
        self.energy.nvm_read_pj += energy;
        self.reads += 1;
        let data = self.peek_line(addr)?;
        Ok((
            data,
            Access {
                slot,
                bits_flipped: 0,
                energy_pj: energy,
            },
        ))
    }

    /// Write a full line; bits programmed are computed against the current
    /// contents (Data Comparison Write happens at the cell level on PCM).
    ///
    /// # Errors
    ///
    /// Fails if `addr` is out of range or `data` is not one line.
    pub fn write_line(
        &mut self,
        addr: LineAddr,
        data: &[u8],
        now_ns: u64,
    ) -> Result<Access, NvmError> {
        self.check_addr(addr)?;
        self.check_len(data.len())?;
        let old = self.peek_line(addr)?;
        let flips = bit_flips(&old, data);
        self.write_line_with_flips(addr, data, flips, now_ns)
    }

    /// Write a line, charging wear/energy for an explicit `bits_flipped`
    /// count. Used by encoding schemes (e.g. Flip-N-Write) whose effective
    /// programmed-bit count differs from the raw XOR difference.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is out of range or `data` is not one line.
    pub fn write_line_with_flips(
        &mut self,
        addr: LineAddr,
        data: &[u8],
        bits_flipped: u64,
        now_ns: u64,
    ) -> Result<Access, NvmError> {
        self.check_addr(addr)?;
        self.check_len(data.len())?;
        // Writes always program the array (PCM has no write coalescing in
        // the row buffer) but do install the row.
        let (slot, _) = self.banks.schedule_row(
            addr.index(),
            self.config.lines_per_row,
            now_ns,
            self.config.timing.write_ns,
            self.config.timing.write_ns,
        );
        let energy = self.config.energy.write_energy_pj(bits_flipped);
        self.energy.nvm_write_pj += energy;
        self.writes += 1;
        self.wear
            .record_write(addr, bits_flipped, self.config.line_bits());
        self.store
            .insert(addr.index(), data.to_vec().into_boxed_slice());
        Ok(Access {
            slot,
            bits_flipped,
            energy_pj: energy,
        })
    }

    /// Wear statistics accumulated so far.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Array energy accumulated so far.
    pub fn energy(&self) -> &EnergyBreakdown {
        &self.energy
    }

    /// Charge external (controller-side) energy to the device's breakdown so
    /// whole-system totals live in one place.
    pub fn charge_aes_pj(&mut self, pj: u64) {
        self.energy.aes_pj += pj;
    }

    /// Charge dedup-logic energy (hashing, comparison).
    pub fn charge_dedup_pj(&mut self, pj: u64) {
        self.energy.dedup_pj += pj;
    }

    /// Total reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of lines currently backed by storage.
    pub fn lines_in_use(&self) -> usize {
        self.store.len()
    }

    /// Bank set (for utilization reporting).
    pub fn banks(&self) -> &BankSet {
        &self.banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn device() -> NvmDevice {
        NvmDevice::new(NvmConfig::small()).unwrap()
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let mut d = device();
        let (data, acc) = d.read_line(LineAddr::new(0), 0).unwrap();
        assert!(data.iter().all(|&b| b == 0));
        assert_eq!(acc.bits_flipped, 0);
        assert_eq!(acc.slot.finish_ns, 75);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = device();
        let line: Vec<u8> = (0..256).map(|i| i as u8).collect();
        d.write_line(LineAddr::new(9), &line, 0).unwrap();
        let (data, _) = d.read_line(LineAddr::new(9), 1_000).unwrap();
        assert_eq!(data, line);
    }

    #[test]
    fn write_counts_flips_against_current_content() {
        let mut d = device();
        let a = vec![0xFFu8; 256];
        let w1 = d.write_line(LineAddr::new(1), &a, 0).unwrap();
        assert_eq!(w1.bits_flipped, 2048); // from all-zeros

        let w2 = d.write_line(LineAddr::new(1), &a, 400).unwrap();
        assert_eq!(w2.bits_flipped, 0); // silent write

        let mut b = a.clone();
        b[0] = 0xFE;
        let w3 = d.write_line(LineAddr::new(1), &b, 800).unwrap();
        assert_eq!(w3.bits_flipped, 1);
    }

    #[test]
    fn same_bank_accesses_queue() {
        let mut d = device();
        let banks = d.config().banks as u64;
        let line = vec![1u8; 256];
        let w = d.write_line(LineAddr::new(0), &line, 0).unwrap();
        assert_eq!(w.slot.wait_ns, 0);
        // Same bank: line index 0 and index `banks` collide.
        let w2 = d.write_line(LineAddr::new(banks), &line, 0).unwrap();
        assert_eq!(w2.slot.wait_ns, 300);
        // Different bank: no wait.
        let w3 = d.write_line(LineAddr::new(1), &line, 0).unwrap();
        assert_eq!(w3.slot.wait_ns, 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = device();
        let too_far = LineAddr::new(d.config().num_lines());
        assert!(matches!(
            d.read_line(too_far, 0),
            Err(NvmError::AddressOutOfRange { .. })
        ));
        let line = vec![0u8; 256];
        assert!(d.write_line(too_far, &line, 0).is_err());
    }

    #[test]
    fn wrong_length_rejected() {
        let mut d = device();
        let err = d.write_line(LineAddr::new(0), &[0u8; 64], 0).unwrap_err();
        assert!(matches!(
            err,
            NvmError::WrongLineSize {
                got: 64,
                expected: 256
            }
        ));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn energy_and_wear_accumulate() {
        let mut d = device();
        let line = vec![0xAAu8; 256];
        d.write_line(LineAddr::new(0), &line, 0).unwrap();
        d.read_line(LineAddr::new(0), 500).unwrap();
        assert!(d.energy().nvm_write_pj > 0);
        assert!(d.energy().nvm_read_pj > 0);
        assert_eq!(d.wear().total_line_writes(), 1);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.lines_in_use(), 1);
    }

    #[test]
    fn external_energy_charges() {
        let mut d = device();
        d.charge_aes_pj(100);
        d.charge_dedup_pj(7);
        assert_eq!(d.energy().aes_pj, 100);
        assert_eq!(d.energy().dedup_pj, 7);
    }

    proptest! {
        #[test]
        fn roundtrip_any_content(content in proptest::collection::vec(any::<u8>(), 256),
                                 idx in 0u64..4096) {
            let mut d = device();
            d.write_line(LineAddr::new(idx), &content, 0).unwrap();
            let (data, _) = d.read_line(LineAddr::new(idx), 1_000).unwrap();
            prop_assert_eq!(data, content);
        }

        #[test]
        fn rewriting_same_data_flips_nothing(content in proptest::collection::vec(any::<u8>(), 256)) {
            let mut d = device();
            d.write_line(LineAddr::new(5), &content, 0).unwrap();
            let w = d.write_line(LineAddr::new(5), &content, 1_000).unwrap();
            prop_assert_eq!(w.bits_flipped, 0);
        }
    }
}
