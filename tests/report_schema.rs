//! Acceptance test for the JSON report schema: a real simulation's
//! [`RunReport`] must survive `to_json` → `to_string` → `parse` →
//! `from_json` unchanged, and the emitted object must expose the stable
//! schema downstream tooling depends on — including per-stage latency
//! percentiles for every write-pipeline stage.

use dewrite::core::{
    CmeBaseline, DeWrite, DeWriteConfig, Json, RunReport, Simulator, SystemConfig,
};
use dewrite::trace::{app_by_name, TraceGenerator};

const KEY: &[u8; 16] = b"schema test key!";
const STAGES: [&str; 7] = [
    "digest",
    "hash_probe",
    "verify_read",
    "compare",
    "encrypt",
    "array_write",
    "metadata",
];

fn run_small_sim(scheme: &str) -> RunReport {
    let mut profile = app_by_name("mcf").expect("known app");
    profile.working_set_lines = 1 << 10;
    profile.content_pool_size = 128;

    let mut gen = TraceGenerator::new(profile.clone(), 256, 7);
    let warmup = gen.warmup_records();
    let mut trace = Vec::new();
    let mut writes = 0;
    while writes < 2_000 {
        let rec = gen.next().expect("infinite generator");
        writes += usize::from(rec.op.is_write());
        trace.push(rec);
    }

    let config = SystemConfig::for_lines((1 << 10) + 128 + 64);
    let sim = Simulator::new(&config);
    match scheme {
        "dewrite" => {
            let mut mem = DeWrite::new(config, DeWriteConfig::paper(), KEY);
            let r = sim.run(&mut mem, profile.name, &warmup, trace);
            r.map(|mut r| {
                r.dewrite = Some(mem.dewrite_metrics());
                r
            })
        }
        "baseline" => {
            let mut mem = CmeBaseline::new(config, KEY);
            sim.run(&mut mem, profile.name, &warmup, trace)
        }
        other => panic!("unknown scheme {other}"),
    }
    .expect("simulation succeeds")
}

#[test]
fn run_report_round_trips_through_json_text() {
    for scheme in ["dewrite", "baseline"] {
        let report = run_small_sim(scheme);
        let text = report.to_json().to_string();
        let parsed = Json::parse(&text).expect("emitted JSON parses");
        let back = RunReport::from_json(&parsed).expect("emitted JSON imports");
        assert_eq!(report, back, "{scheme} report must round-trip exactly");
    }
}

#[test]
fn schema_exposes_per_stage_percentiles() {
    let report = run_small_sim("dewrite");
    let j = report.to_json();

    assert_eq!(j.get("schema_version").and_then(Json::as_u64), Some(1));
    for key in [
        "scheme",
        "app",
        "instructions",
        "ipc",
        "write_latency",
        "read_latency",
        "write_latency_hist",
        "read_latency_hist",
        "stages",
        "write_paths",
        "base",
        "energy",
        "dewrite",
    ] {
        assert!(j.get(key).is_some(), "schema must contain {key:?}");
    }

    let stages = j.get("stages").expect("stages object");
    for name in STAGES {
        let stage = stages.get(name).unwrap_or_else(|| panic!("stage {name}"));
        for pct in ["p50_ns", "p95_ns", "p99_ns"] {
            let v = stage.get(pct).and_then(Json::as_u64);
            assert!(v.is_some(), "stage {name} must report {pct}");
        }
        let (p50, p99) = (
            stage.get("p50_ns").and_then(Json::as_u64).unwrap(),
            stage.get("p99_ns").and_then(Json::as_u64).unwrap(),
        );
        assert!(p50 <= p99, "stage {name}: p50 {p50} > p99 {p99}");
    }

    // Every write runs the digest stage in DeWrite, so the count must match
    // the measured-window write count and the histograms must agree.
    let digest_count = stages
        .get("digest")
        .and_then(|s| s.get("count"))
        .and_then(Json::as_u64)
        .expect("digest count");
    let writes = j
        .get("base")
        .and_then(|b| b.get("writes"))
        .and_then(Json::as_u64)
        .expect("base.writes");
    assert_eq!(digest_count, writes);
    assert_eq!(
        j.get("write_latency_hist")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(writes)
    );
}

#[test]
fn importer_rejects_newer_schema_versions() {
    let report = run_small_sim("baseline");
    let mut j = report.to_json();
    if let Json::Obj(fields) = &mut j {
        for (k, v) in fields.iter_mut() {
            if k == "schema_version" {
                *v = Json::Num(999.0);
            }
        }
    }
    let err = RunReport::from_json(&j).expect_err("newer version must be rejected");
    assert!(err.contains("newer than supported"), "got: {err}");
}
