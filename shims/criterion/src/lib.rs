//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: `Criterion`,
//! `bench_function`, benchmark groups with throughput annotations,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Instead of criterion's full statistical machinery, each bench is
//! measured with an adaptive wall-clock loop (warm-up, then timed batches)
//! and reported as mean ns/iteration with min/max batch means. Set
//! `BENCH_QUICK=1` to run each bench for a single short batch (used by CI
//! smoke runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per bench, unless `BENCH_QUICK` is set.
const MEASURE: Duration = Duration::from_millis(200);
/// Warm-up time per bench.
const WARMUP: Duration = Duration::from_millis(30);

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An identifier rendering as the parameter alone
    /// (`group_name/<param>`).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// An identifier with a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{param}", name.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// The timing loop handle passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing each batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let quick = std::env::var_os("BENCH_QUICK").is_some();
        let (warmup, measure) = if quick {
            (Duration::ZERO, Duration::from_millis(5))
        } else {
            (WARMUP, MEASURE)
        };

        // Warm up and estimate the per-iteration cost.
        let mut per_iter_ns = {
            let start = Instant::now();
            let mut n = 0u64;
            loop {
                black_box(f());
                n += 1;
                let elapsed = start.elapsed();
                if elapsed >= warmup && n >= 8 {
                    break (elapsed.as_nanos() / u128::from(n)).max(1);
                }
            }
        };

        // Timed batches sized to ~10ms each.
        let deadline = Instant::now() + measure;
        while Instant::now() < deadline {
            let batch = (10_000_000 / per_iter_ns).clamp(1, 1 << 20) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos();
            self.total_ns += ns;
            self.iters += batch;
            per_iter_ns = (ns / u128::from(batch)).max(1);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.iters as f64
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    group: Option<String>,
    throughput: Option<Throughput>,
}

impl Criterion {
    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let name = match &self.group {
            Some(g) => format!("{g}/{}", id.0),
            None => id.0,
        };
        let mut b = Bencher::default();
        f(&mut b);
        let mean = b.mean_ns();
        let mut line = format!("{name:<40} {mean:>12.1} ns/iter ({} iters)", b.iters);
        if let Some(tp) = self.throughput {
            let (units, label) = match tp {
                Throughput::Bytes(n) => (n, "MiB/s"),
                Throughput::Elements(n) => (n, "Melem/s"),
            };
            if mean > 0.0 {
                let rate = units as f64 / mean * 1e9 / (1 << 20) as f64;
                line.push_str(&format!("  {rate:>10.1} {label}"));
            }
        }
        println!("{line}");
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.criterion.throughput = Some(tp);
        self
    }

    /// Benchmark `f` under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.criterion.group = Some(self.name.clone());
        self.criterion.run(id.into(), f);
        self.criterion.group = None;
        self
    }

    /// Benchmark `f` over `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.criterion.throughput = None;
        self.criterion.group = None;
    }
}

/// Collect bench functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_sane_mean() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut b = Bencher::default();
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iters > 0);
        assert!(b.mean_ns() > 0.0);
    }

    #[test]
    fn group_names_prefix() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(256));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &v| {
            b.iter(|| v + 1);
        });
        group.finish();
    }
}
