//! The served engine: a std-only, nonblocking, thread-per-core event
//! loop between TCP sockets and [`EngineService`].
//!
//! # Event-loop model
//!
//! `threads` **lanes** each own a disjoint set of connections and run the
//! same sweep: retry back-pressured submits, drain the engine's
//! completion queue for this lane, read sockets and decode frames, flush
//! write buffers, then park on the engine's spin→yield→sleep
//! [`Backoff`] when a sweep makes no progress. Lane 0 additionally owns
//! the (nonblocking) listener and deals new connections round-robin to
//! the lanes' inboxes. There are no poll/epoll syscalls and no async
//! runtime — the sweep is a straight scan, which at thousands of
//! connections amortizes exactly like the engine workers' batch drain.
//!
//! # Ordering and back-pressure
//!
//! Responses stream back to each connection strictly in request order:
//! every decoded request takes the connection's next `conn_seq`, and
//! out-of-order completions park in a per-connection reorder map until
//! their turn. When a shard queue is full, [`EngineService::try_submit`]
//! hands the request back; the lane parks it on the connection's pending
//! queue and **stops reading that socket** (its buffered frames stay
//! undecoded), so TCP flow control propagates the stall to the client —
//! back-pressure end to end, no unbounded buffering anywhere.
//!
//! # Engine lifecycle
//!
//! The engine is created lazily from the first [`Hello`]'s geometry
//! (the server's CLI fixes the shard count; the handshake brings line
//! size, line count, and expected writes). `Reset` tears it down
//! (drain + flush + checkpoint) so one server can host a whole
//! connection-count sweep; each generation persists under its own
//! `gen-<n>/` subdirectory. `Shutdown` drains in-flight work, flushes
//! WAL epochs, checkpoints every shard, and returns the merged
//! [`EngineRun`] through [`NetServer::join`]. [`ServerHandle::abort`]
//! kills the engine *without* flushing — the crash-recovery tests' kill
//! switch.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_queue::ArrayQueue;
use dewrite_engine::{
    Backoff, Completion, CompletionBody, DigestMode, EngineConfig, EngineRun, EngineService,
    Replacement, ServiceOp, ServiceRequest, CONTROL_SEQ,
};
use dewrite_nvm::LineAddr;
use dewrite_trace::shard_of_line;

use crate::proto::{
    self, ErrorCode, FrameEvent, Hello, Request, Response, MAX_LINE_BYTES, NET_VERSION,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7411` (port 0 picks a free one).
    pub addr: String,
    /// Controller shards the engine will run with.
    pub shards: usize,
    /// Event-loop lanes; 0 picks half the hardware threads (min 1).
    pub threads: usize,
    /// Per-connection in-flight window the server enforces (frames
    /// decoded but not yet answered).
    pub window: u32,
    /// Per-shard engine queue depth.
    pub queue_depth: usize,
    /// Engine worker batch size.
    pub batch: usize,
    /// Root for crash-consistent metadata persistence; each engine
    /// generation logs under `gen-<n>/shard-<id>/`.
    pub persist_dir: Option<PathBuf>,
    /// Data writes per WAL epoch record.
    pub persist_epoch: u32,
    /// `fsync` the WAL on every epoch flush.
    pub persist_sync: bool,
    /// Upper bound a `Hello` may ask for in workload lines.
    pub max_lines: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7411".into(),
            shards: 4,
            threads: 0,
            window: 64,
            queue_depth: 1024,
            batch: 64,
            persist_dir: None,
            persist_epoch: 64,
            persist_sync: false,
            max_lines: 1 << 28,
        }
    }
}

/// What a run of the server produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The merged engine run from the final graceful teardown (`None`
    /// when no engine was ever created, or after a hard abort).
    pub run: Option<EngineRun>,
    /// Whether the server died by [`ServerHandle::abort`].
    pub aborted: bool,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Data operations completed over the server's lifetime.
    pub ops: u64,
    /// Typed error responses sent.
    pub errors: u64,
}

/// The session geometry an engine generation was built from.
#[derive(Debug, Clone)]
struct Geometry {
    line_size: u32,
    lines: u64,
    expected_writes: u64,
    cache_policy: Replacement,
    digest_mode: DigestMode,
    app: String,
    slots_per_shard: u64,
}

/// State shared by every lane.
#[derive(Debug)]
struct Shared {
    opts: ServeOptions,
    lanes: usize,
    /// The engine, once the first `Hello` arrives. Lanes take transient
    /// `Arc` clones (scoped to one sweep) so teardown can reclaim sole
    /// ownership with a bounded spin.
    service: RwLock<Option<Arc<EngineService>>>,
    geometry: Mutex<Option<Geometry>>,
    /// Engine generation; bumped by `Reset`. Stale sessions (handshaken
    /// against a previous generation) are refused.
    generation: AtomicU64,
    /// Requests submitted to the engine and not yet completed.
    in_flight: AtomicU64,
    /// Requests parked on connection pending queues (back-pressure).
    pending_submits: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    abort: AtomicBool,
    accepted: AtomicU64,
    active: AtomicU64,
    ops: AtomicU64,
    errors: AtomicU64,
    final_run: Mutex<Option<EngineRun>>,
    start: Instant,
}

/// Connections a lane can hold queued in its hand-off inbox.
const INBOX_CAPACITY: usize = 1024;
/// Socket read chunk.
const READ_CHUNK: usize = 16 * 1024;
/// Stop reading a socket once this much is buffered undecoded (the
/// window gate usually stalls reads long before).
const MAX_RBUF: usize = 4 * (1 << 20);
/// How long lanes keep flushing responses after shutdown.
const LINGER: Duration = Duration::from_secs(5);

/// Per-session state cached on the connection after its `Hello`.
#[derive(Debug, Clone, Copy)]
struct Session {
    generation: u64,
    line_size: u32,
    lines: u64,
}

/// A control broadcast being folded back together (one engine
/// completion per shard).
#[derive(Debug)]
struct Aggregate {
    kind: AggKind,
    remaining: usize,
    lines: u64,
    reports: Vec<Option<String>>,
    err: Option<(ErrorCode, String)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggKind {
    Scrub,
    Flush,
    Report,
}

/// One client connection owned by a lane.
#[derive(Debug)]
struct Conn {
    id: u64,
    stream: TcpStream,
    /// The socket is alive (readable/writable).
    open: bool,
    /// A framing violation happened: close once the error flushes.
    fatal: bool,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Next `conn_seq` to assign to a decoded request.
    next_assign: u64,
    /// Next `conn_seq` whose response moves to the write buffer.
    next_emit: u64,
    /// Encoded responses waiting for their in-order turn.
    parked: BTreeMap<u64, Vec<u8>>,
    /// Requests handed back by a full shard queue, retried each sweep.
    pending: VecDeque<ServiceRequest>,
    /// Control broadcasts in flight, keyed by `conn_seq`.
    aggregates: HashMap<u64, Aggregate>,
    /// Engine submissions not yet completed.
    live: u64,
    session: Option<Session>,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> Conn {
        Conn {
            id,
            stream,
            open: true,
            fatal: false,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_assign: 0,
            next_emit: 0,
            parked: BTreeMap::new(),
            pending: VecDeque::new(),
            aggregates: HashMap::new(),
            live: 0,
            session: None,
        }
    }

    /// Requests decoded but not yet answered into the write buffer.
    fn unanswered(&self) -> u64 {
        self.next_assign - self.next_emit
    }

    /// Nothing left that anyone is waiting on.
    fn drained(&self) -> bool {
        self.live == 0 && self.pending.is_empty()
    }
}

/// Park `resp` at `conn_seq` and move every now-ready response to the
/// write buffer.
fn push_response(shared: &Shared, conn: &mut Conn, conn_seq: u64, resp: &Response) {
    if matches!(resp, Response::Error { .. }) {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    if !conn.open {
        // Still advance the in-order cursor so the connection can drain.
        conn.parked.insert(conn_seq, Vec::new());
    } else {
        conn.parked.insert(conn_seq, proto::encode_response(resp));
    }
    while let Some(frame) = conn.parked.remove(&conn.next_emit) {
        conn.wbuf.extend_from_slice(&frame);
        conn.next_emit += 1;
    }
}

fn err(code: ErrorCode, detail: impl Into<String>) -> Response {
    Response::Error {
        code,
        detail: detail.into(),
    }
}

/// Take the engine out of the shared slot and reclaim sole ownership.
/// Converges because every other holder is a sweep-scoped clone.
fn take_service(shared: &Shared) -> Option<EngineService> {
    let taken = shared.service.write().expect("service lock").take()?;
    let mut arc = taken;
    let mut parker = Backoff::new();
    loop {
        match Arc::try_unwrap(arc) {
            Ok(svc) => return Some(svc),
            Err(back) => {
                arc = back;
                parker.wait();
            }
        }
    }
}

/// A `Reset` decoded this sweep; torn down after the lane drops its
/// transient service clone.
#[derive(Debug)]
struct DeferredReset {
    conn: u64,
    conn_seq: u64,
}

struct Lane {
    lane: usize,
    shared: Arc<Shared>,
    inbox: Arc<ArrayQueue<TcpStream>>,
    conns: Vec<Option<Conn>>,
    by_id: HashMap<u64, usize>,
    deferred: Vec<DeferredReset>,
    progress: bool,
}

impl Lane {
    fn new(lane: usize, shared: Arc<Shared>, inbox: Arc<ArrayQueue<TcpStream>>) -> Lane {
        Lane {
            lane,
            shared,
            inbox,
            conns: Vec::new(),
            by_id: HashMap::new(),
            deferred: Vec::new(),
            progress: false,
        }
    }

    /// A sweep-scoped engine handle (drop before sweep end).
    fn service(&self) -> Option<Arc<EngineService>> {
        self.shared
            .service
            .read()
            .expect("service lock")
            .as_ref()
            .map(Arc::clone)
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = self.shared.accepted.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared.active.fetch_add(1, Ordering::Relaxed);
        let conn = Conn::new(id, stream);
        let slot = self
            .conns
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
        self.conns[slot] = Some(conn);
        self.by_id.insert(id, slot);
        self.progress = true;
    }

    /// Submit to the engine or park on the connection's pending queue.
    /// `in_flight` is raised *before* the push so the drain check never
    /// observes a request that is in a queue but not yet counted.
    fn submit(&mut self, conn: &mut Conn, svc: &EngineService, req: ServiceRequest) {
        conn.live += 1;
        self.shared.in_flight.fetch_add(1, Ordering::Release);
        if let Err(back) = svc.try_submit(req) {
            conn.live -= 1;
            self.shared.in_flight.fetch_sub(1, Ordering::Release);
            self.shared.pending_submits.fetch_add(1, Ordering::Release);
            conn.pending.push_back(back);
        }
    }

    fn retry_pending(&mut self, conn: &mut Conn) {
        if conn.pending.is_empty() {
            return;
        }
        let Some(svc) = self.service() else { return };
        while let Some(req) = conn.pending.pop_front() {
            self.shared.in_flight.fetch_add(1, Ordering::Release);
            match svc.try_submit(req) {
                Ok(()) => {
                    self.shared.pending_submits.fetch_sub(1, Ordering::Release);
                    conn.live += 1;
                    self.progress = true;
                }
                Err(back) => {
                    self.shared.in_flight.fetch_sub(1, Ordering::Release);
                    conn.pending.push_front(back);
                    break;
                }
            }
        }
    }

    fn on_hello(&mut self, conn: &mut Conn, conn_seq: u64, h: Hello) {
        if self.shared.draining.load(Ordering::Acquire) {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(ErrorCode::NotReady, "server is draining"),
            );
            return;
        }
        if h.line_size == 0
            || h.line_size as usize > MAX_LINE_BYTES
            || h.lines == 0
            || h.lines > self.shared.opts.max_lines
        {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(
                    ErrorCode::BadPayload,
                    format!(
                        "geometry out of range: line_size {} lines {} (max {})",
                        h.line_size, h.lines, self.shared.opts.max_lines
                    ),
                ),
            );
            return;
        }
        let Some(cache_policy) = Replacement::from_wire(h.cache_policy) else {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(
                    ErrorCode::BadPayload,
                    format!("unknown cache policy {}", h.cache_policy),
                ),
            );
            return;
        };
        let Some(digest_mode) = DigestMode::from_wire(h.digest_mode) else {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(
                    ErrorCode::BadPayload,
                    format!("unknown digest mode {}", h.digest_mode),
                ),
            );
            return;
        };
        let mut geo = self.shared.geometry.lock().expect("geometry lock");
        let resp = match geo.as_ref() {
            Some(g) => {
                if g.line_size == h.line_size
                    && g.lines == h.lines
                    && g.expected_writes == h.expected_writes
                    && g.cache_policy == cache_policy
                    && g.digest_mode == digest_mode
                    && g.app == h.app
                {
                    Ok(g.slots_per_shard)
                } else {
                    Err(err(
                        ErrorCode::ConfigMismatch,
                        format!(
                            "engine serves app '{}' ({} lines of {}B, {} expected writes, \
                             {} cache, {} digest); reset before changing the workload",
                            g.app,
                            g.lines,
                            g.line_size,
                            g.expected_writes,
                            g.cache_policy,
                            g.digest_mode
                        ),
                    ))
                }
            }
            None => {
                let opts = &self.shared.opts;
                let mut config = EngineConfig::for_workload(
                    opts.shards,
                    h.line_size as usize,
                    h.lines,
                    h.expected_writes,
                );
                config.queue_depth = opts.queue_depth;
                config.batch = opts.batch;
                config.cache_policy = cache_policy;
                config.digest_mode = digest_mode;
                config.persist_epoch = opts.persist_epoch;
                config.persist_sync = opts.persist_sync;
                config.persist_dir = opts.persist_dir.as_ref().map(|root| {
                    root.join(format!(
                        "gen-{:04}",
                        self.shared.generation.load(Ordering::Acquire)
                    ))
                });
                let lane_capacity = opts.queue_depth.max(4096);
                let svc = EngineService::start(&config, &h.app, self.shared.lanes, lane_capacity);
                *self.shared.service.write().expect("service lock") = Some(Arc::new(svc));
                *geo = Some(Geometry {
                    line_size: h.line_size,
                    lines: h.lines,
                    expected_writes: h.expected_writes,
                    cache_policy,
                    digest_mode,
                    app: h.app.clone(),
                    slots_per_shard: config.slots_per_shard,
                });
                Ok(config.slots_per_shard)
            }
        };
        drop(geo);
        match resp {
            Ok(slots_per_shard) => {
                conn.session = Some(Session {
                    generation: self.shared.generation.load(Ordering::Acquire),
                    line_size: h.line_size,
                    lines: h.lines,
                });
                push_response(
                    &self.shared,
                    conn,
                    conn_seq,
                    &Response::HelloOk {
                        version: NET_VERSION,
                        shards: self.shared.opts.shards as u32,
                        window: self.shared.opts.window,
                        line_size: h.line_size,
                        lines: h.lines,
                        slots_per_shard,
                    },
                );
            }
            Err(e) => push_response(&self.shared, conn, conn_seq, &e),
        }
    }

    fn on_data(&mut self, conn: &mut Conn, conn_seq: u64, req: Request) {
        let Some(session) = conn.session else {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(
                    ErrorCode::NotReady,
                    "handshake first: no Hello on this connection",
                ),
            );
            return;
        };
        if session.generation != self.shared.generation.load(Ordering::Acquire) {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(
                    ErrorCode::NotReady,
                    "session predates a reset; handshake again",
                ),
            );
            return;
        }
        let Some(svc) = self.service() else {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(ErrorCode::NotReady, "no engine; handshake again"),
            );
            return;
        };
        let (addr, shard_seq, op) = match req {
            Request::Write {
                addr,
                shard_seq,
                gap,
                data,
            } => {
                if data.len() != session.line_size as usize {
                    push_response(
                        &self.shared,
                        conn,
                        conn_seq,
                        &err(
                            ErrorCode::BadPayload,
                            format!(
                                "write of {} bytes against a {}-byte line size",
                                data.len(),
                                session.line_size
                            ),
                        ),
                    );
                    return;
                }
                (
                    addr,
                    shard_seq,
                    ServiceOp::Write {
                        addr: LineAddr::new(addr),
                        data,
                        gap,
                    },
                )
            }
            Request::Read {
                addr,
                shard_seq,
                gap,
            } => (
                addr,
                shard_seq,
                ServiceOp::Read {
                    addr: LineAddr::new(addr),
                    gap,
                },
            ),
            _ => unreachable!("on_data only sees Write/Read"),
        };
        if addr >= session.lines {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(
                    ErrorCode::BadPayload,
                    format!("address {addr} outside the {}-line space", session.lines),
                ),
            );
            return;
        }
        if shard_seq == CONTROL_SEQ {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(
                    ErrorCode::BadPayload,
                    "shard_seq reserves u64::MAX for control",
                ),
            );
            return;
        }
        let request = ServiceRequest {
            shard: shard_of_line(LineAddr::new(addr), svc.shards()),
            seq: shard_seq,
            lane: self.lane,
            conn: conn.id,
            conn_seq,
            issued_ns: svc.elapsed_ns(),
            op,
        };
        self.submit(conn, &svc, request);
    }

    fn on_control(&mut self, conn: &mut Conn, conn_seq: u64, kind: AggKind) {
        let Some(svc) = self.service() else {
            push_response(
                &self.shared,
                conn,
                conn_seq,
                &err(ErrorCode::NotReady, "no engine; handshake first"),
            );
            return;
        };
        let shards = svc.shards();
        conn.aggregates.insert(
            conn_seq,
            Aggregate {
                kind,
                remaining: shards,
                lines: 0,
                reports: vec![None; shards],
                err: None,
            },
        );
        let op = match kind {
            AggKind::Scrub => ServiceOp::Scrub,
            AggKind::Flush => ServiceOp::Flush,
            AggKind::Report => ServiceOp::Report,
        };
        for shard in 0..shards {
            let request = ServiceRequest {
                shard,
                seq: CONTROL_SEQ,
                lane: self.lane,
                conn: conn.id,
                conn_seq,
                issued_ns: svc.elapsed_ns(),
                op: op.clone(),
            };
            self.submit(conn, &svc, request);
        }
    }

    fn on_stats(&mut self, conn: &mut Conn, conn_seq: u64) {
        let shards = if self.service().is_some() {
            self.shared.opts.shards as u32
        } else {
            0
        };
        let resp = Response::StatsOk {
            shards,
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            active: self.shared.active.load(Ordering::Relaxed),
            ops: self.shared.ops.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            uptime_ns: self.shared.start.elapsed().as_nanos() as u64,
        };
        push_response(&self.shared, conn, conn_seq, &resp);
    }

    fn handle_request(&mut self, conn: &mut Conn, req: Request) {
        let conn_seq = conn.next_assign;
        conn.next_assign += 1;
        match req {
            Request::Hello(h) => self.on_hello(conn, conn_seq, h),
            Request::Write { .. } | Request::Read { .. } => self.on_data(conn, conn_seq, req),
            Request::Scrub => self.on_control(conn, conn_seq, AggKind::Scrub),
            Request::Flush => self.on_control(conn, conn_seq, AggKind::Flush),
            Request::Report => self.on_control(conn, conn_seq, AggKind::Report),
            Request::Stats => self.on_stats(conn, conn_seq),
            Request::Reset => self.deferred.push(DeferredReset {
                conn: conn.id,
                conn_seq,
            }),
            Request::Shutdown => {
                push_response(&self.shared, conn, conn_seq, &Response::ShutdownOk);
                self.shared.draining.store(true, Ordering::Release);
            }
        }
    }

    /// Read the socket and decode frames up to the window gate.
    fn read_and_decode(&mut self, conn: &mut Conn) {
        let mut tmp = [0u8; READ_CHUNK];
        while conn.open && conn.rbuf.len() < MAX_RBUF {
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    conn.open = false;
                    self.progress = true;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&tmp[..n]);
                    self.progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.open = false;
                }
            }
        }
        let window = u64::from(self.shared.opts.window);
        let mut off = 0usize;
        while conn.open && !conn.fatal {
            if conn.unanswered() >= window || !conn.pending.is_empty() {
                break;
            }
            // Once draining, no new work enters the engine — `in_flight`
            // only falls, so the teardown check can't be outrun.
            if self.shared.draining.load(Ordering::Acquire) {
                break;
            }
            let step = match proto::next_frame(&conn.rbuf[off..]) {
                Ok(FrameEvent::Incomplete) => None,
                Ok(FrameEvent::Frame { payload, consumed }) => {
                    Some((proto::decode_request(payload), consumed))
                }
                Err(fe) => {
                    // The stream can't be trusted past this point: send
                    // one error outside the conn_seq order and close.
                    conn.wbuf.extend_from_slice(&proto::encode_response(&err(
                        ErrorCode::BadFrame,
                        fe.to_string(),
                    )));
                    self.shared.errors.fetch_add(1, Ordering::Relaxed);
                    conn.fatal = true;
                    None
                }
            };
            let Some((decoded, consumed)) = step else {
                break;
            };
            off += consumed;
            self.progress = true;
            match decoded {
                Ok(req) => self.handle_request(conn, req),
                Err(msg) => {
                    let code = if msg.contains("unknown request tag") {
                        ErrorCode::UnknownOp
                    } else {
                        ErrorCode::BadPayload
                    };
                    let conn_seq = conn.next_assign;
                    conn.next_assign += 1;
                    push_response(&self.shared, conn, conn_seq, &err(code, msg));
                }
            }
        }
        conn.rbuf.drain(..off);
    }

    fn flush(&mut self, conn: &mut Conn) {
        while conn.open && conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => conn.open = false,
                Ok(n) => {
                    conn.wpos += n;
                    self.progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => conn.open = false,
            }
        }
        if conn.wpos == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.fatal {
                conn.open = false;
            }
        }
    }

    fn on_completion(&mut self, c: Completion) {
        self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        let Some(&slot) = self.by_id.get(&c.conn) else {
            return;
        };
        let Some(mut conn) = self.conns[slot].take() else {
            return;
        };
        conn.live -= 1;
        self.progress = true;
        match c.body {
            CompletionBody::Write { eliminated, sim_ns } => {
                self.shared.ops.fetch_add(1, Ordering::Relaxed);
                push_response(
                    &self.shared,
                    &mut conn,
                    c.conn_seq,
                    &Response::WriteOk { eliminated, sim_ns },
                );
            }
            CompletionBody::Read { sim_ns } => {
                self.shared.ops.fetch_add(1, Ordering::Relaxed);
                push_response(
                    &self.shared,
                    &mut conn,
                    c.conn_seq,
                    &Response::ReadOk { sim_ns },
                );
            }
            CompletionBody::Rejected(msg) => {
                push_response(
                    &self.shared,
                    &mut conn,
                    c.conn_seq,
                    &err(ErrorCode::Overloaded, msg),
                );
            }
            CompletionBody::Scrub(res) => {
                if let Some(agg) = conn.aggregates.get_mut(&c.conn_seq) {
                    match res {
                        Ok(n) => agg.lines += n,
                        Err(e) => {
                            agg.err =
                                Some((ErrorCode::ScrubFailed, format!("shard {}: {e}", c.shard)))
                        }
                    }
                    agg.remaining -= 1;
                }
                self.finish_aggregate(&mut conn, c.conn_seq);
            }
            CompletionBody::Flush(res) => {
                if let Some(agg) = conn.aggregates.get_mut(&c.conn_seq) {
                    if let Err(e) = res {
                        agg.err =
                            Some((ErrorCode::Internal, format!("shard {} flush: {e}", c.shard)));
                    }
                    agg.remaining -= 1;
                }
                self.finish_aggregate(&mut conn, c.conn_seq);
            }
            CompletionBody::Report(json) => {
                if let Some(agg) = conn.aggregates.get_mut(&c.conn_seq) {
                    agg.reports[c.shard] = Some(json);
                    agg.remaining -= 1;
                }
                self.finish_aggregate(&mut conn, c.conn_seq);
            }
        }
        self.conns[slot] = Some(conn);
    }

    fn finish_aggregate(&mut self, conn: &mut Conn, conn_seq: u64) {
        let done = conn
            .aggregates
            .get(&conn_seq)
            .is_some_and(|a| a.remaining == 0);
        if !done {
            return;
        }
        let agg = conn.aggregates.remove(&conn_seq).expect("checked above");
        let resp = if let Some((code, detail)) = agg.err {
            err(code, detail)
        } else {
            match agg.kind {
                AggKind::Scrub => Response::ScrubOk { lines: agg.lines },
                AggKind::Flush => Response::FlushOk,
                AggKind::Report => {
                    let parts: Vec<String> = agg
                        .reports
                        .into_iter()
                        .map(|r| r.expect("all shards reported"))
                        .collect();
                    Response::ReportOk {
                        json: format!("[{}]", parts.join(",")),
                    }
                }
            }
        };
        push_response(&self.shared, conn, conn_seq, &resp);
    }

    /// `Reset`s decoded this sweep, torn down after every transient
    /// service clone on this lane is gone.
    fn run_deferred(&mut self) {
        if self.deferred.is_empty() {
            return;
        }
        for d in std::mem::take(&mut self.deferred) {
            let resp = if self.shared.in_flight.load(Ordering::Acquire) != 0
                || self.shared.pending_submits.load(Ordering::Acquire) != 0
            {
                err(
                    ErrorCode::NotReady,
                    "operations in flight; quiesce before reset",
                )
            } else {
                if let Some(svc) = take_service(&self.shared) {
                    // Graceful teardown: flush + checkpoint; the run
                    // itself is discarded (the client collected its
                    // reports before resetting).
                    let _ = svc.shutdown();
                }
                *self.shared.geometry.lock().expect("geometry lock") = None;
                self.shared.generation.fetch_add(1, Ordering::Release);
                Response::ResetOk
            };
            if let Some(&slot) = self.by_id.get(&d.conn) {
                if let Some(mut conn) = self.conns[slot].take() {
                    push_response(&self.shared, &mut conn, d.conn_seq, &resp);
                    self.conns[slot] = Some(conn);
                }
            }
            self.progress = true;
        }
    }

    /// Drop connections that are closed and fully drained.
    fn reap(&mut self) {
        for slot in 0..self.conns.len() {
            let remove = match &self.conns[slot] {
                Some(c) => !c.open && c.drained(),
                None => false,
            };
            if remove {
                let conn = self.conns[slot].take().expect("checked above");
                self.by_id.remove(&conn.id);
                self.shared.active.fetch_sub(1, Ordering::Relaxed);
                // Pending queue is empty (drained); nothing to uncount.
                self.progress = true;
            }
        }
    }

    fn sweep_conns(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            self.retry_pending(&mut conn);
            if conn.open && !conn.fatal {
                self.read_and_decode(&mut conn);
            }
            self.flush(&mut conn);
            self.conns[slot] = Some(conn);
        }
    }

    /// Any response bytes still owed to a live socket?
    fn unflushed(&self) -> bool {
        self.conns
            .iter()
            .flatten()
            .any(|c| c.open && (c.wpos < c.wbuf.len() || (!c.parked.is_empty() && c.live == 0)))
    }
}

fn run_lane(
    mut lane: Lane,
    listener: Option<TcpListener>,
    inboxes: Vec<Arc<ArrayQueue<TcpStream>>>,
) {
    let mut parker = Backoff::new();
    let mut deal = 0usize;
    let mut linger: Option<Instant> = None;
    loop {
        lane.progress = false;

        if lane.shared.abort.load(Ordering::Acquire) {
            if lane.lane == 0 {
                if let Some(svc) = take_service(&lane.shared) {
                    svc.abort();
                }
                lane.shared.shutdown.store(true, Ordering::Release);
            }
            return;
        }

        // Lane 0 accepts and deals connections round-robin.
        if let Some(l) = &listener {
            while !lane.shared.draining.load(Ordering::Acquire) {
                match l.accept() {
                    Ok((stream, _)) => {
                        let target = deal % inboxes.len();
                        deal += 1;
                        if inboxes[target].push(stream).is_err() {
                            // Inbox full: the lane is saturated; drop the
                            // connection (client retries).
                        }
                        lane.progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        while let Some(stream) = lane.inbox.pop() {
            lane.adopt(stream);
        }

        // Drain this lane's completions with a sweep-scoped handle.
        if let Some(svc) = lane.service() {
            while let Some(c) = svc.try_complete(lane.lane) {
                lane.on_completion(c);
            }
        }

        lane.sweep_conns();
        lane.reap();
        lane.run_deferred();

        // Graceful drain: once everything in flight has completed, lane 0
        // tears the engine down and flips the shutdown flag.
        if lane.lane == 0
            && lane.shared.draining.load(Ordering::Acquire)
            && !lane.shared.shutdown.load(Ordering::Acquire)
            && lane.shared.in_flight.load(Ordering::Acquire) == 0
            && lane.shared.pending_submits.load(Ordering::Acquire) == 0
        {
            if let Some(svc) = take_service(&lane.shared) {
                let run = svc.shutdown();
                *lane.shared.final_run.lock().expect("final run lock") = Some(run);
            }
            lane.shared.shutdown.store(true, Ordering::Release);
            lane.progress = true;
        }

        if lane.shared.shutdown.load(Ordering::Acquire) {
            let since = *linger.get_or_insert_with(Instant::now);
            if !lane.unflushed() || since.elapsed() > LINGER {
                return;
            }
        }

        if lane.progress {
            parker.reset();
        } else {
            parker.wait();
        }
    }
}

/// A handle for poking a running server from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Kill the server and its engine **without** flushing parked
    /// writes, the open WAL epoch, or a checkpoint — the crash-recovery
    /// tests' kill switch. On-disk state is whatever the epoch log had
    /// already flushed.
    pub fn abort(&self) {
        self.shared.abort.store(true, Ordering::Release);
    }

    /// Whether the server has fully shut down.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }
}

/// A running server: lanes spawned, listener live.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind the listener and spawn the event-loop lanes.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listen address.
    pub fn bind(opts: ServeOptions) -> io::Result<NetServer> {
        assert!(opts.shards > 0, "need at least one shard");
        assert!(opts.window > 0, "need a non-zero window");
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let threads = if opts.threads > 0 {
            opts.threads
        } else {
            std::thread::available_parallelism()
                .map(|p| p.get() / 2)
                .unwrap_or(1)
                .max(1)
        };
        let shared = Arc::new(Shared {
            opts,
            lanes: threads,
            service: RwLock::new(None),
            geometry: Mutex::new(None),
            generation: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            pending_submits: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            final_run: Mutex::new(None),
            start: Instant::now(),
        });
        let inboxes: Vec<Arc<ArrayQueue<TcpStream>>> = (0..threads)
            .map(|_| Arc::new(ArrayQueue::new(INBOX_CAPACITY)))
            .collect();
        let handles = (0..threads)
            .map(|i| {
                let lane = Lane::new(i, Arc::clone(&shared), Arc::clone(&inboxes[i]));
                let listener = if i == 0 {
                    Some(listener.try_clone()).transpose()
                } else {
                    Ok(None)
                };
                let inboxes = inboxes.iter().map(Arc::clone).collect::<Vec<_>>();
                let listener = listener.expect("clone listener");
                std::thread::spawn(move || run_lane(lane, listener, inboxes))
            })
            .collect();
        Ok(NetServer {
            addr,
            shared,
            handles,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for aborting from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Wait for the server to shut down (a client's `Shutdown`, or
    /// [`ServerHandle::abort`]) and collect the outcome.
    ///
    /// # Panics
    ///
    /// Panics if a lane thread panicked.
    pub fn join(self) -> ServeOutcome {
        for h in self.handles {
            h.join().expect("server lane panicked");
        }
        let run = self.shared.final_run.lock().expect("final run lock").take();
        ServeOutcome {
            run,
            aborted: self.shared.abort.load(Ordering::Acquire),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            ops: self.shared.ops.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
        }
    }
}
