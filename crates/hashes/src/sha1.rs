//! SHA-1 (FIPS 180-1), the fingerprint of traditional storage deduplication.
//!
//! SHA-1 is cryptographically broken for collision resistance, but that is
//! irrelevant here: the paper uses it purely as the representative
//! *expensive* fingerprint (321 ns in hardware) against which CRC-32 + byte
//! compare is contrasted.

use crate::traits::{HashAlgorithm, LineHasher};

/// One-shot SHA-1 digest of `data` (20 bytes).
///
/// ```
/// use dewrite_hashes::sha1_digest;
/// let d = sha1_digest(b"abc");
/// assert_eq!(d[0], 0xA9);
/// ```
pub fn sha1_digest(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];

    // Message padding: 0x80, zeros, then the 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (t, word) in block.chunks_exact(4).enumerate() {
            w[t] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-1 hasher with the Table I(a) cost model (321 ns, 160-bit digest).
///
/// ```
/// use dewrite_hashes::{LineHasher, Sha1};
/// let h = Sha1::new();
/// assert_eq!(h.cost().latency_ns, 321);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sha1;

impl Sha1 {
    /// Create a SHA-1 hasher.
    pub fn new() -> Self {
        Sha1
    }

    /// Compute the full 160-bit digest of `data`.
    pub fn full_digest(&self, data: &[u8]) -> [u8; 20] {
        sha1_digest(data)
    }
}

impl LineHasher for Sha1 {
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Sha1
    }

    fn digest(&self, data: &[u8]) -> u64 {
        let d = sha1_digest(data);
        u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&sha1_digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1_digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&sha1_digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1_digest(&msg)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn exact_block_boundary_lengths() {
        // Padding edge cases: 55, 56, 63, 64, 65 bytes.
        for len in [55usize, 56, 63, 64, 65] {
            let msg = vec![0x5Au8; len];
            let d1 = sha1_digest(&msg);
            let d2 = sha1_digest(&msg);
            assert_eq!(d1, d2, "len {len}");
        }
    }

    #[test]
    fn digest_is_leading_bits_of_full() {
        let h = Sha1::new();
        let full = h.full_digest(b"hello");
        let lead = u64::from_be_bytes(full[..8].try_into().unwrap());
        assert_eq!(h.digest(b"hello"), lead);
    }

    proptest! {
        #[test]
        fn deterministic(data in proptest::collection::vec(any::<u8>(), 0..300)) {
            prop_assert_eq!(sha1_digest(&data), sha1_digest(&data));
        }

        #[test]
        fn avalanche_on_one_bit(
            mut data in proptest::collection::vec(any::<u8>(), 1..128),
            idx in any::<usize>(),
        ) {
            let before = sha1_digest(&data);
            let i = idx % data.len();
            data[i] ^= 0x01;
            let after = sha1_digest(&data);
            let flipped: u32 = before.iter().zip(after.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            // Diffusion: expect roughly half of 160 bits to flip; accept a
            // generous window to keep the test robust.
            prop_assert!(flipped > 40 && flipped < 120, "flipped {flipped}");
        }
    }
}
