//! The verify-compare kernel: full-line equality for duplicate
//! confirmation.
//!
//! Every candidate a digest probe surfaces must be byte-compared against
//! the incoming line before the write can be declared a duplicate
//! (§III-B2) — on the host this runs once per verify read, so with dup-rich
//! workloads it sits squarely on the hot path. [`lines_equal`] compares in
//! 32-byte blocks of four `u64` lanes, XOR-combined and tested once per
//! block: on x86_64 (where SSE2 is baseline) LLVM lowers the block loop to
//! 128-bit vector compares, and on other targets it degrades gracefully to
//! scalar `u64`s. The crate stays `forbid(unsafe_code)` — no intrinsics,
//! just an autovectorization-friendly shape.
//!
//! Like the crypto and hash engines, the kernel honors the forced-portable
//! switch (`DEWRITE_PORTABLE=1`, or [`dewrite_hashes::set_portable_only`]):
//! when portable-only is set, a plain byte-at-a-time loop (the seed-era
//! shape) runs instead, so CI's determinism leg exercises both paths.
//! Equality is equality either way — the switch can never change a
//! simulated report, which is exactly why the fast path needs no oracle
//! beyond the differential tests below.

/// Whether two lines hold identical bytes.
///
/// Lines of different lengths are never equal. Dispatches to the chunked
/// kernel unless portable-only mode is forced.
#[inline]
pub fn lines_equal(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if dewrite_hashes::portable_only() {
        lines_equal_portable(a, b)
    } else {
        lines_equal_chunked(a, b)
    }
}

/// The seed-era shape: one byte per iteration, early exit on the first
/// mismatch. Kept as the forced-portable path and the benchmark baseline.
#[inline]
pub fn lines_equal_portable(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for i in 0..a.len() {
        if a[i] != b[i] {
            return false;
        }
    }
    true
}

/// Chunked compare: 32-byte blocks as four `u64` XOR lanes, one branch per
/// block; then an 8-byte tail loop; then a byte tail. A 256 B line is eight
/// block iterations and zero tail work.
#[inline]
pub fn lines_equal_chunked(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a = a;
    let mut b = b;
    while a.len() >= 32 {
        let mut diff = 0u64;
        for lane in 0..4 {
            let x = u64::from_le_bytes(a[lane * 8..lane * 8 + 8].try_into().expect("8 bytes"));
            let y = u64::from_le_bytes(b[lane * 8..lane * 8 + 8].try_into().expect("8 bytes"));
            diff |= x ^ y;
        }
        if diff != 0 {
            return false;
        }
        a = &a[32..];
        b = &b[32..];
    }
    while a.len() >= 8 {
        let x = u64::from_le_bytes(a[..8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        if x != y {
            return false;
        }
        a = &a[8..];
        b = &b[8..];
    }
    for i in 0..a.len() {
        if a[i] != b[i] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_agree(a: &[u8], b: &[u8]) {
        let expect = a == b;
        assert_eq!(lines_equal_chunked(a, b), expect, "chunked vs ==");
        assert_eq!(lines_equal_portable(a, b), expect, "portable vs ==");
        assert_eq!(lines_equal(a, b), expect, "dispatched vs ==");
    }

    #[test]
    fn empty_and_length_mismatch() {
        all_agree(&[], &[]);
        assert!(!lines_equal(&[1], &[]));
        assert!(!lines_equal(&[1, 2, 3], &[1, 2]));
        assert!(!lines_equal_chunked(&[0u8; 256], &[0u8; 255]));
    }

    #[test]
    fn odd_lengths_hit_every_tail_path() {
        for len in [1usize, 7, 8, 9, 31, 32, 33, 63, 64, 65, 255, 256, 257] {
            let a: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let mut b = a.clone();
            all_agree(&a, &b);
            if len > 0 {
                b[len - 1] ^= 0x01;
                all_agree(&a, &b);
                b[len - 1] ^= 0x01;
                b[0] ^= 0x80;
                all_agree(&a, &b);
            }
        }
    }

    proptest! {
        // Differential: chunked and portable must both agree with `==` on
        // arbitrary 256 B pairs.
        #[test]
        fn differential_arbitrary_pairs(
            a in proptest::collection::vec(any::<u8>(), 256),
            b in proptest::collection::vec(any::<u8>(), 256),
        ) {
            all_agree(&a, &b);
        }

        // Equal lines are always reported equal.
        #[test]
        fn differential_equal_lines(a in proptest::collection::vec(any::<u8>(), 256)) {
            all_agree(&a, &a.clone());
        }

        // A single flipped bit anywhere is always detected.
        #[test]
        fn differential_single_bit_diff(
            a in proptest::collection::vec(any::<u8>(), 256),
            byte in 0usize..256,
            bit in 0u8..8,
        ) {
            let mut b = a.clone();
            b[byte] ^= 1 << bit;
            prop_assert!(!lines_equal_chunked(&a, &b));
            prop_assert!(!lines_equal_portable(&a, &b));
            all_agree(&a, &b);
        }

        // The last byte is the worst case for early-exit loops: both
        // kernels must still catch it.
        #[test]
        fn differential_last_byte_diff(a in proptest::collection::vec(any::<u8>(), 256)) {
            let mut b = a.clone();
            b[255] = b[255].wrapping_add(1);
            prop_assert!(!lines_equal_chunked(&a, &b));
            prop_assert!(!lines_equal_portable(&a, &b));
        }
    }
}
