//! A small Zipf(α) sampler over a finite index range.
//!
//! Used to pick which duplicate content a write repeats: a few contents are
//! written over and over (producing the highly-referenced lines of Fig. 7)
//! while a long tail recurs rarely.

use rand::Rng;

/// Zipf-distributed sampler over `0..n` with exponent `alpha`.
///
/// Probabilities are `P(k) ∝ 1 / (k+1)^alpha`. The cumulative table is
/// precomputed, so sampling is a binary search — fine for the pool sizes
/// used here (≤ a few thousand).
///
/// ```
/// use dewrite_trace::Zipf;
/// use rand::SeedableRng;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let k = z.sample(&mut rng);
/// assert!(k < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative/NaN.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a nonempty range");
        assert!(alpha >= 0.0, "Zipf exponent must be nonnegative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the range is empty (never true; see [`Zipf::new`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn alpha_zero_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn higher_alpha_skews_to_head() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut head = 0u32;
        const N: u32 = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 5 {
                head += 1;
            }
        }
        // With α=1.5 over 100 items, the top 5 carry well over half the mass.
        assert!(head > N / 2, "head {head}");
    }

    #[test]
    fn single_outcome() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zero_range_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
