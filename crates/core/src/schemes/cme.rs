//! The traditional secure-NVM baseline: counter-mode encryption, no dedup.

use std::collections::HashMap;

use dewrite_crypto::{
    aes_line_energy_pj, CounterModeEngine, LineCounter, AES_LINE_LATENCY_NS, OTP_XOR_LATENCY_NS,
};
use dewrite_mem::Replacement;
use dewrite_nvm::{LineAddr, NvmDevice, NvmError};

use crate::config::SystemConfig;
use crate::schemes::{BaseMetrics, MetaTable, ReadResult, SecureMemory, WriteResult};
use crate::trace::{EventSink, Stage, WriteEvent, WritePath};

/// Counter-cache capacity of the baseline: the full 2 MB metadata cache
/// holding 4 B counters.
const COUNTER_CACHE_ENTRIES: usize = (2 << 20) / 4;

/// Counters prefetched per miss (one 256 B line holds 64 of them).
const COUNTER_PREFETCH: usize = 64;

/// Traditional secure NVM (§IV-A: "the counter mode encryption without
/// deduplication").
///
/// Every write bumps the line's counter, encrypts the whole line, and
/// writes it to its home location. Every read fetches the counter
/// (usually from the counter cache) and overlaps OTP generation with the
/// NVM array read.
///
/// ```
/// use dewrite_core::{CmeBaseline, SecureMemory, SystemConfig};
/// use dewrite_nvm::LineAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = CmeBaseline::new(SystemConfig::for_lines(1024), b"key material 16b");
/// let line = vec![5u8; 256];
/// let w = mem.write(LineAddr::new(0), &line, 0)?;
/// assert!(!w.eliminated); // the baseline never eliminates writes
/// let r = mem.read(LineAddr::new(0), w.total_ns)?;
/// assert_eq!(r.data, line);
/// # Ok(())
/// # }
/// ```
pub struct CmeBaseline {
    config: SystemConfig,
    device: NvmDevice,
    engine: CounterModeEngine,
    counters: HashMap<u64, LineCounter>,
    counter_table: MetaTable,
    metrics: BaseMetrics,
    sink: Option<Box<dyn EventSink>>,
    /// Scratch ciphertext buffer reused across writes (no per-write alloc).
    line_buf: Vec<u8>,
}

impl std::fmt::Debug for CmeBaseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmeBaseline")
            .field("writes", &self.metrics.writes)
            .field("reads", &self.metrics.reads)
            .finish_non_exhaustive()
    }
}

impl CmeBaseline {
    /// Build the baseline over a fresh device.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: SystemConfig, key: &[u8; 16]) -> Self {
        config.validate().expect("invalid system config");
        let device = NvmDevice::new(config.nvm.clone()).expect("validated config");
        let line_size = config.nvm.line_size;
        let counter_table = MetaTable::new(
            COUNTER_CACHE_ENTRIES,
            Replacement::Lru,
            config.meta_base(),
            config.meta_lines(),
            4,
            COUNTER_PREFETCH,
            true,
            config.meta_cache_hit_ns,
            line_size,
        );
        CmeBaseline {
            config,
            device,
            engine: CounterModeEngine::new(key),
            counters: HashMap::new(),
            counter_table,
            metrics: BaseMetrics::default(),
            sink: None,
            line_buf: Vec::new(),
        }
    }

    fn check_addr(&self, addr: LineAddr) -> Result<(), NvmError> {
        if addr.index() >= self.config.data_lines {
            Err(NvmError::AddressOutOfRange {
                addr,
                num_lines: self.config.data_lines,
            })
        } else {
            Ok(())
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Counter-cache statistics.
    pub fn counter_cache_stats(&self) -> dewrite_mem::CacheStats {
        self.counter_table.cache_stats()
    }
}

impl SecureMemory for CmeBaseline {
    fn name(&self) -> String {
        "traditional secure NVM (CME)".to_string()
    }

    fn write(&mut self, addr: LineAddr, data: &[u8], now_ns: u64) -> Result<WriteResult, NvmError> {
        self.check_addr(addr)?;
        if data.len() != self.config.nvm.line_size {
            return Err(NvmError::WrongLineSize {
                got: data.len(),
                expected: self.config.nvm.line_size,
            });
        }
        self.metrics.writes += 1;

        // Fetch + bump the counter (dirty in the counter cache).
        let ctr = self.counter_table.access(
            addr.index(),
            true,
            &mut self.device,
            now_ns,
            &mut self.metrics,
        );
        let counter = self.counters.entry(addr.index()).or_default();
        let _ = counter.increment();
        let counter = *counter;

        // Encrypt, then write.
        let enc_done = ctr.done_ns + AES_LINE_LATENCY_NS;
        self.metrics.aes_line_ops += 1;
        self.device.charge_aes_pj(aes_line_energy_pj(data.len()));
        self.line_buf.resize(data.len(), 0);
        self.engine
            .encrypt_line_into(data, addr.index(), counter, &mut self.line_buf);
        let old = self.device.peek_line(addr)?;
        let flips = crate::schemes::encoded_flips(self.config.bit_encoding, &old, &self.line_buf);
        let access = self
            .device
            .write_line_with_flips(addr, &self.line_buf, flips, enc_done)?;

        if let Some(sink) = self.sink.as_mut() {
            let mut e = WriteEvent::new(WritePath::Stored);
            e.total_ns = access.slot.finish_ns - now_ns;
            // Counter fetch + AES are one serial stage in the baseline.
            e.set_stage(Stage::Encrypt, enc_done - now_ns);
            e.set_stage(Stage::ArrayWrite, access.slot.finish_ns - enc_done);
            e.set_stage(Stage::Metadata, ctr.done_ns - now_ns);
            sink.record(&e);
        }

        Ok(WriteResult {
            critical_ns: enc_done - now_ns,
            nvm_finish_ns: Some(access.slot.finish_ns),
            eliminated: false,
            total_ns: access.slot.finish_ns - now_ns,
        })
    }

    fn read(&mut self, addr: LineAddr, now_ns: u64) -> Result<ReadResult, NvmError> {
        self.check_addr(addr)?;
        self.metrics.reads += 1;

        let ctr = self.counter_table.access(
            addr.index(),
            false,
            &mut self.device,
            now_ns,
            &mut self.metrics,
        );
        let (ciphertext, access) = self.device.read_line(addr, now_ns)?;

        match self.counters.get(&addr.index()) {
            Some(&counter) => {
                // OTP generation overlaps the array read once the counter is
                // known; the XOR is the only serial step. Pad energy is not
                // charged: the paper's energy accounting is write-dominated
                // (pads for reads are precomputed while counters sit in the
                // cache), and both schemes treat reads identically.
                let pad_done = ctr.done_ns + AES_LINE_LATENCY_NS;
                let done = access.slot.finish_ns.max(pad_done) + OTP_XOR_LATENCY_NS;
                let data = self.engine.decrypt_line(&ciphertext, addr.index(), counter);
                Ok(ReadResult {
                    data,
                    latency_ns: done - now_ns,
                })
            }
            None => {
                // Never written: fresh cells read as zeros, nothing to
                // decrypt.
                let done = access.slot.finish_ns.max(ctr.done_ns);
                Ok(ReadResult {
                    data: ciphertext,
                    latency_ns: done - now_ns,
                })
            }
        }
    }

    fn device(&self) -> &NvmDevice {
        &self.device
    }

    fn base_metrics(&self) -> BaseMetrics {
        self.metrics
    }

    fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KEY: &[u8; 16] = b"unit test key 16";

    fn mem() -> CmeBaseline {
        CmeBaseline::new(SystemConfig::for_lines(4096), KEY)
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = mem();
        let line: Vec<u8> = (0..256).map(|i| (i % 251) as u8).collect();
        let w = m.write(LineAddr::new(7), &line, 0).unwrap();
        let r = m.read(LineAddr::new(7), w.total_ns + 10).unwrap();
        assert_eq!(r.data, line);
    }

    #[test]
    fn stored_bytes_are_ciphertext() {
        let mut m = mem();
        let line = vec![0xABu8; 256];
        m.write(LineAddr::new(3), &line, 0).unwrap();
        let raw = m.device.peek_line(LineAddr::new(3)).unwrap();
        assert_ne!(raw, line, "plaintext must never reach the array");
    }

    #[test]
    fn rewrites_change_ciphertext_even_for_same_plaintext() {
        let mut m = mem();
        let line = vec![1u8; 256];
        m.write(LineAddr::new(0), &line, 0).unwrap();
        let ct1 = m.device.peek_line(LineAddr::new(0)).unwrap();
        m.write(LineAddr::new(0), &line, 1_000).unwrap();
        let ct2 = m.device.peek_line(LineAddr::new(0)).unwrap();
        assert_ne!(ct1, ct2, "counter bump must re-randomize ciphertext");
        // …and the diffusion flips ~half the bits (the paper's premise).
        let flips = dewrite_nvm::bit_flips(&ct1, &ct2);
        let ratio = flips as f64 / 2048.0;
        assert!((0.4..0.6).contains(&ratio), "flip ratio {ratio}");
    }

    #[test]
    fn write_latency_includes_serial_encryption() {
        let mut m = mem();
        let w = m.write(LineAddr::new(0), &vec![0u8; 256], 0).unwrap();
        // Counter miss (cold) + AES + 300 ns write at minimum.
        assert!(w.critical_ns >= AES_LINE_LATENCY_NS);
        assert!(w.total_ns >= w.critical_ns + 300);
        assert!(!w.eliminated);
    }

    #[test]
    fn warm_counter_read_is_fast() {
        let mut m = mem();
        let line = vec![9u8; 256];
        m.write(LineAddr::new(5), &line, 0).unwrap();
        m.read(LineAddr::new(5), 10_000).unwrap(); // warm the counter cache
        let r = m.read(LineAddr::new(5), 50_000).unwrap();
        // Counter hit: latency ≈ max(read 75, hit+pad 97) + 1.
        assert!(r.latency_ns <= 100, "latency {}", r.latency_ns);
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let mut m = mem();
        let r = m.read(LineAddr::new(100), 0).unwrap();
        assert!(r.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let mut m = mem();
        let too_far = LineAddr::new(4096); // metadata region starts here
        assert!(m.write(too_far, &vec![0u8; 256], 0).is_err());
        assert!(m.read(too_far, 0).is_err());
    }

    #[test]
    fn wrong_line_size_rejected() {
        let mut m = mem();
        assert!(matches!(
            m.write(LineAddr::new(0), &[0u8; 64], 0),
            Err(NvmError::WrongLineSize { .. })
        ));
    }

    #[test]
    fn metrics_accumulate() {
        let mut m = mem();
        let line = vec![2u8; 256];
        m.write(LineAddr::new(0), &line, 0).unwrap();
        m.write(LineAddr::new(1), &line, 500).unwrap();
        m.read(LineAddr::new(0), 1_000).unwrap();
        let b = m.base_metrics();
        assert_eq!(b.writes, 2);
        assert_eq!(b.reads, 1);
        assert_eq!(b.writes_eliminated, 0);
        assert_eq!(b.aes_line_ops, 2); // 2 encrypts (read pads are uncharged)
        assert!(b.meta_nvm_reads >= 1); // cold counter miss
    }

    #[test]
    fn event_sink_records_baseline_stages() {
        use crate::trace::{Stage, StageCollector};
        let mut m = mem();
        m.set_event_sink(Box::new(StageCollector::default()));
        m.write(LineAddr::new(0), &vec![1u8; 256], 0).unwrap();
        let mut sink = m.take_event_sink().expect("sink installed");
        let c = sink
            .as_any_mut()
            .downcast_mut::<StageCollector>()
            .expect("collector type");
        assert_eq!(c.breakdown.stored_writes, 1);
        assert_eq!(c.breakdown.duplicate_writes, 0);
        assert_eq!(c.breakdown.stage(Stage::Encrypt).count(), 1);
        assert_eq!(c.breakdown.stage(Stage::ArrayWrite).count(), 1);
        assert_eq!(
            c.breakdown.stage(Stage::Digest).count(),
            0,
            "no fingerprinting in CME"
        );
    }

    proptest! {
        #[test]
        fn roundtrip_any_content(content in proptest::collection::vec(any::<u8>(), 256),
                                 addr in 0u64..4096,
                                 rewrites in 1usize..4) {
            let mut m = mem();
            let mut t = 0u64;
            for _ in 0..rewrites {
                let w = m.write(LineAddr::new(addr), &content, t).unwrap();
                t = w.total_ns + t + 1;
            }
            let r = m.read(LineAddr::new(addr), t).unwrap();
            prop_assert_eq!(r.data, content);
        }
    }
}
