//! Reference AES-128 block cipher (FIPS-197), implemented from scratch.
//!
//! This is a straightforward table-free software implementation: S-box /
//! inverse S-box lookups, `xtime` for the MixColumns field multiplications,
//! and on-the-fly key expansion at construction. It is not constant-time and
//! is not intended for protecting real data — it exists so the simulator
//! computes *real ciphertext bytes*, which the bit-flip experiments
//! (Fig. 13) measure directly.
//!
//! Since the hot-path overhaul this is no longer the engine the simulator
//! runs on ([`crate::Aes128`] dispatches to a T-table or AES-NI backend);
//! it is retained as the *oracle* that every fast backend is differentially
//! tested against.

/// The AES S-box.
pub(crate) const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box.
pub(crate) const INV_SBOX: [u8; 256] = [
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by x (i.e. {02}) in GF(2^8) modulo x^8 + x^4 + x^3 + x + 1.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// GF(2^8) multiplication via repeated xtime.
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Expand `key` into the 11 AES-128 round keys (FIPS-197 §5.2), shared by
/// every backend so they all run the identical schedule.
pub(crate) fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            temp.rotate_left(1);
            for t in temp.iter_mut() {
                *t = SBOX[*t as usize];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for (r, rk) in round_keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    round_keys
}

/// An expanded AES-128 key schedule (11 round keys), reference
/// implementation.
///
/// ```
/// use dewrite_crypto::Aes128Reference;
/// let key = [0u8; 16];
/// let aes = Aes128Reference::new(&key);
/// let pt = [0u8; 16];
/// let ct = aes.encrypt_block(&pt);
/// assert_eq!(aes.decrypt_block(&ct), pt);
/// ```
#[derive(Clone)]
pub struct Aes128Reference {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128Reference {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128Reference")
            .field("rounds", &10u8)
            .finish()
    }
}

impl Aes128Reference {
    /// Expand `key` into the 11-round key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        Aes128Reference {
            round_keys: expand_key(key),
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    #[inline]
    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = INV_SBOX[*s as usize];
        }
    }

    /// State layout: column-major, state[r + 4c] = byte (row r, column c).
    #[inline]
    fn shift_rows(state: &mut [u8; 16]) {
        // Row 1: rotate left by 1.
        let t = state[1];
        state[1] = state[5];
        state[5] = state[9];
        state[9] = state[13];
        state[13] = t;
        // Row 2: rotate left by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: rotate left by 3 (= right by 1).
        let t = state[15];
        state[15] = state[11];
        state[11] = state[7];
        state[7] = state[3];
        state[3] = t;
    }

    #[inline]
    fn inv_shift_rows(state: &mut [u8; 16]) {
        // Row 1: rotate right by 1.
        let t = state[13];
        state[13] = state[9];
        state[9] = state[5];
        state[5] = state[1];
        state[1] = t;
        // Row 2: rotate right by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: rotate right by 3 (= left by 1).
        let t = state[3];
        state[3] = state[7];
        state[7] = state[11];
        state[11] = state[15];
        state[15] = t;
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
            col[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
            col[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
            col[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        }
    }

    #[inline]
    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
            col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
            col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
            col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
            col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
        }
    }

    /// Encrypt one 16-byte block.
    pub fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let mut state = *plaintext;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypt one 16-byte block.
    pub fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        let mut state = *ciphertext;
        Self::add_round_key(&mut state, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, //
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, //
            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, //
            0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32,
        ];
        let aes = Aes128Reference::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = (0x00..0x10u8).collect::<Vec<_>>().try_into().unwrap();
        let pt: [u8; 16] = (0..16u8)
            .map(|i| i * 0x11)
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, //
            0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a,
        ];
        let aes = Aes128Reference::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    #[test]
    fn debug_never_prints_keys() {
        let aes = Aes128Reference::new(&[0x42; 16]);
        let dbg = format!("{aes:?}");
        assert!(!dbg.contains("42"), "{dbg}");
    }

    #[test]
    fn gmul_known_products() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(0x01, 0xab), 0xab);
        assert_eq!(gmul(0x02, 0x80), 0x1b);
    }

    proptest! {
        #[test]
        fn roundtrip(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
            let aes = Aes128Reference::new(&key);
            prop_assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
        }

        #[test]
        fn diffusion_half_the_bits_flip(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>(), bit in 0usize..128) {
            let aes = Aes128Reference::new(&key);
            let c1 = aes.encrypt_block(&pt);
            let mut pt2 = pt;
            pt2[bit / 8] ^= 1 << (bit % 8);
            let c2 = aes.encrypt_block(&pt2);
            let flipped: u32 = c1.iter().zip(c2.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
            // Strong diffusion: expect ~64 of 128 bits; accept a wide window.
            prop_assert!((30..=98).contains(&flipped), "flipped {flipped}");
        }
    }
}
