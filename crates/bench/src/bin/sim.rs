//! `sim` — run any scheme on any workload with configuration overrides and
//! print the full report.
//!
//! ```text
//! sim --app mcf --scheme dewrite --writes 20000
//! sim --app lbm --scheme baseline --banks 8 --cores 4
//! sim --app vips --scheme dewrite --mode direct --no-pna --encoding fnw
//! sim --app worst-case --scheme shredder --stt
//! ```

use std::process::ExitCode;

use dewrite_bench::runner::{Scale, KEY};
use dewrite_core::{
    BitEncoding, CmeBaseline, DeWrite, DeWriteConfig, DigestMode, Json, MetadataPersistence,
    Replacement, RunReport, SilentShredder, Simulator, SystemConfig, TraditionalDedup, WriteMode,
};
use dewrite_hashes::HashAlgorithm;
use dewrite_nvm::Timing;
use dewrite_trace::{app_by_name, worst_case, TraceGenerator};

struct Options {
    app: String,
    scheme: String,
    writes: usize,
    seed: u64,
    mode: WriteMode,
    pna: bool,
    banks: Option<usize>,
    cores: Option<usize>,
    encoding: BitEncoding,
    persistence: MetadataPersistence,
    stt: bool,
    cache_policy: Replacement,
    digest_mode: DigestMode,
    json: bool,
    folded: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            app: "mcf".into(),
            scheme: "dewrite".into(),
            writes: 20_000,
            seed: 1,
            mode: WriteMode::Predictive,
            pna: true,
            banks: None,
            cores: None,
            encoding: BitEncoding::Dcw,
            persistence: MetadataPersistence::BatteryBacked,
            stt: false,
            cache_policy: Replacement::Lru,
            digest_mode: DigestMode::default(),
            json: false,
            folded: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: sim [options]");
    eprintln!("  --app NAME          workload (see trace-tool apps; or worst-case) [mcf]");
    eprintln!("  --scheme NAME       dewrite | baseline | shredder | traditional-sha1 | traditional-md5 [dewrite]");
    eprintln!("  --writes N          trace length in writes [20000]");
    eprintln!("  --seed N            trace RNG seed [1]");
    eprintln!("  --mode M            dewrite write mode: direct | parallel | predictive");
    eprintln!("  --no-pna            disable prediction-based NVM access");
    eprintln!("  --banks N           NVM banks");
    eprintln!("  --cores N           request contexts");
    eprintln!("  --encoding E        raw | dcw | fnw");
    eprintln!("  --persistence P     battery | write-through | epoch:N");
    eprintln!("  --stt               use STT-RAM timing instead of PCM");
    eprintln!("  --cache-policy P    metadata-cache eviction: lru | fifo | s3-fifo [lru]");
    eprintln!("  --digest-mode M     dedup digest: crc32-verify | strong-keyed [crc32-verify]");
    eprintln!("  --json              print the full report as JSON instead of text");
    eprintln!(
        "  --folded            print the stage breakdown as collapsed stacks (flamegraph.pl input)"
    );
    ExitCode::FAILURE
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--app" => o.app = value()?,
            "--scheme" => o.scheme = value()?,
            "--writes" => o.writes = value()?.parse().map_err(|e| format!("--writes: {e}"))?,
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--mode" => {
                o.mode = match value()?.as_str() {
                    "direct" => WriteMode::Direct,
                    "parallel" => WriteMode::Parallel,
                    "predictive" => WriteMode::Predictive,
                    other => return Err(format!("unknown mode {other}")),
                }
            }
            "--no-pna" => o.pna = false,
            "--banks" => o.banks = Some(value()?.parse().map_err(|e| format!("--banks: {e}"))?),
            "--cores" => o.cores = Some(value()?.parse().map_err(|e| format!("--cores: {e}"))?),
            "--encoding" => {
                o.encoding = match value()?.as_str() {
                    "raw" => BitEncoding::Raw,
                    "dcw" => BitEncoding::Dcw,
                    "fnw" => BitEncoding::Fnw,
                    other => return Err(format!("unknown encoding {other}")),
                }
            }
            "--persistence" => {
                let v = value()?;
                o.persistence = if v == "battery" {
                    MetadataPersistence::BatteryBacked
                } else if v == "write-through" {
                    MetadataPersistence::WriteThrough
                } else if let Some(n) = v.strip_prefix("epoch:") {
                    MetadataPersistence::EpochFlush {
                        interval: n.parse().map_err(|e| format!("--persistence: {e}"))?,
                    }
                } else {
                    return Err(format!("unknown persistence {v}"));
                }
            }
            "--stt" => o.stt = true,
            "--cache-policy" => {
                o.cache_policy = value()?
                    .parse()
                    .map_err(|e| format!("--cache-policy: {e}"))?
            }
            "--digest-mode" => {
                o.digest_mode = value()?
                    .parse()
                    .map_err(|e: String| format!("--digest-mode: {e}"))?
            }
            "--json" => o.json = true,
            "--folded" => o.folded = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn print_report(r: &RunReport) {
    println!("scheme              : {}", r.scheme);
    println!("workload            : {}", r.app);
    println!("instructions        : {}", r.instructions);
    println!("IPC                 : {:.3}", r.ipc);
    println!(
        "writes              : {} issued, {} eliminated ({:.1}%), {} reached the array",
        r.base.writes,
        r.base.writes_eliminated,
        r.write_reduction() * 100.0,
        r.nvm_data_writes
    );
    println!(
        "write latency       : mean {:.0} ns (eliminated {:.0}, stored {:.0}; critical {:.0})",
        r.write_latency.mean_ns(),
        r.write_latency_eliminated.mean_ns(),
        r.write_latency_stored.mean_ns(),
        r.write_critical.mean_ns()
    );
    println!(
        "read latency        : mean {:.0} ns over {} reads",
        r.read_latency.mean_ns(),
        r.base.reads
    );
    println!(
        "metadata traffic    : {} NVM reads, {} NVM writes",
        r.base.meta_nvm_reads, r.base.meta_nvm_writes
    );
    println!("bit-flip ratio      : {:.1}%", r.bit_flip_ratio * 100.0);
    println!("energy              : {}", r.energy);
    if let Some(dm) = &r.dewrite {
        println!(
            "predictor accuracy  : {:.1}%",
            dm.predictor_accuracy * 100.0
        );
        println!(
            "paths               : {} parallel / {} direct; {} wasted / {} saved encryptions",
            dm.parallel_writes, dm.direct_writes, dm.wasted_encryptions, dm.saved_encryptions
        );
        println!(
            "PNA                 : {} skips, {} missed duplicates; {} CRC collisions",
            dm.pna_skips, dm.pna_missed_dups, dm.false_matches
        );
        println!(
            "verify-free         : {} duplicates assumed on digest match alone",
            dm.assumed_dups
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            return usage();
        }
    };

    let profile = if opts.app == "worst-case" {
        Some(worst_case())
    } else {
        app_by_name(&opts.app)
    };
    let Some(profile) = profile else {
        eprintln!("unknown application {:?}", opts.app);
        return usage();
    };
    let scale = Scale {
        writes: opts.writes,
        ..Scale::default_scale()
    };
    let profile = scale.shape(profile);

    let mut gen = TraceGenerator::new(profile.clone(), 256, opts.seed);
    let warmup = gen.warmup_records();
    let mut trace = Vec::new();
    let mut writes = 0;
    while writes < opts.writes {
        let rec = gen.next().expect("infinite generator");
        writes += usize::from(rec.op.is_write());
        trace.push(rec);
    }

    let mut config =
        SystemConfig::for_lines(profile.working_set_lines + profile.content_pool_size as u64 + 64);
    if let Some(b) = opts.banks {
        config.nvm.banks = b;
    }
    if let Some(c) = opts.cores {
        config.cores = c;
    }
    if opts.stt {
        config.nvm.timing = Timing::STT_RAM;
    }
    config.bit_encoding = opts.encoding;
    let sim = Simulator::new(&config);

    let mut dewrite_cache: Option<Json> = None;
    let report = match opts.scheme.as_str() {
        "baseline" => {
            let mut mem = CmeBaseline::new(config, KEY);
            sim.run(&mut mem, profile.name, &warmup, trace)
        }
        "shredder" => {
            let mut mem = SilentShredder::new(config, KEY);
            sim.run(&mut mem, profile.name, &warmup, trace)
        }
        "traditional-sha1" => {
            let mut mem = TraditionalDedup::new(config, HashAlgorithm::Sha1, KEY);
            sim.run(&mut mem, profile.name, &warmup, trace)
        }
        "traditional-md5" => {
            let mut mem = TraditionalDedup::new(config, HashAlgorithm::Md5, KEY);
            sim.run(&mut mem, profile.name, &warmup, trace)
        }
        "dewrite" => {
            let mut dw = DeWriteConfig::paper();
            dw.mode = opts.mode;
            dw.pna = opts.pna;
            dw.persistence = opts.persistence;
            dw.meta_cache.replacement = opts.cache_policy;
            dw.digest_mode = opts.digest_mode;
            let mut mem = DeWrite::new(config, dw, KEY);
            let r = sim.run(&mut mem, profile.name, &warmup, trace);
            dewrite_cache = Some(mem.cache_stats().to_json());
            r.map(|mut r| {
                r.dewrite = Some(mem.dewrite_metrics());
                r
            })
        }
        other => {
            eprintln!("unknown scheme {other:?}");
            return usage();
        }
    };

    match report {
        Ok(r) => {
            if opts.folded {
                print!("{}", r.stage_breakdown.folded(&r.scheme));
            } else if opts.json {
                let mut j = r.to_json();
                if let Json::Obj(fields) = &mut j {
                    fields.push(("dewrite_cache".into(), dewrite_cache.unwrap_or(Json::Null)));
                }
                println!("{j}");
            } else {
                print_report(&r);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
