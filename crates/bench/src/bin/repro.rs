//! `repro` — regenerate every table and figure of the DeWrite paper.
//!
//! Usage:
//! ```text
//! repro [--quick|--full] [--out DIR] <experiment ...>
//! repro all
//! repro --list
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use dewrite_bench::experiments::{cache, endurance, extensions, latency, motivation, system, Ctx};
use dewrite_bench::Scale;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("tab1", "Table I: hash costs and detection latency"),
    ("tab2", "Table II: system configuration"),
    ("fig2", "Fig. 2: duplicate lines per application"),
    ("fig4", "Fig. 4: duplication-state predictability"),
    ("fig6", "Fig. 6: CRC-32 collision rate"),
    ("fig7", "Fig. 7: reference-count distribution"),
    ("fig12", "Fig. 12: write reduction"),
    ("fig13", "Fig. 13: bit flips per write"),
    ("fig14", "Fig. 14: write speedup"),
    ("fig15", "Fig. 15: write latency by mode"),
    ("fig16", "Fig. 16: read speedup"),
    ("fig17", "Fig. 17: IPC improvement"),
    ("fig18", "Fig. 18: worst-case performance"),
    ("fig19", "Fig. 19: energy vs baseline"),
    ("fig20", "Fig. 20: energy by mode"),
    ("fig21", "Fig. 21: metadata cache sweeps"),
    ("ext-history", "Extension: history width sweep"),
    ("ext-hash", "Extension: fingerprint ablation"),
    ("ext-repl", "Extension: cache replacement ablation"),
    ("ext-digest", "Extension: digest mode (verify-free) sweep"),
    ("ext-stt", "Extension: NVM technology sensitivity"),
    ("ext-gran", "Extension: dedup granularity"),
    ("ext-persist", "Extension: metadata persistence policies"),
    ("ext-wear", "Extension: Start-Gap wear leveling"),
    (
        "ext-combined",
        "Extension: line-level x cell-level composition",
    ),
    ("ext-colo", "Extension: co-located programs, global dedup"),
    (
        "ext-layout",
        "Extension: colocated metadata layout validation",
    ),
    ("ext-banks", "Extension: bank-parallelism sensitivity"),
    ("ext-domains", "Extension: per-tenant dedup domains"),
];

fn usage() {
    eprintln!("usage: repro [--quick|--full] [--out DIR] [--json] <experiment ...|all>");
    eprintln!("  --json   also export each table as JSON (and runs.json for shared runs)");
    eprintln!("experiments:");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<12} {desc}");
    }
}

fn run_one(ctx: &mut Ctx, name: &str) -> bool {
    match name {
        "tab1" => latency::tab1(ctx),
        "tab2" => system::tab2(ctx),
        "fig2" => motivation::fig2(ctx),
        "fig4" => motivation::fig4(ctx),
        "fig6" => motivation::fig6(ctx),
        "fig7" => motivation::fig7(ctx),
        "fig12" => endurance::fig12(ctx),
        "fig13" => endurance::fig13(ctx),
        "fig14" => latency::fig14(ctx),
        "fig15" => latency::fig15(ctx),
        "fig16" => latency::fig16(ctx),
        "fig17" => system::fig17(ctx),
        "fig18" => latency::fig18(ctx),
        "fig19" => system::fig19(ctx),
        "fig20" => system::fig20(ctx),
        "fig21" => cache::fig21(ctx),
        "ext-history" => extensions::ext_history(ctx),
        "ext-hash" => extensions::ext_hash(ctx),
        "ext-repl" => extensions::ext_repl(ctx),
        "ext-digest" => extensions::ext_digest(ctx),
        "ext-stt" => extensions::ext_stt(ctx),
        "ext-gran" => extensions::ext_gran(ctx),
        "ext-persist" => extensions::ext_persist(ctx),
        "ext-wear" => extensions::ext_wear(ctx),
        "ext-combined" => extensions::ext_combined(ctx),
        "ext-colo" => extensions::ext_colo(ctx),
        "ext-layout" => extensions::ext_layout(ctx),
        "ext-banks" => extensions::ext_banks(ctx),
        "ext-domains" => extensions::ext_domains(ctx),
        _ => return false,
    }
    true
}

fn main() -> ExitCode {
    let mut scale = Scale::default_scale();
    let mut out_dir = PathBuf::from("results");
    let mut json = false;
    let mut selected: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--full" => scale = Scale::full(),
            "--json" => json = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" | "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => selected.push(other.to_string()),
        }
    }

    if selected.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if selected.iter().any(|s| s == "all") {
        selected = EXPERIMENTS.iter().map(|(n, _)| n.to_string()).collect();
    }

    for name in &selected {
        if !EXPERIMENTS.iter().any(|(n, _)| n == name) {
            eprintln!("unknown experiment: {name}");
            usage();
            return ExitCode::FAILURE;
        }
    }

    println!(
        "DeWrite reproduction: {} experiment(s), {} writes/app, results -> {}",
        selected.len(),
        scale.writes,
        out_dir.display()
    );
    let started = std::time::Instant::now();
    let mut ctx = Ctx::new(scale, out_dir);
    ctx.json = json;
    for name in &selected {
        let t0 = std::time::Instant::now();
        println!("\n### {name} ###");
        assert!(run_one(&mut ctx, name), "validated above");
        println!("[{name} took {:.1?}]", t0.elapsed());
    }
    println!("\nAll done in {:.1?}.", started.elapsed());
    ExitCode::SUCCESS
}
