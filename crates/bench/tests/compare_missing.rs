//! `bench_compare` must surface apps present in only one `runs.json` —
//! in either direction — and fail unless `--allow-missing` is passed.

use std::path::PathBuf;
use std::process::{Command, Output};

use dewrite_core::{DeWriteMetrics, Json, RunReport};

/// A minimal but comparable report row: nonzero write latency so the
/// speedup map picks it up, and a DeWrite marker when requested.
fn report(app: &str, scheme: &str, dewrite: bool, mean_ns: u64) -> RunReport {
    let mut r = RunReport {
        app: app.into(),
        scheme: scheme.into(),
        ..RunReport::default()
    };
    r.write_latency.record(mean_ns);
    r.write_latency_hist.record(mean_ns);
    if dewrite {
        r.dewrite = Some(DeWriteMetrics::default());
    }
    r
}

/// One app = a (dewrite, baseline) pair, as `repro --json` emits.
fn app_pair(app: &str) -> Vec<RunReport> {
    vec![
        report(app, "dewrite", true, 150),
        report(app, "baseline", false, 450),
    ]
}

fn write_runs(name: &str, reports: &[RunReport]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dewrite_compare_missing_{}_{name}.json",
        std::process::id()
    ));
    let json = Json::Arr(reports.iter().map(|r| r.to_json()).collect());
    std::fs::write(&path, format!("{json}\n")).expect("write runs.json");
    path
}

fn run_compare(old: &PathBuf, new: &PathBuf, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(old)
        .arg(new)
        .args(extra)
        .output()
        .expect("spawn bench_compare")
}

#[test]
fn app_only_in_new_fails_without_allow_missing() {
    let old = write_runs("new_old", &app_pair("mcf"));
    let new = write_runs("new_new", &[app_pair("mcf"), app_pair("lbm")].concat());

    let out = run_compare(&old, &new, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "NEW-only app must fail the comparison; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("lbm") && stderr.contains("present only in"),
        "NEW-only app must be reported, got:\n{stderr}"
    );

    let out = run_compare(&old, &new, &["--allow-missing"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "--allow-missing must tolerate it; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("WARNING") && stderr.contains("lbm"),
        "still warned under --allow-missing, got:\n{stderr}"
    );
}

#[test]
fn app_only_in_old_fails_without_allow_missing() {
    let old = write_runs("old_old", &[app_pair("mcf"), app_pair("vips")].concat());
    let new = write_runs("old_new", &app_pair("mcf"));

    let out = run_compare(&old, &new, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "OLD-only app must fail the comparison; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("vips") && stderr.contains("missing from"),
        "OLD-only app must be reported, got:\n{stderr}"
    );

    let out = run_compare(&old, &new, &["--allow-missing"]);
    assert!(
        out.status.success(),
        "--allow-missing must tolerate a retired app; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn identical_matrices_pass() {
    let reports = [app_pair("mcf"), app_pair("lbm")].concat();
    let old = write_runs("same_old", &reports);
    let new = write_runs("same_new", &reports);
    let out = run_compare(&old, &new, &[]);
    assert!(
        out.status.success(),
        "identical matrices must pass; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
