//! The hot-path engine overhaul is host-speed only: forced-portable and
//! hardware-dispatched engines must produce bit-identical `RunReport`s.
//!
//! Backends are chosen when an engine is constructed, so toggling
//! `set_portable_only` between simulation runs exercises both paths in one
//! process (the same switch CI flips via `DEWRITE_PORTABLE=1`).

use dewrite_bench::runner::{run_scheme, Scale, SchemeKind, Workload};
use dewrite_trace::app_by_name;

const SEED: u64 = 0xDE11_A11C;

/// Serialize the full report for one (scheme, app) run.
fn report_json(kind: SchemeKind, portable: bool) -> String {
    dewrite_crypto::set_portable_only(portable);
    dewrite_hashes::set_portable_only(portable);
    let profile = app_by_name("dedup").expect("known app");
    let workload = Workload::generate(&profile, Scale::quick(), SEED);
    let report = run_scheme(kind, &workload);
    // Leave the process-wide switch as we found it.
    dewrite_crypto::set_portable_only(false);
    dewrite_hashes::set_portable_only(false);
    report.to_json().to_string()
}

#[test]
fn dewrite_report_identical_portable_vs_fast() {
    let portable = report_json(SchemeKind::DeWrite, true);
    let fast = report_json(SchemeKind::DeWrite, false);
    assert_eq!(
        portable, fast,
        "RunReport differs between portable and hardware engines"
    );
}

#[test]
fn baseline_report_identical_portable_vs_fast() {
    let portable = report_json(SchemeKind::Baseline, true);
    let fast = report_json(SchemeKind::Baseline, false);
    assert_eq!(portable, fast);
}

#[test]
fn repeated_fast_runs_are_identical() {
    // Dispatch itself must be deterministic run-to-run, not just
    // portable-vs-fast.
    let a = report_json(SchemeKind::DeWrite, false);
    let b = report_json(SchemeKind::DeWrite, false);
    assert_eq!(a, b);
}

// --- sharded engine: thread-count-independent determinism -----------------

use dewrite_engine::{run as engine_run, EngineConfig, EngineRun};
use dewrite_trace::{TraceGenerator, TraceRecord};

/// A threaded engine run over a fixed mcf-shaped trace.
fn engine_trace(ops: usize, seed: u64) -> (Vec<TraceRecord>, u64, u64) {
    let mut profile = app_by_name("mcf").expect("known app");
    profile.working_set_lines = 4096;
    profile.content_pool_size = 128;
    let mut gen = TraceGenerator::new(profile, 256, seed);
    let lines = gen.required_lines();
    let mut records = gen.warmup_records();
    records.extend(gen.by_ref().take(ops));
    let writes = records.iter().filter(|r| r.op.is_write()).count() as u64;
    (records, lines, writes)
}

fn engine_go(records: &[TraceRecord], lines: u64, writes: u64, shards: usize) -> EngineRun {
    let mut config = EngineConfig::for_workload(shards, 256, lines, writes);
    config.scrub = true;
    engine_run(&config, "mcf", records.to_vec())
}

#[test]
fn engine_merged_report_is_bit_identical_across_threaded_runs() {
    // Same seed + same shard count => the merged simulated RunReport must
    // be bit-identical run to run, even though real threads race on wall
    // time, queue occupancy, and interleaving.
    let (records, lines, writes) = engine_trace(6000, SEED);
    let a = engine_go(&records, lines, writes, 4);
    let b = engine_go(&records, lines, writes, 4);
    assert_eq!(a.merged, b.merged, "merged RunReport drifted across runs");
    assert_eq!(
        a.merged.to_json().to_string(),
        b.merged.to_json().to_string(),
        "serialized merged RunReport drifted across runs"
    );
}

#[test]
fn engine_scrub_finds_no_orphans_under_cross_thread_stress() {
    // Hammer 8 shards with a dup-heavy trace, then audit every shard's
    // tables: no orphaned counters, no dangling inverted rows, no leaked
    // free-space bits.
    let (records, lines, writes) = engine_trace(20_000, SEED ^ 0xBEEF);
    let result = engine_go(&records, lines, writes, 8);
    assert_eq!(result.ops, records.len() as u64, "ops were lost");
    for shard in &result.shards {
        match &shard.scrub {
            Some(Ok(_)) => {}
            Some(Err(e)) => panic!("shard {} failed scrub: {e}", shard.shard),
            None => panic!("shard {} was not scrubbed", shard.shard),
        }
    }
}
