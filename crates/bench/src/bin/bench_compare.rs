//! Diff two `runs.json` exports across commits and flag regressions.
//!
//! The repro harness writes `runs.json` (a flat array of per-app
//! `RunReport`s, dewrite/baseline pairs) with `repro --json`. This tool
//! compares an older export against a newer one and exits non-zero when
//! any app regresses beyond the tolerance in:
//!
//! * **write speedup** — baseline mean write latency / dewrite mean write
//!   latency, the paper's headline metric;
//! * **p99 write latency** of any (app, scheme) row;
//! * **per-stage mean timings** of any (app, scheme) row.
//!
//! Usage:
//!   bench_compare OLD/runs.json NEW/runs.json [--tolerance PCT] [--allow-missing]
//!   bench_compare OLD/BENCH_engine.json NEW/BENCH_engine.json [--tolerance PCT]
//!   bench_compare --hotpath OLD/BENCH_hotpath.json NEW/BENCH_hotpath.json
//!
//! When both inputs are `loadgen` exports (a top-level object with
//! `"tool": "loadgen"`) the tool switches to **engine mode**: for every
//! (app, shard count) row it requires the new `ops_per_sec` to stay above
//! `old * (1 - tol)` and the new `host_p99_ns` to stay below
//! `old * (1 + tol)`. Engine numbers are host wall clock, so the default
//! tolerance is a loose 15% there.
//!
//! When both inputs are `hotpath` exports (a top-level object with
//! `"bench": "hotpath"`) the tool switches to **hotpath mode**: for every
//! (name, engine) row the new `ns_per_op` must stay below
//! `old * (1 + tol)`. The `--hotpath` flag asserts this mode (erroring on
//! other inputs); detection also happens automatically. Hotpath numbers
//! are best-batch host wall clock — stable, but cross-machine and
//! quick-vs-full comparisons still need slack, so the default tolerance
//! is a loose 50% there: the gate exists to catch structural regressions
//! (a probe going quadratic, an allocation sneaking into the hot loop),
//! not single-digit jitter. Rows whose name ends in `_contended` are
//! excluded from hotpath comparisons entirely: they measure thread
//! interaction, so their ns/op depends on host core count and a baseline
//! captured on a different machine says nothing about a regression.
//!
//! When both inputs are repro `Table` JSON exports (a top-level object
//! with `headers`/`rows`, e.g. `ext_repl.json` or `ext_digest.json`) the
//! tool switches to **table mode** and diffs per-(app, policy) rows:
//! `dedup rate` must not shrink and `p99 write (ns)` must not grow
//! beyond the tolerance. When the export carries a `digest mode` column
//! (the `ext-digest` sweep), that column joins the row key, so
//! crc32-verify and strong-keyed rows for the same app are compared
//! independently. Old exports written before the policy axis existed
//! lack the metric columns, and exports written before the digest-mode
//! axis lack the `digest mode` column; either way the affected new rows
//! are reported as missing a baseline, which `--allow-missing`
//! downgrades to warnings.
//!
//! In simulated and table modes tolerance defaults to 2% — simulated ns
//! are deterministic, so any drift beyond float-formatting noise is a
//! real behavior change. Mixing export kinds is an error.
//!
//! An app or (app, scheme) row present in only one of the two files is
//! reported in both directions (dropped from NEW, or new in NEW with no
//! OLD baseline) and fails the comparison, since a silently shrinking or
//! incomparable matrix can mask regressions. Pass `--allow-missing` to
//! downgrade those to warnings (e.g. when a PR intentionally adds or
//! retires a workload).

use std::collections::BTreeMap;
use std::process::ExitCode;

use dewrite_core::{Json, RunReport, Stage};

fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_reports(path: &str, json: &Json) -> Result<Vec<RunReport>, String> {
    let arr = json
        .as_arr()
        .ok_or_else(|| format!("{path}: not an array (nor a loadgen export)"))?;
    arr.iter()
        .map(|j| RunReport::from_json(j).map_err(|e| format!("{path}: {e}")))
        .collect()
}

/// Is this a `loadgen` engine export rather than a `RunReport` array?
fn is_engine_export(json: &Json) -> bool {
    json.get("tool").and_then(Json::as_str) == Some("loadgen")
}

/// Is this a `hotpath` kernel-benchmark export?
fn is_hotpath_export(json: &Json) -> bool {
    json.get("bench").and_then(Json::as_str) == Some("hotpath")
}

/// Is this a repro `Table` JSON export (`{"title","headers","rows"}`,
/// e.g. `ext_repl.json` from `repro --json ext-repl`)?
fn is_table_export(json: &Json) -> bool {
    json.get("headers").is_some() && json.get("rows").is_some()
}

/// One policy-table comparison row: dedup rate and simulated tail latency.
struct PolicyRow {
    dedup_rate: f64,
    p99_ns: f64,
}

/// Flatten an `ext_repl`/`ext_digest`-style table into its comparison
/// rows, keyed by the first column (`app/policy` or `app/mode`) plus the
/// `digest mode` column when the export carries one. Exports written
/// before the policy axis existed lack the `dedup rate` /
/// `p99 write (ns)` columns, and exports written before the digest-mode
/// axis lack the `digest mode` column; either way the old rows cannot
/// match the new keys, so every new row surfaces as missing a baseline,
/// which `--allow-missing` downgrades to warnings.
fn policy_rows(path: &str, json: &Json) -> Result<BTreeMap<(String, String), PolicyRow>, String> {
    let headers = json
        .get("headers")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: table export has no `headers` array"))?;
    let col = |name: &str| headers.iter().position(|h| h.as_str() == Some(name));
    let (Some(key_col), Some(dedup_col), Some(p99_col)) =
        (col("app"), col("dedup rate"), col("p99 write (ns)"))
    else {
        return Ok(BTreeMap::new());
    };
    let mode_col = col("digest mode");
    let rows = json
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: table export has no `rows` array"))?;
    let mut out = BTreeMap::new();
    for row in rows {
        let cells = row
            .as_arr()
            .ok_or_else(|| format!("{path}: table row is not an array"))?;
        let cell = |i: usize| {
            cells
                .get(i)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: table row missing column {i}"))
        };
        let key = cell(key_col)?.to_string();
        let mode = match mode_col {
            Some(i) => cell(i)?.to_string(),
            None => String::new(),
        };
        let dedup_rate = cell(dedup_col)?
            .trim_end_matches('%')
            .parse::<f64>()
            .map_err(|e| format!("{path}: {key}: bad dedup rate: {e}"))?;
        let p99_ns = cell(p99_col)?
            .parse::<f64>()
            .map_err(|e| format!("{path}: {key}: bad p99: {e}"))?;
        out.insert((key, mode), PolicyRow { dedup_rate, p99_ns });
    }
    Ok(out)
}

/// Flatten a hotpath export into (name, engine) → ns_per_op.
fn hotpath_rows(path: &str, json: &Json) -> Result<BTreeMap<(String, String), f64>, String> {
    let results = json
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: hotpath export has no `results` array"))?;
    let mut rows = BTreeMap::new();
    for row in results {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: result row without `name`"))?;
        let engine = row
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: {name}: result row without `engine`"))?;
        let ns_per_op = row
            .get("ns_per_op")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: {name}/{engine}: no `ns_per_op`"))?;
        rows.insert((name.to_string(), engine.to_string()), ns_per_op);
    }
    Ok(rows)
}

/// One engine-mode comparison row: host throughput and tail latency.
struct EngineRow {
    ops_per_sec: f64,
    host_p99_ns: u64,
}

/// Flatten a loadgen export into (app, shards) → row.
fn engine_rows(path: &str, json: &Json) -> Result<BTreeMap<(String, u64), EngineRow>, String> {
    let apps = json
        .get("apps")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: loadgen export has no `apps` array"))?;
    let mut rows = BTreeMap::new();
    for app_obj in apps {
        let app = app_obj
            .get("app")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: app entry without a name"))?;
        let runs = app_obj
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}: {app}: no `runs` array"))?;
        for run in runs {
            let shards = run
                .get("shards")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: {app}: run without `shards`"))?;
            let ops_per_sec = run
                .get("ops_per_sec")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: {app}/{shards}: no `ops_per_sec`"))?;
            let host_p99_ns = run
                .get("host_p99_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: {app}/{shards}: no `host_p99_ns`"))?;
            rows.insert(
                (app.to_string(), shards),
                EngineRow {
                    ops_per_sec,
                    host_p99_ns,
                },
            );
        }
    }
    Ok(rows)
}

/// Flatten a loadgen export's `net` section into (app, connections) →
/// row. Exports written before the socket frontend existed (or from an
/// in-process run) have no `net` section: that's an empty map, not an
/// error, so old/new pairs straddling the feature still compare their
/// shard rows.
fn net_rows(path: &str, json: &Json) -> Result<BTreeMap<(String, u64), EngineRow>, String> {
    let Some(net) = json.get("net") else {
        return Ok(BTreeMap::new());
    };
    let apps = net
        .get("apps")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: `net` section has no `apps` array"))?;
    let mut rows = BTreeMap::new();
    for app_obj in apps {
        let app = app_obj
            .get("app")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: net app entry without a name"))?;
        let runs = app_obj
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{path}: net/{app}: no `runs` array"))?;
        for run in runs {
            let connections = run
                .get("connections")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: net/{app}: run without `connections`"))?;
            let ops_per_sec = run
                .get("ops_per_sec")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: net/{app}/{connections}: no `ops_per_sec`"))?;
            let host_p99_ns = run
                .get("host_p99_ns")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: net/{app}/{connections}: no `host_p99_ns`"))?;
            rows.insert(
                (app.to_string(), connections),
                EngineRow {
                    ops_per_sec,
                    host_p99_ns,
                },
            );
        }
    }
    Ok(rows)
}

/// Key rows by (app, scheme); keep insertion-stable order via BTreeMap.
fn index(reports: &[RunReport]) -> BTreeMap<(String, String), &RunReport> {
    reports
        .iter()
        .map(|r| ((r.app.clone(), r.scheme.clone()), r))
        .collect()
}

/// Per-app write speedup: baseline mean write latency over dewrite's.
/// The dewrite row is the one carrying DeWrite-specific metrics.
fn speedups(reports: &[RunReport]) -> BTreeMap<String, f64> {
    let mut by_app: BTreeMap<String, (Option<f64>, Option<f64>)> = BTreeMap::new();
    for r in reports {
        let mean = r.write_latency.mean_ns();
        if mean <= 0.0 {
            continue;
        }
        let entry = by_app.entry(r.app.clone()).or_default();
        if r.dewrite.is_some() {
            entry.0 = Some(mean);
        } else {
            entry.1 = Some(mean);
        }
    }
    by_app
        .into_iter()
        .filter_map(|(app, (dw, base))| match (dw, base) {
            (Some(dw), Some(base)) => Some((app, base / dw)),
            _ => None,
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance: Option<f64> = None;
    let mut allow_missing = false;
    let mut expect_hotpath = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => tolerance = Some(t),
                None => {
                    eprintln!("--tolerance needs a numeric percentage");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--allow-missing" {
            allow_missing = true;
        } else if a == "--hotpath" {
            expect_hotpath = true;
        } else {
            paths.push(a.clone());
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_compare [--hotpath] OLD.json NEW.json [--tolerance PCT] [--allow-missing]"
        );
        return ExitCode::from(2);
    };
    let (old_json, new_json) = match (load_json(old_path), load_json(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let engine_mode = is_engine_export(&old_json) || is_engine_export(&new_json);
    if engine_mode && !(is_engine_export(&old_json) && is_engine_export(&new_json)) {
        eprintln!("error: {old_path} and {new_path} are different export kinds");
        return ExitCode::from(2);
    }
    let hotpath_mode = is_hotpath_export(&old_json) || is_hotpath_export(&new_json);
    if hotpath_mode && !(is_hotpath_export(&old_json) && is_hotpath_export(&new_json)) {
        eprintln!("error: {old_path} and {new_path} are different export kinds");
        return ExitCode::from(2);
    }
    if expect_hotpath && !hotpath_mode {
        eprintln!("error: --hotpath given but the inputs are not hotpath exports");
        return ExitCode::from(2);
    }
    let table_mode =
        !engine_mode && !hotpath_mode && (is_table_export(&old_json) || is_table_export(&new_json));
    if table_mode && !(is_table_export(&old_json) && is_table_export(&new_json)) {
        eprintln!("error: {old_path} and {new_path} are different export kinds");
        return ExitCode::from(2);
    }
    // Host wall-clock numbers (engine and hotpath modes) are far noisier
    // than deterministic simulated ns; hotpath baselines additionally
    // cross machines and quick/full budgets.
    let tolerance = tolerance.unwrap_or(if hotpath_mode {
        50.0
    } else if engine_mode {
        15.0
    } else {
        2.0
    });
    let tol = tolerance / 100.0;

    let mut regressions: Vec<String> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    let mut compared = 0usize;

    if hotpath_mode {
        let (mut old_rows, mut new_rows) = match (
            hotpath_rows(old_path, &old_json),
            hotpath_rows(new_path, &new_json),
        ) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        // Contended rows depend on how many hardware threads the host
        // has; comparing them across machines (or against a baseline
        // captured on a small runner) flags scheduler noise, not code.
        let is_contended = |name: &str| name.ends_with("_contended");
        let dropped: std::collections::BTreeSet<String> = old_rows
            .keys()
            .chain(new_rows.keys())
            .filter(|(name, _)| is_contended(name))
            .map(|(name, _)| name.clone())
            .collect();
        old_rows.retain(|(name, _), _| !is_contended(name));
        new_rows.retain(|(name, _), _| !is_contended(name));
        for name in &dropped {
            println!("note: skipping {name} (contended rows are host-parallelism dependent)");
        }
        for key @ (name, engine) in new_rows.keys() {
            if !old_rows.contains_key(key) {
                missing.push(format!(
                    "{name}/{engine}: present only in {new_path} — \
                     no {old_path} baseline to compare"
                ));
            }
        }
        for ((name, engine), old_ns) in &old_rows {
            let Some(new_ns) = new_rows.get(&(name.clone(), engine.clone())) else {
                missing.push(format!("{name}/{engine}: row missing from {new_path}"));
                continue;
            };
            compared += 1;
            println!("{name:<20} {engine:<12} {old_ns:>9.1} -> {new_ns:>9.1} ns/op");
            if *new_ns > old_ns * (1.0 + tol) {
                regressions.push(format!(
                    "{name}/{engine}: ns/op regressed {old_ns:.1} -> {new_ns:.1}"
                ));
            }
        }
    } else if engine_mode {
        let (old_rows, new_rows) = match (
            engine_rows(old_path, &old_json),
            engine_rows(new_path, &new_json),
        ) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        for key @ (app, shards) in new_rows.keys() {
            if !old_rows.contains_key(key) {
                missing.push(format!(
                    "{app}/{shards} shards: present only in {new_path} — \
                     no {old_path} baseline to compare"
                ));
            }
        }
        for ((app, shards), o) in &old_rows {
            let Some(n) = new_rows.get(&(app.clone(), *shards)) else {
                missing.push(format!(
                    "{app}/{shards} shards: row missing from {new_path}"
                ));
                continue;
            };
            compared += 1;
            println!(
                "{app:<12} shards={shards:<2} {:>11.0} -> {:>11.0} ops/s   p99 {} -> {} ns",
                o.ops_per_sec, n.ops_per_sec, o.host_p99_ns, n.host_p99_ns
            );
            if n.ops_per_sec < o.ops_per_sec * (1.0 - tol) {
                regressions.push(format!(
                    "{app}/{shards} shards: throughput regressed {:.0} -> {:.0} ops/s",
                    o.ops_per_sec, n.ops_per_sec
                ));
            }
            if o.host_p99_ns > 0 && (n.host_p99_ns as f64) > (o.host_p99_ns as f64) * (1.0 + tol) {
                regressions.push(format!(
                    "{app}/{shards} shards: host p99 regressed {} -> {} ns",
                    o.host_p99_ns, n.host_p99_ns
                ));
            }
        }

        // The socket frontend's end-to-end rows, keyed by connection
        // count. Same gates as the in-process rows: throughput must not
        // drop below, nor host p99 rise above, the tolerance band.
        let (old_net, new_net) =
            match (net_rows(old_path, &old_json), net_rows(new_path, &new_json)) {
                (Ok(o), Ok(n)) => (o, n),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
        for key @ (app, connections) in new_net.keys() {
            if !old_net.contains_key(key) {
                missing.push(format!(
                    "net {app}/{connections} conns: present only in {new_path} — \
                     no {old_path} baseline to compare"
                ));
            }
        }
        for ((app, connections), o) in &old_net {
            let Some(n) = new_net.get(&(app.clone(), *connections)) else {
                missing.push(format!(
                    "net {app}/{connections} conns: row missing from {new_path}"
                ));
                continue;
            };
            compared += 1;
            println!(
                "{app:<12} conns={connections:<4} {:>11.0} -> {:>11.0} ops/s   p99 {} -> {} ns",
                o.ops_per_sec, n.ops_per_sec, o.host_p99_ns, n.host_p99_ns
            );
            if n.ops_per_sec < o.ops_per_sec * (1.0 - tol) {
                regressions.push(format!(
                    "net {app}/{connections} conns: throughput regressed {:.0} -> {:.0} ops/s",
                    o.ops_per_sec, n.ops_per_sec
                ));
            }
            if o.host_p99_ns > 0 && (n.host_p99_ns as f64) > (o.host_p99_ns as f64) * (1.0 + tol) {
                regressions.push(format!(
                    "net {app}/{connections} conns: host p99 regressed {} -> {} ns",
                    o.host_p99_ns, n.host_p99_ns
                ));
            }
        }
    } else if table_mode {
        // Per-(app, policy) or per-(app, digest-mode) diffing for
        // `repro --json ext-repl` / `ext-digest` exports: dedup rate must
        // not shrink, simulated p99 must not grow. Both are
        // deterministic, so the default 2% tolerance applies.
        let (old_rows, new_rows) = match (
            policy_rows(old_path, &old_json),
            policy_rows(new_path, &new_json),
        ) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        // The `app` cell already embeds the digest mode when the export
        // carries that column; only spell the mode out when it doesn't.
        let label = |key: &(String, String)| -> String {
            let (app, mode) = key;
            if mode.is_empty() || app.ends_with(mode.as_str()) {
                app.clone()
            } else {
                format!("{app} [{mode}]")
            }
        };
        if old_rows.is_empty() && !new_rows.is_empty() {
            missing.push(format!(
                "{old_path}: export predates the per-policy columns — \
                 no baselines to compare"
            ));
        }
        for key in new_rows.keys() {
            if !old_rows.is_empty() && !old_rows.contains_key(key) {
                missing.push(format!(
                    "{}: present only in {new_path} — no {old_path} baseline to compare",
                    label(key)
                ));
            }
        }
        for (key, o) in &old_rows {
            let Some(n) = new_rows.get(key) else {
                missing.push(format!("{}: row missing from {new_path}", label(key)));
                continue;
            };
            compared += 1;
            println!(
                "{:<24} dedup {:>5.1}% -> {:>5.1}%   p99 {:>8.0} -> {:>8.0} ns",
                label(key),
                o.dedup_rate,
                n.dedup_rate,
                o.p99_ns,
                n.p99_ns
            );
            if n.dedup_rate < o.dedup_rate * (1.0 - tol) {
                regressions.push(format!(
                    "{}: dedup rate regressed {:.1}% -> {:.1}%",
                    label(key),
                    o.dedup_rate,
                    n.dedup_rate
                ));
            }
            if o.p99_ns > 0.0 && n.p99_ns > o.p99_ns * (1.0 + tol) {
                regressions.push(format!(
                    "{}: p99 write latency regressed {:.0} ns -> {:.0} ns",
                    label(key),
                    o.p99_ns,
                    n.p99_ns
                ));
            }
        }
    } else {
        let (old, new) = match (
            load_reports(old_path, &old_json),
            load_reports(new_path, &new_json),
        ) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };

        // Headline: per-app write speedup must not shrink.
        let old_speedups = speedups(&old);
        let new_speedups = speedups(&new);
        for (app, old_s) in &old_speedups {
            let Some(new_s) = new_speedups.get(app) else {
                missing.push(format!("{app}: speedup row missing from {new_path}"));
                continue;
            };
            compared += 1;
            println!("{app:<16} write speedup {old_s:.3}x -> {new_s:.3}x");
            if *new_s < old_s * (1.0 - tol) {
                regressions.push(format!(
                    "{app}: write speedup regressed {old_s:.3}x -> {new_s:.3}x"
                ));
            }
        }
        for app in new_speedups.keys() {
            if !old_speedups.contains_key(app) {
                missing.push(format!(
                    "{app}: present only in {new_path} — no {old_path} baseline to compare"
                ));
            }
        }

        // Per-row: p99 write latency and per-stage means must not grow.
        let old_rows = index(&old);
        let new_rows = index(&new);
        for key @ (app, scheme) in new_rows.keys() {
            if !old_rows.contains_key(key) {
                missing.push(format!(
                    "{app}/{scheme}: present only in {new_path} — \
                     no {old_path} baseline to compare"
                ));
            }
        }
        for ((app, scheme), o) in &old_rows {
            let Some(n) = new_rows.get(&(app.clone(), scheme.clone())) else {
                missing.push(format!("{app}/{scheme}: row missing from {new_path}"));
                continue;
            };
            compared += 1;
            let (op99, np99) = (o.write_latency_hist.p99_ns(), n.write_latency_hist.p99_ns());
            if op99 > 0 && (np99 as f64) > (op99 as f64) * (1.0 + tol) {
                regressions.push(format!(
                    "{app}/{scheme}: p99 write latency regressed {op99} ns -> {np99} ns"
                ));
            }
            for stage in Stage::ALL {
                let (os, ns) = (
                    o.stage_breakdown.stage(stage),
                    n.stage_breakdown.stage(stage),
                );
                if os.count() == 0 {
                    continue;
                }
                let (om, nm) = (os.mean_ns(), ns.mean_ns());
                if om > 0.0 && nm > om * (1.0 + tol) {
                    regressions.push(format!(
                        "{app}/{scheme}: stage {} mean regressed {om:.1} ns -> {nm:.1} ns",
                        stage.name()
                    ));
                }
            }
        }
    }

    println!("compared {compared} rows at ±{tolerance}% tolerance");
    if !missing.is_empty() {
        let label = if allow_missing { "WARNING" } else { "MISSING" };
        eprintln!("\n{} incomparable entr(ies):", missing.len());
        for m in &missing {
            eprintln!("  {label} {m}");
        }
        if allow_missing {
            eprintln!("  (tolerated by --allow-missing)");
        }
    }
    let missing_fails = !missing.is_empty() && !allow_missing;
    if regressions.is_empty() && !missing_fails {
        println!("no regressions");
        ExitCode::SUCCESS
    } else {
        if !regressions.is_empty() {
            eprintln!("\n{} regression(s):", regressions.len());
            for r in &regressions {
                eprintln!("  REGRESSION {r}");
            }
        }
        if missing_fails {
            eprintln!("comparison matrices differ; pass --allow-missing if intentional");
        }
        ExitCode::FAILURE
    }
}
