//! Per-application workload profiles.
//!
//! We cannot run SPEC CPU2006 / PARSEC in this environment, so each
//! application is summarized by the statistics that drive the paper's
//! results: how often written lines duplicate existing memory content
//! (Fig. 2), how much of that duplication is zero lines (Fig. 2's
//! zero-line series), how sticky the duplicate/non-duplicate state is
//! across consecutive writes (Fig. 4, ≈92% on average), plus read/write mix
//! and footprint parameters.

/// Which benchmark suite an application belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 (single-threaded, ref inputs in the paper).
    Spec2006,
    /// PARSEC 2.1 (multi-threaded, simlarge inputs in the paper).
    Parsec,
    /// Synthetic (e.g. the worst-case benchmark of Fig. 18).
    Synthetic,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::Spec2006 => "SPEC CPU2006",
            Suite::Parsec => "PARSEC",
            Suite::Synthetic => "synthetic",
        })
    }
}

/// Solve for two-state Markov transition probabilities `(stay_a, stay_b)`
/// with stationary `a`-fraction `d` and expected persistence `p`.
fn markov_from(d: f64, p: f64) -> (f64, f64) {
    let d = d.clamp(1e-6, 1.0 - 1e-6);
    let p = p.clamp(0.5, 1.0 - 1e-9);
    // stay_a = 1 - k(1-d), stay_b = 1 - k·d, where
    // k = (1-p) / (2 d (1-d)) preserves both moments when feasible.
    let k = (1.0 - p) / (2.0 * d * (1.0 - d));
    let stay_a = (1.0 - k * (1.0 - d)).clamp(0.0, 1.0);
    let stay_b = (1.0 - k * d).clamp(0.0, 1.0);
    (stay_a, stay_b)
}

/// Statistical profile of one application's memory-write behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name (e.g. `"cactusADM"`).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Fraction of written lines whose content already exists in memory
    /// (Fig. 2; 0.186 – 0.984 across the 20 applications).
    pub dup_ratio: f64,
    /// Fraction of written lines that are all-zero (the part Silent Shredder
    /// can eliminate; average 0.16).
    pub zero_share: f64,
    /// Probability that a write's duplication state equals the previous
    /// write's state (Fig. 4; ≈0.92 average).
    pub state_persistence: f64,
    /// Memory reads issued per memory write.
    pub reads_per_write: f64,
    /// Memory writes per 1000 executed instructions (drives the IPC model).
    pub writes_per_kilo_instr: f64,
    /// Distinct lines the application touches.
    pub working_set_lines: u64,
    /// Number of distinct duplicate contents circulating (smaller pool =
    /// more highly-referenced lines).
    pub content_pool_size: usize,
}

impl AppProfile {
    /// Two-state Markov transition probabilities `(stay_dup, stay_nondup)`
    /// whose stationary distribution matches [`dup_ratio`](Self::dup_ratio)
    /// and whose expected persistence approximates
    /// [`state_persistence`](Self::state_persistence).
    ///
    /// For extreme duplication ratios the persistence target is infeasible;
    /// probabilities are clamped to `[0, 1]`, which (correctly) yields even
    /// higher persistence — matching the paper's observation that highly
    /// duplicate applications are also highly predictable.
    pub fn markov_params(&self) -> (f64, f64) {
        markov_from(self.dup_ratio, self.state_persistence)
    }

    /// Rate of *isolated* duplication-state flips (single-write excursions
    /// that immediately revert).
    ///
    /// The paper's Fig. 4 shows a 3-bit majority window beating the 1-bit
    /// window (93.6% vs 92.1%), which cannot happen on a pure first-order
    /// Markov state stream (there, last-state prediction is optimal). Real
    /// write streams contain isolated flips — a lone duplicate inside a
    /// non-duplicate phase — which cost a 1-bit predictor two mispredictions
    /// but a 3-bit majority only one. Splitting the total non-persistence
    /// `1 − p` into phase switches `s` and isolated noise `q` with
    /// `q = 2s` (so `1 − p = s + 2q`) analytically reproduces both numbers:
    /// 1-bit accuracy ≈ `p`, 3-bit accuracy ≈ `1 − 4(1 − p)/5`.
    pub fn noise_rate(&self) -> f64 {
        2.0 * (1.0 - self.state_persistence) / 5.0
    }

    /// Phase-process transition probabilities `(stay_dup, stay_nondup)` for
    /// the slow phase layer underneath the [`noise_rate`](Self::noise_rate)
    /// flips, calibrated so the *observed* stream still matches
    /// `dup_ratio` and `state_persistence`.
    pub fn phase_params(&self) -> (f64, f64) {
        let q = self.noise_rate();
        // Noise pushes the observed ratio toward 0.5; pre-distort the phase
        // ratio so the observed one lands on target.
        let d_phase = ((self.dup_ratio - q) / (1.0 - 2.0 * q)).clamp(0.0, 1.0);
        let s = (1.0 - self.state_persistence) / 5.0;
        markov_from(d_phase, 1.0 - s)
    }

    /// Validate that the profile's parameters are internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.dup_ratio) {
            return Err(format!("{}: dup_ratio out of [0,1]", self.name));
        }
        if !(0.0..=1.0).contains(&self.zero_share) {
            return Err(format!("{}: zero_share out of [0,1]", self.name));
        }
        if self.zero_share > self.dup_ratio + 0.05 {
            // Zero lines (beyond the first) are duplicates, so the zero share
            // cannot meaningfully exceed the duplicate share.
            return Err(format!(
                "{}: zero_share {} exceeds dup_ratio {}",
                self.name, self.zero_share, self.dup_ratio
            ));
        }
        if !(0.5..1.0).contains(&self.state_persistence) {
            return Err(format!("{}: state_persistence out of [0.5,1)", self.name));
        }
        if self.reads_per_write < 0.0 || self.writes_per_kilo_instr <= 0.0 {
            return Err(format!("{}: nonpositive rate", self.name));
        }
        if self.working_set_lines == 0 || self.content_pool_size == 0 {
            return Err(format!("{}: empty working set or pool", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppProfile {
        AppProfile {
            name: "sample",
            suite: Suite::Synthetic,
            dup_ratio: 0.5,
            zero_share: 0.1,
            state_persistence: 0.92,
            reads_per_write: 2.0,
            writes_per_kilo_instr: 20.0,
            working_set_lines: 1 << 14,
            content_pool_size: 1 << 10,
        }
    }

    #[test]
    fn markov_stationary_matches_dup_ratio() {
        let p = sample();
        let (a, b) = p.markov_params();
        // Stationary duplicate fraction of the 2-state chain.
        let stationary = (1.0 - b) / ((1.0 - a) + (1.0 - b));
        assert!((stationary - p.dup_ratio).abs() < 1e-9, "{stationary}");
        // Expected persistence.
        let persistence = p.dup_ratio * a + (1.0 - p.dup_ratio) * b;
        assert!((persistence - 0.92).abs() < 1e-9);
    }

    #[test]
    fn markov_clamps_extreme_ratios() {
        let mut p = sample();
        p.dup_ratio = 0.984;
        let (a, b) = p.markov_params();
        assert!((0.0..=1.0).contains(&a));
        assert!((0.0..=1.0).contains(&b));
        // stay_dup must remain very high for such a workload.
        assert!(a > 0.9);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut p = sample();
        p.zero_share = 0.9; // > dup_ratio
        assert!(p.validate().is_err());

        let mut p = sample();
        p.dup_ratio = 1.5;
        assert!(p.validate().is_err());

        let mut p = sample();
        p.state_persistence = 0.3;
        assert!(p.validate().is_err());

        let mut p = sample();
        p.working_set_lines = 0;
        assert!(p.validate().is_err());

        assert!(sample().validate().is_ok());
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Spec2006.to_string(), "SPEC CPU2006");
        assert_eq!(Suite::Parsec.to_string(), "PARSEC");
        assert_eq!(Suite::Synthetic.to_string(), "synthetic");
    }
}
