//! Quickstart: stand up an encrypted, deduplicating NVM main memory, write
//! some lines, and inspect what the controller did.
//!
//! Run with: `cargo run --release --example quickstart`

use dewrite::core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
use dewrite::nvm::LineAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4096-line (1 MB) DeWrite memory with the paper's configuration:
    // CRC-32 fingerprints, 3-bit history predictor, PNA, colocated metadata.
    let config = SystemConfig::for_lines(4096);
    let mut mem = DeWrite::new(config, DeWriteConfig::paper(), b"a 16-byte secret");

    // Write a page worth of identical lines (think memset of a buffer).
    let page = vec![0x5Au8; 256];
    let mut t = 0;
    let mut eliminated = 0;
    for i in 0..16 {
        let w = mem.write(LineAddr::new(i), &page, t)?;
        if w.eliminated {
            eliminated += 1;
        }
        t += 1_000;
        println!(
            "write #{i:<2} -> {}  ({} ns)",
            if w.eliminated {
                "duplicate, NVM write eliminated"
            } else {
                "stored to NVM"
            },
            w.total_ns
        );
    }
    println!("\n{eliminated}/16 writes eliminated by in-line deduplication");

    // Reads are transparent: every address returns its own data.
    let r = mem.read(LineAddr::new(7), t)?;
    assert_eq!(r.data, page);
    println!(
        "read back line 7 in {} ns — contents verified",
        r.latency_ns
    );

    // The stored bytes on the DIMM are ciphertext, not the page contents.
    let raw = mem.device().peek_line(LineAddr::new(0))?;
    assert_ne!(raw, page);
    println!(
        "raw NVM cells hold ciphertext (first bytes: {:02x?})",
        &raw[..8]
    );

    // Controller statistics.
    let base = mem.base_metrics();
    let dm = mem.dewrite_metrics();
    println!("\n--- controller metrics ---");
    println!(
        "writes: {} (eliminated {})",
        base.writes, base.writes_eliminated
    );
    println!("CRC computations: {}", base.hash_ops);
    println!("duplicate-confirmation reads: {}", base.verify_reads);
    println!("predictor accuracy: {:.1}%", dm.predictor_accuracy * 100.0);
    println!("energy: {}", mem.device().energy());
    Ok(())
}
