//! Per-run experiment reports.

use dewrite_mem::{LatencyHistogram, LatencyStats};
use dewrite_nvm::EnergyBreakdown;

use crate::schemes::{BaseMetrics, DeWriteMetrics};
use crate::trace::StageBreakdown;

/// Everything one (scheme × workload) simulation produces, in the units the
/// paper's figures use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Scheme name.
    pub scheme: String,
    /// Workload/application name.
    pub app: String,
    /// Instructions executed.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: f64,
    /// Instructions per cycle (Fig. 17's metric).
    pub ipc: f64,
    /// Full write latencies, issue → durable (Fig. 14).
    pub write_latency: LatencyStats,
    /// Write latencies of eliminated (duplicate) writes only.
    pub write_latency_eliminated: LatencyStats,
    /// Write latencies of writes that reached the NVM array.
    pub write_latency_stored: LatencyStats,
    /// Read latencies (Fig. 16).
    pub read_latency: LatencyStats,
    /// Controller critical-path write latencies (Fig. 15's metric).
    pub write_critical: LatencyStats,
    /// Scheme counters (writes, eliminations, metadata traffic …).
    pub base: BaseMetrics,
    /// Energy consumed during the measured window.
    pub energy: EnergyBreakdown,
    /// NVM data-line writes that reached the array.
    pub nvm_data_writes: u64,
    /// Average fraction of line bits programmed per array write.
    pub bit_flip_ratio: f64,
    /// DeWrite-specific metrics, when the scheme is DeWrite.
    pub dewrite: Option<DeWriteMetrics>,
    /// Full write-latency distribution (p50/p95/p99, not just the mean).
    pub write_latency_hist: LatencyHistogram,
    /// Read-latency distribution.
    pub read_latency_hist: LatencyHistogram,
    /// Per-stage write-pipeline latency breakdown (empty when the scheme
    /// does not support event tracing).
    pub stage_breakdown: StageBreakdown,
}

impl RunReport {
    /// Fraction of writes whose NVM write was eliminated (Fig. 12).
    pub fn write_reduction(&self) -> f64 {
        if self.base.writes == 0 {
            0.0
        } else {
            self.base.writes_eliminated as f64 / self.base.writes as f64
        }
    }

    /// Write speedup of this run versus `baseline` (mean write latency
    /// ratio, Fig. 14).
    pub fn write_speedup_vs(&self, baseline: &RunReport) -> f64 {
        ratio(
            baseline.write_latency.mean_ns(),
            self.write_latency.mean_ns(),
        )
    }

    /// Read speedup versus `baseline` (Fig. 16).
    pub fn read_speedup_vs(&self, baseline: &RunReport) -> f64 {
        ratio(baseline.read_latency.mean_ns(), self.read_latency.mean_ns())
    }

    /// Relative IPC versus `baseline` (Fig. 17).
    pub fn relative_ipc_vs(&self, baseline: &RunReport) -> f64 {
        ratio(self.ipc, baseline.ipc)
    }

    /// Relative total energy versus `baseline` (Fig. 19).
    pub fn relative_energy_vs(&self, baseline: &RunReport) -> f64 {
        ratio(
            self.energy.total_pj() as f64,
            baseline.energy.total_pj() as f64,
        )
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(write_mean: u64, read_mean: u64, ipc: f64) -> RunReport {
        let mut r = RunReport {
            ipc,
            ..RunReport::default()
        };
        r.write_latency.record(write_mean);
        r.read_latency.record(read_mean);
        r.base.writes = 100;
        r.base.writes_eliminated = 54;
        r
    }

    #[test]
    fn write_reduction_is_eliminated_over_total() {
        let r = report(100, 100, 1.0);
        assert!((r.write_reduction() - 0.54).abs() < 1e-12);
        assert_eq!(RunReport::default().write_reduction(), 0.0);
    }

    #[test]
    fn speedups_are_baseline_over_self() {
        let dewrite = report(100, 50, 1.8);
        let baseline = report(400, 150, 1.0);
        assert!((dewrite.write_speedup_vs(&baseline) - 4.0).abs() < 1e-12);
        assert!((dewrite.read_speedup_vs(&baseline) - 3.0).abs() < 1e-12);
        assert!((dewrite.relative_ipc_vs(&baseline) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_yield_zero() {
        let a = report(0, 0, 0.0);
        let b = RunReport::default();
        assert_eq!(a.relative_ipc_vs(&b), 0.0);
        assert_eq!(a.relative_energy_vs(&b), 0.0);
    }
}
