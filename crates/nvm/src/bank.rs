//! Bank-level contention model.
//!
//! The performance mechanism behind DeWrite's read/write speedups is
//! queueing: "when a write request is served by an NVM bank, the following
//! read/write requests to the same bank are blocked and wait until the
//! current write request is completed" (§I). Each bank therefore tracks the
//! time until which it is busy; a request arriving earlier waits.

/// One NVM bank with first-come-first-served occupancy and a single open
/// row buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bank {
    busy_until_ns: u64,
    busy_time_ns: u64,
    accesses: u64,
    open_row: Option<u64>,
    row_hits: u64,
}

/// Outcome of scheduling one access on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSlot {
    /// When the access actually starts service (≥ arrival).
    pub start_ns: u64,
    /// When the access completes.
    pub finish_ns: u64,
    /// Queueing delay suffered before service (`start - arrival`).
    pub wait_ns: u64,
}

impl Bank {
    /// A fresh, idle bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// Schedule an access arriving at `now_ns` that occupies the bank for
    /// `service_ns`. Returns the slot; the bank becomes busy until
    /// `finish_ns`.
    pub fn schedule(&mut self, now_ns: u64, service_ns: u64) -> BankSlot {
        let start = now_ns.max(self.busy_until_ns);
        let finish = start + service_ns;
        self.busy_until_ns = finish;
        self.busy_time_ns += service_ns;
        self.accesses += 1;
        BankSlot {
            start_ns: start,
            finish_ns: finish,
            wait_ns: start - now_ns,
        }
    }

    /// When the bank next becomes idle.
    pub fn busy_until_ns(&self) -> u64 {
        self.busy_until_ns
    }

    /// Total service time accumulated on this bank.
    pub fn busy_time_ns(&self) -> u64 {
        self.busy_time_ns
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Accesses served from the open row buffer.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Schedule an access to `row`, taking `hit_service_ns` if the row
    /// buffer already holds it and `miss_service_ns` otherwise (which opens
    /// the row). Returns the slot and whether it was a row hit.
    pub fn schedule_row(
        &mut self,
        now_ns: u64,
        row: u64,
        hit_service_ns: u64,
        miss_service_ns: u64,
    ) -> (BankSlot, bool) {
        let hit = self.open_row == Some(row);
        let service = if hit { hit_service_ns } else { miss_service_ns };
        let slot = self.schedule(now_ns, service);
        if hit {
            self.row_hits += 1;
        } else {
            self.open_row = Some(row);
        }
        (slot, hit)
    }
}

/// A group of banks with line-interleaved address mapping.
///
/// ```
/// use dewrite_nvm::BankSet;
/// let mut banks = BankSet::new(8);
/// let slot = banks.schedule(0, 0, 300);
/// assert_eq!(slot.wait_ns, 0);
/// // A second access to the same line (bank 0) queues behind the first…
/// let slot2 = banks.schedule(0, 10, 75);
/// assert_eq!(slot2.wait_ns, 290);
/// // …but an access to bank 1 proceeds immediately.
/// let slot3 = banks.schedule(1, 10, 75);
/// assert_eq!(slot3.wait_ns, 0);
/// ```
#[derive(Debug, Clone)]
pub struct BankSet {
    banks: Vec<Bank>,
}

impl BankSet {
    /// Create `n` idle banks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a memory needs at least one bank");
        BankSet {
            banks: vec![Bank::new(); n],
        }
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Whether the set is empty (never true; see [`BankSet::new`]).
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// Map a line index to its bank (low-order interleaving).
    pub fn bank_of(&self, line_index: u64) -> usize {
        (line_index % self.banks.len() as u64) as usize
    }

    /// Schedule an access on the bank holding `line_index`.
    pub fn schedule(&mut self, line_index: u64, now_ns: u64, service_ns: u64) -> BankSlot {
        let b = self.bank_of(line_index);
        self.banks[b].schedule(now_ns, service_ns)
    }

    /// Row of `line_index` within its bank, with `lines_per_row` lines per
    /// row (bank-interleaved addressing).
    pub fn row_of(&self, line_index: u64, lines_per_row: u64) -> u64 {
        (line_index / self.banks.len() as u64) / lines_per_row.max(1)
    }

    /// Schedule a row-buffer-aware access on the bank holding `line_index`.
    pub fn schedule_row(
        &mut self,
        line_index: u64,
        lines_per_row: u64,
        now_ns: u64,
        hit_service_ns: u64,
        miss_service_ns: u64,
    ) -> (BankSlot, bool) {
        let b = self.bank_of(line_index);
        let row = self.row_of(line_index, lines_per_row);
        self.banks[b].schedule_row(now_ns, row, hit_service_ns, miss_service_ns)
    }

    /// Total row-buffer hits across all banks.
    pub fn row_hits(&self) -> u64 {
        self.banks.iter().map(Bank::row_hits).sum()
    }

    /// Iterate over the banks (for utilization reporting).
    pub fn iter(&self) -> std::slice::Iter<'_, Bank> {
        self.banks.iter()
    }

    /// Aggregate queueing statistics: (total busy ns, total accesses).
    pub fn totals(&self) -> (u64, u64) {
        self.banks
            .iter()
            .fold((0, 0), |(t, a), b| (t + b.busy_time_ns(), a + b.accesses()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idle_bank_serves_immediately() {
        let mut b = Bank::new();
        let s = b.schedule(100, 300);
        assert_eq!(s.start_ns, 100);
        assert_eq!(s.finish_ns, 400);
        assert_eq!(s.wait_ns, 0);
    }

    #[test]
    fn busy_bank_queues() {
        let mut b = Bank::new();
        b.schedule(0, 300);
        let s = b.schedule(50, 75);
        assert_eq!(s.start_ns, 300);
        assert_eq!(s.finish_ns, 375);
        assert_eq!(s.wait_ns, 250);
    }

    #[test]
    fn late_arrival_after_idle_does_not_wait() {
        let mut b = Bank::new();
        b.schedule(0, 300);
        let s = b.schedule(1_000, 75);
        assert_eq!(s.wait_ns, 0);
        assert_eq!(s.start_ns, 1_000);
    }

    #[test]
    fn bank_accounting() {
        let mut b = Bank::new();
        b.schedule(0, 300);
        b.schedule(0, 75);
        assert_eq!(b.accesses(), 2);
        assert_eq!(b.busy_time_ns(), 375);
        assert_eq!(b.busy_until_ns(), 375);
    }

    #[test]
    fn interleaving_spreads_consecutive_lines() {
        let banks = BankSet::new(8);
        assert_eq!(banks.bank_of(0), 0);
        assert_eq!(banks.bank_of(7), 7);
        assert_eq!(banks.bank_of(8), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankSet::new(0);
    }

    #[test]
    fn totals_aggregate_across_banks() {
        let mut banks = BankSet::new(2);
        banks.schedule(0, 0, 300);
        banks.schedule(1, 0, 75);
        let (busy, accesses) = banks.totals();
        assert_eq!(busy, 375);
        assert_eq!(accesses, 2);
    }

    proptest! {
        #[test]
        fn service_order_is_fcfs_per_bank(times in proptest::collection::vec(0u64..10_000, 1..50)) {
            // Arrivals in nondecreasing time order must finish in order too.
            let mut sorted = times.clone();
            sorted.sort_unstable();
            let mut b = Bank::new();
            let mut last_finish = 0;
            for t in sorted {
                let s = b.schedule(t, 300);
                prop_assert!(s.start_ns >= t);
                prop_assert!(s.finish_ns > last_finish);
                last_finish = s.finish_ns;
            }
        }

        #[test]
        fn wait_is_zero_iff_idle(now in 0u64..1_000, service in 1u64..1_000) {
            let mut b = Bank::new();
            let s1 = b.schedule(now, service);
            prop_assert_eq!(s1.wait_ns, 0);
            let s2 = b.schedule(now, service);
            prop_assert_eq!(s2.wait_ns, service);
        }
    }
}
