//! Latency statistics accumulation.

/// Streaming latency summary (count / total / min / max).
///
/// ```
/// use dewrite_mem::LatencyStats;
///
/// let mut s = LatencyStats::new();
/// s.record(100);
/// s.record(300);
/// assert_eq!(s.mean_ns(), 200.0);
/// assert_eq!(s.max_ns(), 300);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassemble a summary from its raw counters (JSON import). The parts
    /// must come from a prior summary; they are not re-validated beyond the
    /// empty case.
    pub fn from_parts(count: u64, total_ns: u64, min_ns: u64, max_ns: u64) -> Self {
        if count == 0 {
            return Self::default();
        }
        LatencyStats {
            count,
            total_ns,
            min_ns,
            max_ns,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Mean latency; zero when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Minimum observation; zero when empty.
    pub fn min_ns(&self) -> u64 {
        self.min_ns
    }

    /// Maximum observation; zero when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}ns min={}ns max={}ns",
            self.count,
            self.mean_ns(),
            self.min_ns,
            self.max_ns
        )
    }
}

/// Streaming latency histogram with bounded relative error, for percentile
/// reporting (p50/p95/p99) on top of the [`LatencyStats`] summary.
///
/// Observations are binned logarithmically: one major bucket per power of
/// two, subdivided into 16 linear sub-buckets, so every bucket spans at most
/// 1/16 (6.25%) of its lower bound. Values below 16 ns get exact buckets.
/// The bucket map is sparse and ordered, so histograms are deterministic,
/// cheap to merge, and round-trip exactly through serialization.
///
/// ```
/// use dewrite_mem::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 100, 100, 900] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.p50_ns() >= 93 && h.p50_ns() <= 100);
/// assert!(h.p99_ns() >= 840 && h.p99_ns() <= 900);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    stats: LatencyStats,
    buckets: std::collections::BTreeMap<u16, u64>,
}

/// Linear sub-buckets per power-of-two major bucket.
const SUB_BUCKETS: u64 = 16;

fn bucket_of(ns: u64) -> u16 {
    if ns < SUB_BUCKETS {
        ns as u16
    } else {
        let major = 63 - ns.leading_zeros() as u16; // >= 4
        let sub = ((ns >> (major - 4)) & (SUB_BUCKETS - 1)) as u16;
        (major - 3) * SUB_BUCKETS as u16 + sub
    }
}

fn bucket_lower_bound(bucket: u16) -> u64 {
    if bucket < SUB_BUCKETS as u16 {
        u64::from(bucket)
    } else {
        let major = u32::from(bucket) / SUB_BUCKETS as u32 + 3;
        let sub = u64::from(bucket) % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << (major - 4)
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassemble a histogram from a summary and its sparse bucket counts
    /// (JSON import). Bucket counts must sum to the summary's count.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when they do not.
    pub fn from_parts(
        stats: LatencyStats,
        buckets: impl IntoIterator<Item = (u16, u64)>,
    ) -> Result<Self, String> {
        let buckets: std::collections::BTreeMap<u16, u64> = buckets.into_iter().collect();
        let total: u64 = buckets.values().sum();
        if total != stats.count() {
            return Err(format!(
                "histogram buckets hold {total} observations, summary says {}",
                stats.count()
            ));
        }
        Ok(LatencyHistogram { stats, buckets })
    }

    /// Record one observation.
    pub fn record(&mut self, ns: u64) {
        self.stats.record(ns);
        *self.buckets.entry(bucket_of(ns)).or_insert(0) += 1;
    }

    /// The streaming summary (count / total / min / max).
    pub fn stats(&self) -> LatencyStats {
        self.stats
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency; zero when empty.
    pub fn mean_ns(&self) -> f64 {
        self.stats.mean_ns()
    }

    /// The occupied buckets as `(bucket, count)` pairs in ascending bucket
    /// order (serialization; exact round-trip via [`from_parts`](Self::from_parts)).
    pub fn bucket_counts(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }

    /// The latency at or below which `p` percent of observations fall
    /// (resolved to the containing bucket's lower bound, at most 6.25%
    /// under the exact value). Zero when empty; `p` is clamped to [0, 100].
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let count = self.stats.count();
        if count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * count as f64).ceil() as u64).max(1);
        if rank >= count {
            return self.stats.max_ns();
        }
        let mut seen = 0;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Exact at the extremes, bucket lower bound in between.
                return bucket_lower_bound(bucket)
                    .max(self.stats.min_ns())
                    .min(self.stats.max_ns());
            }
        }
        self.stats.max_ns()
    }

    /// Median (p50).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 95th percentile.
    pub fn p95_ns(&self) -> u64 {
        self.percentile_ns(95.0)
    }

    /// 99th percentile.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.stats.merge(&other.stats);
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
    }
}

impl std::fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1}ns p50={}ns p95={}ns p99={}ns max={}ns",
            self.count(),
            self.mean_ns(),
            self.p50_ns(),
            self.p95_ns(),
            self.p99_ns(),
            self.stats.max_ns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.min_ns(), 0);
        assert_eq!(s.max_ns(), 0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn single_observation() {
        let mut s = LatencyStats::new();
        s.record(42);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean_ns(), 42.0);
        assert_eq!(s.min_ns(), 42);
        assert_eq!(s.max_ns(), 42);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = LatencyStats::new();
        s.record(10);
        let snapshot = s;
        s.merge(&LatencyStats::new());
        assert_eq!(s, snapshot);

        let mut empty = LatencyStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(xs in proptest::collection::vec(0u64..10_000, 0..50),
                                   ys in proptest::collection::vec(0u64..10_000, 0..50)) {
            let mut a = LatencyStats::new();
            for &x in &xs { a.record(x); }
            let mut b = LatencyStats::new();
            for &y in &ys { b.record(y); }
            a.merge(&b);

            let mut c = LatencyStats::new();
            for &v in xs.iter().chain(ys.iter()) { c.record(v); }
            prop_assert_eq!(a, c);
        }

        #[test]
        fn invariants(xs in proptest::collection::vec(0u64..10_000, 1..100)) {
            let mut s = LatencyStats::new();
            for &x in &xs { s.record(x); }
            prop_assert!(s.min_ns() <= s.max_ns());
            prop_assert!(s.mean_ns() >= s.min_ns() as f64);
            prop_assert!(s.mean_ns() <= s.max_ns() as f64);
            prop_assert_eq!(s.count(), xs.len() as u64);
        }
    }

    #[test]
    fn histogram_buckets_are_monotone_and_tight() {
        // Bucket index must be monotone in the value, and each bucket's
        // lower bound must map back to the same bucket.
        let mut prev = 0u16;
        for ns in (0..4096u64).chain((12..50).map(|s| 1u64 << s)) {
            let b = bucket_of(ns);
            assert!(b >= prev, "bucket_of not monotone at {ns}");
            prev = b;
            let lb = bucket_lower_bound(b);
            assert!(lb <= ns, "lower bound {lb} exceeds {ns}");
            assert_eq!(bucket_of(lb), b, "lower bound of {ns} changes bucket");
            // ≤ 6.25% relative bucket width.
            assert!(ns - lb <= lb / 16 + 1, "bucket too wide at {ns}");
        }
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);

        let mut h = LatencyHistogram::new();
        h.record(300);
        assert_eq!(h.p50_ns(), 300, "single value percentiles are exact");
        assert_eq!(h.p99_ns(), 300);
        assert!(!h.to_string().is_empty());
    }

    #[test]
    fn histogram_percentiles_track_exact_values() {
        let mut h = LatencyHistogram::new();
        let xs: Vec<u64> = (1..=1000).map(|i| i * 3).collect();
        for &x in &xs {
            h.record(x);
        }
        for (p, exact) in [(50.0, 1500u64), (95.0, 2850), (99.0, 2970)] {
            let got = h.percentile_ns(p);
            assert!(
                got <= exact && got as f64 >= exact as f64 * 0.93,
                "p{p}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.percentile_ns(100.0), 3000);
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = i * 7 % 4096;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn histogram_round_trips_through_parts() {
        let mut h = LatencyHistogram::new();
        for i in 0..200u64 {
            h.record(i * i);
        }
        let rebuilt = LatencyHistogram::from_parts(h.stats(), h.bucket_counts()).unwrap();
        assert_eq!(rebuilt, h);
        // Mismatched counts are rejected.
        assert!(LatencyHistogram::from_parts(h.stats(), [(0u16, 1u64)]).is_err());
    }

    proptest! {
        #[test]
        fn histogram_percentile_bounds(xs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &x in &xs { h.record(x); }
            let (p50, p95, p99) = (h.p50_ns(), h.p95_ns(), h.p99_ns());
            prop_assert!(p50 <= p95 && p95 <= p99);
            prop_assert!(p50 >= h.stats().min_ns());
            prop_assert!(p99 <= h.stats().max_ns());
        }
    }
}
