//! Crash-consistent persistence for the DeWrite dedup metadata.
//!
//! The paper keeps the dedup tables and encryption counters in NVM, so they
//! survive power loss by construction; the simulator's authoritative copies
//! are in-controller structures that vanish with the process. This crate
//! makes them durable the way a real controller with a volatile metadata
//! cache would (SecPM-style, §V of the paper):
//!
//! * a **write-ahead log** ([`wal`]) of checksummed, length-prefixed
//!   records, each carrying the [`MetaOp`](dewrite_core::MetaOp)s of one
//!   *epoch* of data writes (ordered append → fsync → apply);
//! * periodic **checkpoints** ([`Checkpoint`]) serialized from the core's
//!   [`Snapshot`](dewrite_core::Snapshot), after which older log segments
//!   are pruned;
//! * a **recovery path** ([`recover_state`], [`RecoverDeWrite`]) that loads
//!   the newest valid checkpoint (falling back to the previous one if the
//!   newest is corrupt), replays the log suffix, detects and discards a
//!   torn tail, and hands back a controller that passes `scrub()`;
//! * a **fault-injection shim** ([`TornWriter`], [`apply_fault`]) that
//!   truncates or bit-flips at a chosen byte boundary, driving the
//!   kill-at-random-point torture tests.
//!
//! Persistence runs entirely in host time: enabling it never changes the
//! simulated `RunReport` (the epoch-flush *cost* model already lives in the
//! core's `MetadataPersistence` policy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod durable;
mod recover;
mod store;
mod torn;
mod wal;

pub use checkpoint::{Checkpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use durable::{DurableDeWrite, DurableOptions, EpochLog};
pub use recover::{recover_state, RecoverDeWrite, RecoveryStats};
pub use store::MetaStore;
pub use torn::{apply_fault, Fault, TornWriter};
pub use wal::{
    decode_wal, encode_record, encode_wal_header, DecodedWal, WalRecord, WalTail, MAX_RECORD_BYTES,
    WAL_HEADER_BYTES, WAL_MAGIC, WAL_VERSION,
};

/// Errors of the persistence and recovery layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The durable state was produced under a different controller
    /// configuration (fingerprint mismatch): refusing to reinterpret it.
    ConfigMismatch(String),
    /// The durable state is structurally broken beyond a discardable torn
    /// tail (no valid checkpoint, a gap in the log chain).
    Corrupt(String),
    /// The recovered state failed controller-level validation
    /// (`power_on` or `scrub`).
    Recovery(String),
    /// The wrapped memory rejected an operation (address/size error).
    Memory(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::ConfigMismatch(m) => write!(f, "configuration mismatch: {m}"),
            PersistError::Corrupt(m) => write!(f, "durable state corrupt: {m}"),
            PersistError::Recovery(m) => write!(f, "recovery failed: {m}"),
            PersistError::Memory(m) => write!(f, "memory operation failed: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}
