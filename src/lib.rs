//! **dewrite** — a reproduction of *"Improving the Performance and
//! Endurance of Encrypted Non-Volatile Main Memory through Deduplicating
//! Writes"* (Zuo et al., MICRO 2018).
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! * [`nvm`] — the PCM device model (banks, row buffers, asymmetric timing,
//!   wear and energy accounting);
//! * [`crypto`] — AES-128 with counter-mode and direct encryption engines;
//! * [`hashes`] — CRC-32/CRC-32C/SHA-1/MD5 with the paper's hardware cost
//!   model;
//! * [`trace`] — calibrated synthetic workloads for the 20 SPEC/PARSEC
//!   applications, plus trace capture/replay and the duplication oracle;
//! * [`mem`] — metadata cache, in-order core model, latency statistics;
//! * [`core`] — DeWrite itself, every baseline scheme, and the trace-driven
//!   simulator;
//! * [`persist`] — crash-consistent metadata persistence: write-ahead log,
//!   checkpoints, torn-write fault injection, and recovery replay.
//!
//! # Quick start
//!
//! ```
//! use dewrite::core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
//! use dewrite::nvm::LineAddr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = DeWrite::new(
//!     SystemConfig::for_lines(4096),
//!     DeWriteConfig::paper(),
//!     b"a 16-byte secret",
//! );
//! let line = vec![0xAB; 256];
//! let first = mem.write(LineAddr::new(0), &line, 0)?;
//! let dup = mem.write(LineAddr::new(1), &line, 1_000)?;
//! assert!(!first.eliminated && dup.eliminated);
//! assert_eq!(mem.read(LineAddr::new(1), 2_000)?.data, line);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment harness regenerating every figure and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dewrite_core as core;
pub use dewrite_crypto as crypto;
pub use dewrite_hashes as hashes;
pub use dewrite_mem as mem;
pub use dewrite_nvm as nvm;
pub use dewrite_persist as persist;
pub use dewrite_trace as trace;
