//! Wire-protocol torture: proptest roundtrips for every message,
//! truncation at every offset, single-bit flips, oversized/zero length
//! prefixes, unknown tags, and a byte-dribbled multi-frame stream.
//!
//! Run by name in CI on both `DEWRITE_PORTABLE` legs. The invariant
//! under test: a malformed frame is *always* a typed error (or
//! `Incomplete`), never a panic, never a silently different message,
//! and never a desynchronized stream.

use dewrite_net::proto::{
    self, ErrorCode, FrameError, FrameEvent, Hello, Request, Response, FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES, NET_VERSION,
};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            any::<u32>(),
            1u64..1_000_000,
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(line_size, lines, expected_writes, app)| {
                let cache_policy = (expected_writes % 3) as u8;
                let digest_mode = (expected_writes % 2) as u8;
                let app: String = app.into_iter().map(|b| (b'a' + b % 26) as char).collect();
                Request::Hello(Hello {
                    version: NET_VERSION,
                    line_size,
                    lines,
                    expected_writes,
                    cache_policy,
                    digest_mode,
                    app,
                })
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(|(addr, shard_seq, gap, data)| Request::Write {
                addr,
                shard_seq,
                gap,
                data,
            }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(addr, shard_seq, gap)| {
            Request::Read {
                addr,
                shard_seq,
                gap,
            }
        }),
        Just(Request::Scrub),
        Just(Request::Stats),
        Just(Request::Flush),
        Just(Request::Report),
        Just(Request::Reset),
        Just(Request::Shutdown),
    ]
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::BadFrame),
        Just(ErrorCode::UnknownOp),
        Just(ErrorCode::BadPayload),
        Just(ErrorCode::NotReady),
        Just(ErrorCode::ConfigMismatch),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::ScrubFailed),
        Just(ErrorCode::Internal),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(shards, window, line_size, lines, slots_per_shard)| {
                Response::HelloOk {
                    version: NET_VERSION,
                    shards,
                    window,
                    line_size,
                    lines,
                    slots_per_shard,
                }
            }),
        (any::<bool>(), any::<u64>())
            .prop_map(|(eliminated, sim_ns)| Response::WriteOk { eliminated, sim_ns }),
        any::<u64>().prop_map(|sim_ns| Response::ReadOk { sim_ns }),
        any::<u64>().prop_map(|lines| Response::ScrubOk { lines }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(shards, accepted, active, ops, errors, uptime_ns)| {
                Response::StatsOk {
                    shards,
                    accepted,
                    active,
                    ops,
                    errors,
                    uptime_ns,
                }
            }),
        Just(Response::FlushOk),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(|bytes| {
            let json: String = bytes.into_iter().map(|b| (b' ' + b % 95) as char).collect();
            Response::ReportOk { json }
        }),
        Just(Response::ResetOk),
        Just(Response::ShutdownOk),
        (
            arb_error_code(),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(code, bytes)| {
                let detail: String = bytes.into_iter().map(|b| (b' ' + b % 95) as char).collect();
                Response::Error { code, detail }
            }),
    ]
}

/// Decode one full frame, asserting there is exactly one and it consumes
/// the whole buffer.
fn sole_payload(frame: &[u8]) -> Vec<u8> {
    match proto::next_frame(frame) {
        Ok(FrameEvent::Frame { payload, consumed }) => {
            assert_eq!(consumed, frame.len(), "frame must consume itself exactly");
            payload.to_vec()
        }
        other => panic!("expected one whole frame, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_request_roundtrips(req in arb_request()) {
        let frame = proto::encode_request(&req);
        let payload = sole_payload(&frame);
        let back = proto::decode_request(&payload).expect("decode");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn every_response_roundtrips(resp in arb_response()) {
        let frame = proto::encode_response(&resp);
        let payload = sole_payload(&frame);
        let back = proto::decode_response(&payload).expect("decode");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncation_at_every_offset_is_incomplete(req in arb_request()) {
        let frame = proto::encode_request(&req);
        for cut in 0..frame.len() {
            let step = proto::next_frame(&frame[..cut]);
            prop_assert_eq!(
                step,
                Ok(FrameEvent::Incomplete),
                "prefix of {}/{} bytes must be incomplete",
                cut,
                frame.len()
            );
        }
    }

    #[test]
    fn single_bit_flips_never_yield_a_different_message(req in arb_request()) {
        let frame = proto::encode_request(&req);
        let original = sole_payload(&frame);
        for byte in 0..frame.len() {
            for bit in 0..8u8 {
                let mut flipped = frame.clone();
                flipped[byte] ^= 1 << bit;
                match proto::next_frame(&flipped) {
                    // A flip in the length prefix can only make the frame
                    // look longer (incomplete), out of bounds, or shorter
                    // (then the CRC no longer covers the right slice). A
                    // flip in the CRC or payload is a guaranteed CRC
                    // mismatch: CRC32 detects all single-bit errors.
                    Err(FrameError::BadCrc) | Err(FrameError::BadLength(_)) => {}
                    Ok(FrameEvent::Incomplete) => {}
                    Ok(FrameEvent::Frame { payload, .. }) => {
                        prop_assert_eq!(
                            payload,
                            original.as_slice(),
                            "bit {} of byte {} produced a different valid frame",
                            bit,
                            byte
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn byte_dribbled_stream_never_desyncs(reqs in proptest::collection::vec(arb_request(), 1..8)) {
        // Concatenate every frame, then feed the stream one byte at a
        // time the way a socket read loop would.
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&proto::encode_request(r));
        }
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded = Vec::new();
        for &b in &stream {
            buf.push(b);
            loop {
                match proto::next_frame(&buf).expect("healthy stream") {
                    FrameEvent::Incomplete => break,
                    FrameEvent::Frame { payload, consumed } => {
                        decoded.push(proto::decode_request(payload).expect("decode"));
                        buf.drain(..consumed);
                    }
                }
            }
        }
        prop_assert!(buf.is_empty(), "stream left {} undecoded bytes", buf.len());
        prop_assert_eq!(decoded, reqs);
    }

    #[test]
    fn garbage_payloads_are_typed_errors(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Whatever the bytes, decoding must return Err — never panic.
        // (A valid encoding could decode, which is fine; the point is
        // that arbitrary bytes can't crash the decoders.)
        let _ = proto::decode_request(&bytes);
        let _ = proto::decode_response(&bytes);
    }
}

#[test]
fn zero_and_oversized_length_prefixes_are_fatal() {
    let mut zero = Vec::new();
    zero.extend_from_slice(&0u32.to_le_bytes());
    zero.extend_from_slice(&0u32.to_le_bytes());
    assert_eq!(proto::next_frame(&zero), Err(FrameError::BadLength(0)));

    let huge = (MAX_FRAME_BYTES as u32) + 1;
    let mut frame = Vec::new();
    frame.extend_from_slice(&huge.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    // The violation must be detected from the 8-byte header alone:
    // a hostile length prefix never causes a buffer allocation.
    assert_eq!(frame.len(), FRAME_HEADER_BYTES);
    assert_eq!(proto::next_frame(&frame), Err(FrameError::BadLength(huge)));
}

#[test]
fn unknown_tags_are_typed_errors() {
    for tag in [0u8, 10, 0x40, 0x80, 0x8A, 0xFE] {
        let frame = proto::encode_frame(&[tag]);
        let payload = sole_payload(&frame);
        let err = proto::decode_request(&payload).expect_err("unknown tag must not decode");
        assert!(
            err.contains("unknown request tag"),
            "tag {tag:#x}: unexpected error {err:?}"
        );
    }
    // And on the response side.
    let frame = proto::encode_frame(&[0x7Fu8]);
    let payload = sole_payload(&frame);
    assert!(proto::decode_response(&payload).is_err());
}

fn v3_hello(digest_mode: u8) -> Hello {
    Hello {
        version: NET_VERSION,
        line_size: 256,
        lines: 64,
        expected_writes: 32,
        cache_policy: 0,
        digest_mode,
        app: "mcf".into(),
    }
}

#[test]
fn wrong_version_hello_is_rejected() {
    let good = proto::encode_request(&Request::Hello(v3_hello(0)));
    let payload = sole_payload(&good);
    // The version lives right after tag + magic; forge every other
    // version value's low byte and expect a typed rejection.
    let mut forged = payload.clone();
    forged[5] ^= 0xFF;
    let reframed = proto::encode_frame(&forged);
    let err = proto::decode_request(&sole_payload(&reframed)).expect_err("version must gate");
    assert!(err.contains("version"), "unexpected error {err:?}");
}

#[test]
fn digest_mode_byte_roundtrips_every_wire_value() {
    // Both defined modes plus out-of-range values: the codec carries the
    // byte verbatim (range validation is the server's Hello handler, the
    // same split as cache_policy), so nothing in the transport layer can
    // silently remap a mode.
    for mode in [0u8, 1, 2, 0xFF] {
        let req = Request::Hello(v3_hello(mode));
        let frame = proto::encode_request(&req);
        let back = proto::decode_request(&sole_payload(&frame)).expect("decode");
        assert_eq!(back, req, "digest mode {mode} must survive the wire");
    }
}

#[test]
fn v2_hello_without_digest_mode_is_a_clean_version_mismatch() {
    // A v2 client's Hello body is one byte shorter (no digest_mode) and
    // says version 2. Hand-assemble that exact v2 layout: the decoder
    // must reject it on the version check — a typed error naming both
    // versions, never a desync or a misparse of the app bytes as a mode.
    let mut p = Vec::new();
    p.push(0x01); // T_HELLO
    p.extend_from_slice(b"DWNP");
    p.extend_from_slice(&2u16.to_le_bytes()); // the previous version
    p.extend_from_slice(&256u32.to_le_bytes()); // line_size
    p.extend_from_slice(&64u64.to_le_bytes()); // lines
    p.extend_from_slice(&32u64.to_le_bytes()); // expected_writes
    p.push(0); // cache_policy — and no digest_mode byte after it
    let app = b"mcf";
    p.extend_from_slice(&(app.len() as u16).to_le_bytes());
    p.extend_from_slice(app);
    let frame = proto::encode_frame(&p);
    let err = proto::decode_request(&sole_payload(&frame)).expect_err("v2 must be refused");
    assert!(
        err.contains("version 2") && err.contains("3"),
        "v2 client deserves a version mismatch, got {err:?}"
    );
}

#[test]
fn truncating_the_digest_mode_byte_never_misparses() {
    // Drop single bytes from a valid v3 Hello payload (shifting the app
    // bytes into the digest_mode position and so on): every result must
    // be a typed decode error or a *different* valid message detected as
    // such by its own checks — never a panic.
    let frame = proto::encode_request(&Request::Hello(v3_hello(1)));
    let payload = sole_payload(&frame);
    for drop_at in 0..payload.len() {
        let mut cut = payload.clone();
        cut.remove(drop_at);
        let reframed = proto::encode_frame(&cut);
        let _ = proto::decode_request(&sole_payload(&reframed));
    }
}
