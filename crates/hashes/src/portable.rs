//! Forced-portable switch for hash backends.
//!
//! Mirrors the switch in `dewrite-crypto` (this crate has no dependency on
//! it, so the few lines are duplicated rather than coupled): backends are
//! chosen at construction, and CI's determinism leg forces the portable
//! path via `DEWRITE_PORTABLE=1` to prove reports are bit-identical across
//! backends.

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state: 2 = unset (consult the environment), 1 = portable only,
/// 0 = hardware allowed.
static PORTABLE_ONLY: AtomicU8 = AtomicU8::new(2);

/// Should hasher constructors refuse hardware backends?
///
/// Lazily seeded from the `DEWRITE_PORTABLE` environment variable (any
/// non-empty value other than `0` forces portable engines).
pub fn portable_only() -> bool {
    match PORTABLE_ONLY.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let forced =
                std::env::var_os("DEWRITE_PORTABLE").is_some_and(|v| !v.is_empty() && v != "0");
            PORTABLE_ONLY.store(u8::from(forced), Ordering::Relaxed);
            forced
        }
    }
}

/// Override backend selection for hashers constructed *after* this call:
/// `true` forces portable paths, `false` re-enables hardware dispatch.
/// Intended for tests and determinism checks.
pub fn set_portable_only(portable: bool) {
    PORTABLE_ONLY.store(u8::from(portable), Ordering::Relaxed);
}
