//! The on-chip metadata cache.
//!
//! Secure-NVMM proposals keep a write-back cache of per-line counters in the
//! memory controller; DeWrite reuses it for all deduplication metadata
//! (§III-B). This is a set-associative, write-back cache over abstract
//! 64-bit entry keys — callers namespace keys per table — with LRU or FIFO
//! replacement and support for the sequential-prefetch insertions the
//! address-mapping / inverted-hash / FSM tables rely on (Fig. 21 sweeps both
//! capacity and prefetch granularity).

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least-recently-used (the paper's choice).
    #[default]
    Lru,
    /// First-in-first-out (ablation alternative).
    Fifo,
}

/// Cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in entries.
    pub capacity: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A capacity-`n` cache with 8-way sets and LRU replacement.
    pub fn with_capacity(n: usize) -> Self {
        CacheConfig {
            capacity: n,
            associativity: 8,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets.
    fn num_sets(&self) -> usize {
        (self.capacity / self.associativity).max(1)
    }
}

/// Hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Entries inserted on demand.
    pub demand_inserts: u64,
    /// Entries inserted by prefetch.
    pub prefetch_inserts: u64,
    /// Dirty entries evicted (these become NVM metadata writes).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Demand hit rate in `[0, 1]`; zero if no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way {
    key: u64,
    dirty: bool,
    stamp: u64,
}

/// An entry evicted from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted key.
    pub key: u64,
    /// Whether it was dirty (must be written back to NVM).
    pub dirty: bool,
}

/// Set-associative write-back metadata cache.
///
/// ```
/// use dewrite_mem::{CacheConfig, MetadataCache};
///
/// let mut cache = MetadataCache::new(CacheConfig::with_capacity(64));
/// assert!(!cache.access(7, false));      // cold miss
/// cache.insert(7, false);
/// assert!(cache.access(7, true));        // hit, now dirty
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    stats: CacheStats,
}

impl MetadataCache {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if capacity or associativity is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be nonzero");
        assert!(config.associativity > 0, "associativity must be nonzero");
        let sets = vec![Vec::with_capacity(config.associativity); config.num_sets()];
        MetadataCache {
            config,
            sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_of(&self, key: u64) -> usize {
        // Multiplicative hashing spreads sequential keys across sets while
        // staying deterministic.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.sets.len()
    }

    /// Demand lookup. On a hit, refreshes recency (LRU) and ORs in the
    /// `write` dirty bit. Returns whether it hit.
    pub fn access(&mut self, key: u64, write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let is_lru = self.config.replacement == Replacement::Lru;
        let set = self.set_of(key);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.key == key) {
            if is_lru {
                way.stamp = clock;
            }
            way.dirty |= write;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Whether `key` is resident (no statistics side effects).
    pub fn contains(&self, key: u64) -> bool {
        let set = self.set_of(key);
        self.sets[set].iter().any(|w| w.key == key)
    }

    /// Insert `key` (demand fill). Returns the victim if one was evicted.
    pub fn insert(&mut self, key: u64, dirty: bool) -> Option<Evicted> {
        self.stats.demand_inserts += 1;
        self.insert_inner(key, dirty)
    }

    /// Insert a run of `count` sequential keys starting at `start`
    /// (prefetch fill; entries arrive clean). Returns the number of dirty
    /// victims evicted.
    pub fn prefetch_run(&mut self, start: u64, count: usize) -> u64 {
        let mut dirty_victims = 0;
        for k in 0..count as u64 {
            let key = start + k;
            if !self.contains(key) {
                self.stats.prefetch_inserts += 1;
                if let Some(ev) = self.insert_inner(key, false) {
                    if ev.dirty {
                        dirty_victims += 1;
                    }
                }
            }
        }
        dirty_victims
    }

    fn insert_inner(&mut self, key: u64, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(key);
        let assoc = self.config.associativity;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.key == key) {
            way.dirty |= dirty;
            way.stamp = clock;
            return None;
        }

        let victim = if set.len() >= assoc {
            // Evict the way with the smallest stamp (LRU: last touch;
            // FIFO: insertion time — stamps are only refreshed under LRU).
            let idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("set is nonempty");
            let w = set.swap_remove(idx);
            if w.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted {
                key: w.key,
                dirty: w.dirty,
            })
        } else {
            None
        };

        set.push(Way {
            key,
            dirty,
            stamp: clock,
        });
        victim
    }

    /// Clear every dirty bit, returning how many entries were dirty —
    /// the write-backs a flush (epoch persistence) must perform.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut flushed = 0;
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.dirty {
                    way.dirty = false;
                    flushed += 1;
                }
            }
        }
        flushed
    }

    /// Number of currently dirty entries.
    pub fn dirty_count(&self) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.dirty)
            .count() as u64
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small(assoc: usize, capacity: usize) -> MetadataCache {
        MetadataCache::new(CacheConfig {
            capacity,
            associativity: assoc,
            replacement: Replacement::Lru,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, 4);
        assert!(!c.access(1, false));
        c.insert(1, false);
        assert!(c.access(1, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn write_access_marks_dirty_and_eviction_reports_it() {
        // Fully-associative single set of 2.
        let mut c = small(2, 2);
        c.insert(1, false);
        assert!(c.access(1, true)); // dirtied by write hit
        c.insert(2, false);
        // Force eviction of 1 (LRU: 1 was touched before 2's insert).
        let mut victims = Vec::new();
        for k in 3..100 {
            if let Some(v) = c.insert(k, false) {
                victims.push(v);
            }
        }
        assert!(victims.iter().any(|v| v.key == 1 && v.dirty));
        assert!(c.stats().dirty_evictions >= 1);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = small(2, 2); // one set, two ways
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.access(1, false)); // 1 is now MRU
        let v = c.insert(3, false).expect("full set evicts");
        assert_eq!(v.key, 2);
        assert!(c.contains(1));
        assert!(c.contains(3));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = MetadataCache::new(CacheConfig {
            capacity: 2,
            associativity: 2,
            replacement: Replacement::Fifo,
        });
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.access(1, false)); // touch does not refresh under FIFO
        let v = c.insert(3, false).expect("full set evicts");
        assert_eq!(v.key, 1, "FIFO evicts the oldest insertion");
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = small(2, 2);
        c.insert(1, false);
        assert!(c.insert(1, true).is_none());
        assert_eq!(c.len(), 1);
        // The single entry must now be dirty: evict it and check.
        c.insert(2, false);
        let v = c.insert(3, false).unwrap();
        assert!(v.key == 1 && v.dirty);
    }

    #[test]
    fn prefetch_inserts_clean_and_counts() {
        let mut c = small(4, 64);
        let dirty = c.prefetch_run(100, 16);
        assert_eq!(dirty, 0);
        assert_eq!(c.stats().prefetch_inserts, 16);
        assert!(c.access(100, false));
        assert!(c.access(115, false));
    }

    #[test]
    fn prefetch_skips_resident_keys() {
        let mut c = small(4, 64);
        c.insert(100, true);
        c.prefetch_run(100, 4);
        assert_eq!(c.stats().prefetch_inserts, 3);
        // Resident dirty entry must keep its dirty bit.
        assert!(c.contains(100));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = MetadataCache::new(CacheConfig::with_capacity(0));
    }

    #[test]
    fn flush_clears_all_dirty_bits() {
        let mut c = small(4, 32);
        c.insert(1, true);
        c.insert(2, false);
        c.insert(3, true);
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.flush_dirty(), 2);
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.flush_dirty(), 0);
        // Entries remain resident after a flush.
        assert!(c.contains(1) && c.contains(2) && c.contains(3));
        // A flushed entry evicts clean.
        for k in 10..200 {
            c.insert(k, false);
        }
        assert_eq!(c.stats().dirty_evictions, 0);
    }

    #[test]
    fn bigger_cache_hits_more_on_looping_scan() {
        // Scan a 512-entry loop through a 128-entry and a 1024-entry cache.
        let run = |capacity: usize| {
            let mut c = MetadataCache::new(CacheConfig::with_capacity(capacity));
            for round in 0..4 {
                for k in 0..512u64 {
                    if !c.access(k, false) {
                        c.insert(k, false);
                    }
                    let _ = round;
                }
            }
            c.stats().hit_rate()
        };
        assert!(run(1024) > run(128));
        assert!(run(1024) > 0.7, "loop fits: expect high hit rate");
    }

    proptest! {
        #[test]
        fn len_never_exceeds_capacity(keys in proptest::collection::vec(any::<u64>(), 0..500)) {
            let mut c = small(4, 32);
            for k in keys {
                if !c.access(k, k % 2 == 0) {
                    c.insert(k, k % 2 == 0);
                }
            }
            prop_assert!(c.len() <= 32 + 4); // sets may round capacity up slightly
        }

        #[test]
        fn inserted_key_is_resident(key in any::<u64>()) {
            let mut c = small(4, 32);
            c.insert(key, false);
            prop_assert!(c.contains(key));
            prop_assert!(c.access(key, false));
        }
    }
}
